"""Error metrics and summaries for cardinality estimation.

The paper evaluates all estimators with the *q-error* (Moerkotte et al.,
VLDB 2009): ``qerror(x, e) = max(x / e, e / x)`` for a true cardinality
``x`` and an estimate ``e``.  The q-error is relative, symmetric, and always
``>= 1``; a perfect estimate has q-error 1.

This module also provides the summary statistics the paper reports: mean,
median, the 25/75 % box bounds, and the 1/99 % whiskers used in the box
plots, plus helpers to render result tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "qerror",
    "QErrorSummary",
    "summarize",
    "format_table",
]


def qerror(true_cardinality, estimate) -> np.ndarray:
    """Return the element-wise q-error ``max(x/e, e/x)``.

    Both arguments may be scalars or arrays and are broadcast against each
    other.  Positive inputs below 1 are clamped to 1, mirroring the
    paper's evaluation protocol ("we consider only queries with non-empty
    results, and all estimates are >= 1").  Non-positive or non-finite
    inputs raise ``ValueError`` instead of silently producing an
    inf/nan-contaminated (or worse, deceptively finite) error sample:
    a zero cardinality means the caller violated the non-empty-results
    protocol, and a zero/negative estimate is a broken estimator.

    >>> float(qerror(100, 10))
    10.0
    >>> float(qerror(10, 100))
    10.0
    >>> float(qerror(42, 42))
    1.0
    >>> float(qerror(0.5, 0.25))
    1.0
    """
    x = np.asarray(true_cardinality, dtype=np.float64)
    e = np.asarray(estimate, dtype=np.float64)
    if not np.all(np.isfinite(x)) or np.any(x <= 0.0):
        raise ValueError(
            "q-error requires positive finite true cardinalities (the "
            "paper's protocol admits only non-empty results); got "
            f"min={x.min() if x.size else float('nan')}")
    if not np.all(np.isfinite(e)) or np.any(e <= 0.0):
        raise ValueError(
            "q-error requires positive finite estimates (estimators must "
            "clamp to >= 1); got "
            f"min={e.min() if e.size else float('nan')}")
    x = np.maximum(x, 1.0)
    e = np.maximum(e, 1.0)
    return np.maximum(x / e, e / x)


@dataclass(frozen=True)
class QErrorSummary:
    """Summary statistics of a q-error distribution.

    The fields mirror what the paper reports in its tables (mean, median,
    99 % quantile, max) and in its box plots (25/75 % box, 1/99 % whiskers).
    """

    count: int
    mean: float
    median: float
    q25: float
    q75: float
    q01: float
    q99: float
    max: float

    def as_dict(self) -> dict[str, float]:
        """Return the summary as a plain dictionary (for table rendering)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "q25": self.q25,
            "q75": self.q75,
            "q01": self.q01,
            "q99": self.q99,
            "max": self.max,
        }

    def row(self) -> dict[str, float]:
        """Return the four columns used by the paper's tables."""
        return {
            "mean": self.mean,
            "median": self.median,
            "99%": self.q99,
            "max": self.max,
        }


def summarize(errors: Iterable[float]) -> QErrorSummary:
    """Summarise a q-error sample into the paper's reporting statistics.

    Raises ``ValueError`` for an empty sample: a summary of nothing is
    always a bug in the calling experiment.
    """
    arr = np.asarray(list(errors) if not isinstance(errors, np.ndarray) else errors,
                     dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty q-error sample")
    return QErrorSummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        q25=float(np.quantile(arr, 0.25)),
        q75=float(np.quantile(arr, 0.75)),
        q01=float(np.quantile(arr, 0.01)),
        q99=float(np.quantile(arr, 0.99)),
        max=float(arr.max()),
    )


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str] | None = None,
                 float_fmt: str = "{:.2f}") -> str:
    """Render a list of dict rows as a GitHub-flavoured markdown table.

    ``columns`` fixes the column order; by default the keys of the first
    row are used.  Floats are formatted with ``float_fmt``; everything else
    with ``str``.
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    body = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in body))
              for i, col in enumerate(columns)]
    header = "| " + " | ".join(c.ljust(w) for c, w in zip(columns, widths)) + " |"
    rule = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    lines = [header, rule]
    lines += ["| " + " | ".join(v.ljust(w) for v, w in zip(line, widths)) + " |"
              for line in body]
    return "\n".join(lines)
