"""Figure 3 — estimation error per QFT by number of predicates (GB only).

The paper's reading: queries with exactly two predicates are a single
closed range (lower + upper bound), which only Singular Predicate
Encoding struggles with; at three predicates (range + one not-equal) the
99 % error of Range Predicate Encoding spikes, since it cannot encode
``<>``; Universal Conjunction Encoding and Limited Disjunction Encoding
stay consistent as predicates accumulate.
"""

from __future__ import annotations

from repro.estimators import LearnedEstimator
from repro.experiments.common import (
    SMALL,
    ExperimentResult,
    Scale,
    get_context,
    qft_factory,
)
from repro.metrics import qerror, summarize
from repro.models import GradientBoostingRegressor

__all__ = ["run", "PREDICATE_BUCKETS"]

#: (label, lo, hi) inclusive predicate-count buckets.
PREDICATE_BUCKETS = (
    ("2", 2, 2),
    ("3", 3, 3),
    ("4-6", 4, 6),
    ("7-10", 7, 10),
    ("11+", 11, 10_000),
)


def run(scale: Scale = SMALL) -> ExperimentResult:
    """Per-QFT, per-predicate-count error distributions under GB."""
    context = get_context(scale)
    table = context.forest
    rows = []
    for label in ("simple", "range", "conjunctive", "complex"):
        if label == "complex":
            train, test = context.mixed_workload()
        else:
            train, test = context.conjunctive_workload()
        estimator = LearnedEstimator(
            qft_factory(label, table, partitions=scale.partitions),
            GradientBoostingRegressor(n_estimators=scale.gb_trees),
        ).fit(train.queries, train.cardinalities)
        errors = qerror(test.cardinalities,
                        estimator.estimate_batch(test.queries))
        for bucket, lo, hi in PREDICATE_BUCKETS:
            sample = [float(e) for item, e in zip(test, errors)
                      if lo <= item.num_predicates <= hi]
            if not sample:
                continue
            summary = summarize(sample)
            rows.append({
                "qft": label,
                "predicates": bucket,
                "median": summary.median,
                "q75": summary.q75,
                "q99": summary.q99,
                "mean": summary.mean,
                "queries": summary.count,
            })
    return ExperimentResult(
        experiment="fig3",
        paper_artifact="Figure 3: errors per QFT by #predicates (GB)",
        rows=rows,
        boxplot_label_keys=("qft", "predicates"),
        notes=(
            "Expected shape: 'simple' already bad at 2 predicates (can only "
            "keep one bound of a range); 'range' spikes in the 99% error at "
            "3 predicates (cannot encode <>); conjunctive/complex stay "
            "consistent across predicate counts."
        ),
    )
