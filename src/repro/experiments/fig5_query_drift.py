"""Figure 5 — query drift: train on <= 2 attributes, test on >= 3.

The paper trains every QFT × {GB, NN} combination on low-dimensional
queries only and tests on high-dimensional queries, whose mean result
sizes are less than half as large — the model must extrapolate.
Finding: GB generalises well for all featurizations (with a larger 99 %
error at 8 attributes than without drift); the NN overfits visibly, but
less so with conjunctive/complex encodings.
"""

from __future__ import annotations

from repro import config
from repro.estimators import LearnedEstimator
from repro.experiments.common import (
    SMALL,
    ExperimentResult,
    Scale,
    get_context,
    qft_factory,
)
from repro.metrics import qerror, summarize
from repro.models import GradientBoostingRegressor, NeuralNetRegressor
from repro.workloads import (
    generate_conjunctive_workload,
    generate_mixed_workload,
)

__all__ = ["run"]

#: Attribute counts shown in the paper's figure: 1–2 are the training
#: rows (for contrast), 3/5/8 are the drifted test rows.
_PLOT_BUCKETS = (1, 2, 3, 5, 8)


def run(scale: Scale = SMALL) -> ExperimentResult:
    """Drifted train/test errors for {GB, NN} × all four QFTs."""
    context = get_context(scale)
    table = context.forest
    model_factories = {
        "GB": lambda: GradientBoostingRegressor(n_estimators=scale.gb_trees),
        "NN": lambda: NeuralNetRegressor(epochs=scale.nn_epochs),
    }
    rows = []
    # The paper trains on a *full-size* workload of low-dimensional
    # queries (at most two attributes) — not on the low-dimensional
    # slice of the regular workload, which would shrink the training
    # budget several-fold.
    low_dim = {
        "conjunctive": generate_conjunctive_workload(
            table, scale.train_queries, max_attributes=2,
            seed=config.DEFAULT_SEED + 5, name="drift-train-conjunctive"),
        "mixed": generate_mixed_workload(
            table, scale.train_queries, max_attributes=2,
            seed=config.DEFAULT_SEED + 6, name="drift-train-mixed"),
    }
    for label in ("simple", "range", "conjunctive", "complex"):
        if label == "complex":
            train = low_dim["mixed"]
            _, test_full = context.mixed_workload()
        else:
            train = low_dim["conjunctive"]
            _, test_full = context.conjunctive_workload()
        # Drift: testing on queries mentioning at least three attributes.
        test = test_full.filter(lambda it: it.num_attributes >= 3,
                                f"{test_full.name}-drifted")
        # The paper also plots the (in-distribution) low-dimensional rows.
        low_dim_test = test_full.filter(lambda it: it.num_attributes <= 2)
        for model_name, factory in model_factories.items():
            estimator = LearnedEstimator(
                qft_factory(label, table, partitions=scale.partitions),
                factory(),
            ).fit(train.queries, train.cardinalities)
            for part in (low_dim_test, test):
                errors = qerror(part.cardinalities,
                                estimator.estimate_batch(part.queries))
                groups: dict[int, list[float]] = {}
                for item, error in zip(part, errors):
                    groups.setdefault(item.num_attributes, []).append(float(error))
                for count in _PLOT_BUCKETS:
                    if count not in groups:
                        continue
                    summary = summarize(groups[count])
                    rows.append({
                        "model": model_name,
                        "qft": label,
                        "attributes": count,
                        "drifted": count >= 3,
                        "median": summary.median,
                        "q75": summary.q75,
                        "q99": summary.q99,
                        "mean": summary.mean,
                    })
    return ExperimentResult(
        experiment="fig5",
        paper_artifact="Figure 5: query drift (train <= 2 attrs, test >= 3)",
        rows=rows,
        boxplot_label_keys=("model", "qft", "attributes"),
        notes=(
            "Expected shape: GB compensates the drift for all QFTs (99% "
            "error at 8 attributes grows vs. the no-drift Figure 2); the NN "
            "shows a clear train/test gap, smallest under conjunctive/"
            "complex."
        ),
    )
