"""Table 5 — accuracy for different feature-vector lengths (JOB-light).

Universal Conjunction Encoding's partition count ``n`` trades information
loss (small ``n``) against learnability (large ``n``).  The paper sweeps
{8, 16, 32, 64, 256} per-attribute entries for GB on JOB-light, finds 32
best, and reports the feature-vector byte size (one extra entry holds the
per-attribute selectivity estimate).
"""

from __future__ import annotations

from repro.estimators import LocalModelEnsemble
from repro.experiments.common import (
    SMALL,
    ExperimentResult,
    Scale,
    evaluate_estimator,
    get_context,
)
from repro.featurize import ConjunctiveEncoding
from repro.featurize.joins import JoinQueryFeaturizer
from repro.models import GradientBoostingRegressor

__all__ = ["run", "PAPER_TABLE_5", "ENTRY_SWEEP"]

ENTRY_SWEEP = (8, 16, 32, 64, 256)

PAPER_TABLE_5 = [
    {"entries": 8, "bytes": 72, "mean": 16.98, "median": 1.63, "99%": 149.51, "max": 169.90},
    {"entries": 16, "bytes": 136, "mean": 11.49, "median": 1.52, "99%": 111.61, "max": 123.06},
    {"entries": 32, "bytes": 264, "mean": 8.88, "median": 1.52, "99%": 106.10, "max": 114.55},
    {"entries": 64, "bytes": 520, "mean": 20.13, "median": 1.90, "99%": 278.45, "max": 313.93},
    {"entries": 256, "bytes": 2136, "mean": 86.68, "median": 1.69, "99%": 1347.91, "max": 1539.26},
]


def run(scale: Scale = SMALL) -> ExperimentResult:
    """GB + conj on JOB-light for each per-attribute entry count."""
    context = get_context(scale)
    schema = context.imdb
    train = context.joblight_training()
    bench = context.joblight_benchmark()

    rows = []
    for entries in ENTRY_SWEEP:
        def factory(table, attrs, _n=entries):
            return ConjunctiveEncoding(table, attrs, max_partitions=_n)

        ensemble = LocalModelEnsemble(
            schema, factory,
            lambda: GradientBoostingRegressor(n_estimators=scale.gb_trees),
        ).fit(train.queries, train.cardinalities)
        summary = evaluate_estimator(ensemble, bench)
        # Feature-vector bytes for the largest sub-schema (float64 entries),
        # analogous to the paper's "bytes feat. vec." column.
        widest = JoinQueryFeaturizer(
            schema, schema.table_names,
            lambda t, a, _n=entries: ConjunctiveEncoding(t, a, max_partitions=_n),
        )
        rows.append({
            "entries": entries,
            "bytes": widest.feature_length * 8,
            "mean": summary.mean,
            "median": summary.median,
            "99%": summary.q99,
            "max": summary.max,
        })
    return ExperimentResult(
        experiment="tab5",
        paper_artifact="Table 5: accuracy for different feature vector lengths",
        rows=rows,
        paper_rows=PAPER_TABLE_5,
        notes=(
            "Expected shape: a sweet spot at moderate entry counts — small "
            "n loses information, large n is harder to learn from the same "
            "number of training queries."
        ),
    )
