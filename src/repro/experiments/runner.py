"""Command-line experiment runner.

Usage::

    python -m repro.experiments.runner --experiment fig1
    python -m repro.experiments.runner --experiment tab1 --scale full
    python -m repro.experiments.runner --all --trace trace.jsonl
    python -m repro.experiments.runner --list

Each experiment prints its measured rows and, where the paper reports
numbers, the paper's rows for side-by-side comparison.  Per-experiment
wall time comes from an ``experiment.run`` span; ``--trace PATH``
additionally records every pipeline span (featurize stages, training
epochs, estimation) to a JSONL file that ``repro obs report`` reads.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import obs
from repro.experiments import FULL, SMALL, ExperimentResult
from repro.experiments import (
    ablations,
    ext_extensions,
    fig1_qft_model,
    fig2_by_attributes,
    fig3_by_predicates,
    fig4_vs_established,
    fig5_query_drift,
    tab1_joblight,
    tab2_local_global,
    tab3_attr_selectivity,
    tab4_end_to_end,
    tab5_feature_length,
    tab6_convergence,
    tab7_time_memory,
)

#: Experiment id -> run callable.
EXPERIMENTS = {
    "fig1": fig1_qft_model.run,
    "fig2": fig2_by_attributes.run,
    "fig3": fig3_by_predicates.run,
    "fig4": fig4_vs_established.run,
    "fig5": fig5_query_drift.run,
    "tab1": tab1_joblight.run,
    "tab2": tab2_local_global.run,
    "tab3": tab3_attr_selectivity.run,
    "tab4": tab4_end_to_end.run,
    "tab5": tab5_feature_length.run,
    "tab6": tab6_convergence.run,
    "tab7": tab7_time_memory.run,
    "ablations": ablations.run,
    "extensions": ext_extensions.run,
}

_SCALES = {"small": SMALL, "full": FULL}


def _print_result(result: ExperimentResult | list[ExperimentResult]) -> None:
    results = result if isinstance(result, list) else [result]
    for item in results:
        print()
        print(item.markdown())
        print()


def main(argv: list[str] | None = None) -> int:
    """Runner entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        description="Run the paper-reproduction experiments."
    )
    parser.add_argument("--experiment", "-e", choices=sorted(EXPERIMENTS),
                        help="experiment id (fig1..fig5, tab1..tab7, ablations, "
                             "extensions)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--scale", choices=sorted(_SCALES), default="small",
                        help="dataset/training scale (default: small)")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record pipeline spans to a JSONL trace file")
    args = parser.parse_args(argv)

    if args.list:
        for key in sorted(EXPERIMENTS):
            print(key)
        return 0
    if not args.all and not args.experiment:
        parser.error("choose --experiment <id>, --all, or --list")

    scale = _SCALES[args.scale]
    chosen = sorted(EXPERIMENTS) if args.all else [args.experiment]
    with obs.ensure_tracing() as tracer:
        for key in chosen:
            print(f"== running {key} at scale {scale.name!r} ==")
            with obs.span("experiment.run", experiment=key,
                          scale=scale.name) as sp:
                result = EXPERIMENTS[key](scale)
                _print_result(result)
            print(f"== {key} finished in {sp.duration_seconds:.1f}s ==")
        if args.trace:
            from repro.obs import export

            count = export.write_spans_jsonl(tracer.finished(),
                                             Path(args.trace))
            print(f"wrote {count} spans to {args.trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
