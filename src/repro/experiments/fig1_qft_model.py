"""Figure 1 — q-error distribution by QFT × ML model combination (forest).

The paper's grid: {simple, range, conjunctive} × {GB, NN, MSCN} on the
conjunctive workload, plus {complex} × {GB, NN, MSCN} on the mixed
workload (separated by a vertical line in the plot).  The paper's three
take-aways, which this experiment checks:

1. under simple/range the local model choice (GB vs NN) hardly matters,
2. under conjunctive/complex, GB and MSCN outperform NN,
3. under GB or MSCN, conjunctive/complex clearly beat the other QFTs.
"""

from __future__ import annotations

from repro.estimators import LearnedEstimator
from repro.estimators.learned import MSCNEstimator
from repro.experiments.common import (
    SMALL,
    ExperimentResult,
    Scale,
    evaluate_estimator,
    get_context,
    qft_factory,
)
from repro.models import GradientBoostingRegressor, NeuralNetRegressor
from repro.models.mscn import MSCNInputBuilder, MSCNModel

__all__ = ["run"]

#: QFT label -> MSCN input-builder mode.
_MSCN_MODES = {
    "simple": "basic",
    "range": "range",
    "conjunctive": "qft",
    "complex": "qft",
}


def _workload_for(context, label: str):
    if label == "complex":
        return context.mixed_workload()
    return context.conjunctive_workload()


def run(scale: Scale = SMALL) -> ExperimentResult:
    """Run the Figure 1 grid and return box-plot statistics per combo."""
    context = get_context(scale)
    table = context.forest
    rows = []
    for label in ("simple", "range", "conjunctive", "complex"):
        train, test = _workload_for(context, label)
        combos = {
            "GB": LearnedEstimator(
                qft_factory(label, table, partitions=scale.partitions),
                GradientBoostingRegressor(n_estimators=scale.gb_trees),
            ),
            "NN": LearnedEstimator(
                qft_factory(label, table, partitions=scale.partitions),
                NeuralNetRegressor(epochs=scale.nn_epochs),
            ),
            "MSCN": MSCNEstimator(MSCNModel(
                MSCNInputBuilder(table, mode=_MSCN_MODES[label],
                                 max_partitions=scale.partitions),
                epochs=scale.mscn_epochs,
            )),
        }
        for model_name, estimator in combos.items():
            estimator.fit(train.queries, train.cardinalities)
            summary = evaluate_estimator(estimator, test)
            rows.append({
                "model": model_name,
                "qft": label,
                "workload": train.name.replace("-train", ""),
                "median": summary.median,
                "q25": summary.q25,
                "q75": summary.q75,
                "q01": summary.q01,
                "q99": summary.q99,
                "mean": summary.mean,
            })
    return ExperimentResult(
        experiment="fig1",
        paper_artifact="Figure 1: error distribution by QFT × ML model",
        rows=rows,
        paper_rows=[],
        boxplot_label_keys=("model", "qft"),
        notes=(
            "The paper shows box plots, not numbers.  Expected shape: "
            "(1) GB ≈ NN under simple/range; (2) GB and MSCN beat NN under "
            "conjunctive/complex; (3) conjunctive/complex beat simple/range "
            "under GB and MSCN."
        ),
    )
