"""Table 4 — end-to-end run times for JOB-light.

The paper integrates its estimator into PostgreSQL and reports total
JOB-light run times: Postgres 144.95 s, our approach 142.45 s, true
cardinalities 142.20 s — i.e. the learned estimates recover almost the
whole gap between Postgres's estimates and the optimum.

Offline we reproduce the mechanism: a System-R DP picks join orders
under each estimator, and plans are charged their *true* intermediate
sizes (tuples of work).  The reported "relative" column normalises by
the true-cardinality configuration, which is the comparison the paper's
conclusion rests on.
"""

from __future__ import annotations

from repro.estimators import LocalModelEnsemble, PostgresEstimator, TrueCardinalityEstimator
from repro.experiments.common import (
    SMALL,
    ExperimentResult,
    Scale,
    get_context,
    qft_factory,
)
from repro.models import GradientBoostingRegressor
from repro.optimizer import workload_work

__all__ = ["run", "PAPER_TABLE_4"]

PAPER_TABLE_4 = [
    {"estimator": "Postgres", "total (s)": 144.95, "relative": 144.95 / 142.20},
    {"estimator": "Our approach", "total (s)": 142.45, "relative": 142.45 / 142.20},
    {"estimator": "True cardinalities", "total (s)": 142.20, "relative": 1.0},
]


def run(scale: Scale = SMALL) -> ExperimentResult:
    """Plan-choice work under Postgres / learned / true cardinalities."""
    context = get_context(scale)
    schema = context.imdb
    bench = context.joblight_benchmark()
    train = context.joblight_training()

    learned = LocalModelEnsemble(
        schema,
        lambda table, attrs: qft_factory("conjunctive", table, attrs,
                                         partitions=scale.partitions),
        lambda: GradientBoostingRegressor(n_estimators=scale.gb_trees),
    ).fit(train.queries, train.cardinalities)

    configurations = [
        ("Postgres", PostgresEstimator(schema)),
        ("Our approach", learned),
        ("True cardinalities", TrueCardinalityEstimator(schema)),
    ]
    work = {name: workload_work(bench.queries, schema, estimator)
            for name, estimator in configurations}
    true_work = work["True cardinalities"]
    rows = [{"estimator": name,
             "total work (tuples)": total,
             "relative": total / true_work}
            for name, total in work.items()]
    return ExperimentResult(
        experiment="tab4",
        paper_artifact="Table 4: end-to-end run times (plan-choice work)",
        rows=rows,
        paper_rows=PAPER_TABLE_4,
        notes=(
            "Work (tuples processed by the chosen plans) replaces wall-clock "
            "seconds; compare the 'relative' columns.  Expected shape: "
            "our approach ≈ true cardinalities, Postgres slightly worse."
        ),
    )
