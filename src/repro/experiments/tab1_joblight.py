"""Table 1 — JOB-light join queries under local models.

The paper evaluates local NN and GB models with the simple/range/conj
QFTs on the 70 JOB-light queries.  Reported findings: for NN, conj
dominates; overall GB + range is best ("no surprise since JOB-light
queries contain at most one point- or range predicate per attribute"),
while GB + conj has the best median.  Limited Disjunction Encoding is
omitted because JOB-light has no disjunctions (its vectors equal
Universal Conjunction Encoding's).

Per the paper, Universal Conjunction Encoding uses 8 per-attribute
entries for NN and 32 for GB.
"""

from __future__ import annotations

from repro.estimators import LocalModelEnsemble
from repro.experiments.common import (
    SMALL,
    ExperimentResult,
    Scale,
    evaluate_estimator,
    get_context,
    qft_factory,
)
from repro.models import GradientBoostingRegressor, NeuralNetRegressor

__all__ = ["run", "PAPER_TABLE_1"]

PAPER_TABLE_1 = [
    {"model + QFT": "NN + simple", "mean": 144.47, "median": 10.67, "99%": 2507.34, "max": 3331.07},
    {"model + QFT": "NN + range", "mean": 110.23, "median": 7.60, "99%": 2050.50, "max": 3573.30},
    {"model + QFT": "NN + conj", "mean": 19.97, "median": 5.74, "99%": 129.45, "max": 134.37},
    {"model + QFT": "GB + simple", "mean": 4.03, "median": 1.88, "99%": 34.06, "max": 56.39},
    {"model + QFT": "GB + range", "mean": 3.92, "median": 1.65, "99%": 29.77, "max": 45.51},
    {"model + QFT": "GB + conj", "mean": 8.88, "median": 1.52, "99%": 106.10, "max": 114.55},
]

#: Per-attribute entries for conj per model family (paper Table 1 setup).
_CONJ_PARTITIONS = {"NN": 8, "GB": 32}


def run(scale: Scale = SMALL) -> ExperimentResult:
    """Local NN/GB × simple/range/conj on the JOB-light benchmark."""
    context = get_context(scale)
    schema = context.imdb
    train = context.joblight_training()
    bench = context.joblight_benchmark()

    model_factories = {
        "NN": lambda: NeuralNetRegressor(epochs=scale.nn_epochs),
        "GB": lambda: GradientBoostingRegressor(n_estimators=scale.gb_trees),
    }
    rows = []
    for model_name in ("NN", "GB"):
        for label in ("simple", "range", "conjunctive"):
            partitions = _CONJ_PARTITIONS[model_name]

            def factory(table, attributes, _label=label, _p=partitions):
                return qft_factory(_label, table, attributes, partitions=_p)

            ensemble = LocalModelEnsemble(
                schema, factory, model_factories[model_name],
                name=f"{model_name}+{label}",
            ).fit(train.queries, train.cardinalities)
            summary = evaluate_estimator(ensemble, bench)
            short = "conj" if label == "conjunctive" else label
            rows.append({
                "model + QFT": f"{model_name} + {short}",
                "mean": summary.mean,
                "median": summary.median,
                "99%": summary.q99,
                "max": summary.max,
            })
    return ExperimentResult(
        experiment="tab1",
        paper_artifact="Table 1: 70 hand-written JOB-light join queries",
        rows=rows,
        paper_rows=PAPER_TABLE_1,
        notes=(
            "Expected shape: GB rows dominate NN rows; GB+range has the "
            "best mean; GB+conj has the best median; NN+conj dominates the "
            "other NN rows."
        ),
    )
