"""Table 7 + Section 5.7 — featurization time and estimator memory.

Two measurements:

* **Featurization time** (Table 7): microseconds per query for each QFT
  over the forest workload.  Expected ordering: simple < range <
  conjunctive < complex, all well under a millisecond.
* **Memory consumption** (Section 5.7 text): trained-model footprints.
  Expected ordering: GB smallest (kilobytes), MSCN next, NN largest
  (around a megabyte); the sampling baseline's footprint is the sample
  itself.
"""

from __future__ import annotations

from repro import obs
from repro.estimators import LearnedEstimator, SamplingEstimator
from repro.estimators.learned import MSCNEstimator
from repro.experiments.common import (
    SMALL,
    ExperimentResult,
    Scale,
    get_context,
    qft_factory,
)
from repro.models import GradientBoostingRegressor, NeuralNetRegressor
from repro.models.mscn import MSCNInputBuilder, MSCNModel

__all__ = ["run", "PAPER_TABLE_7"]

PAPER_TABLE_7 = [
    {"measure": "featurization", "subject": "simple", "value": 21.6, "unit": "us/query"},
    {"measure": "featurization", "subject": "range", "value": 29.7, "unit": "us/query"},
    {"measure": "featurization", "subject": "conjunctive", "value": 43.2, "unit": "us/query"},
    {"measure": "featurization", "subject": "complex", "value": 72.9, "unit": "us/query"},
]


def run(scale: Scale = SMALL) -> ExperimentResult:
    """Measure featurization µs/query and model memory footprints."""
    context = get_context(scale)
    table = context.forest
    conj_train, _ = context.conjunctive_workload()
    mixed_train, _ = context.mixed_workload()

    rows = []
    sample = 1_000
    with obs.ensure_tracing():
        for label in ("simple", "range", "conjunctive", "complex"):
            workload = mixed_train if label == "complex" else conj_train
            queries = workload.queries[:sample]
            featurizer = qft_factory(label, table,
                                     partitions=scale.partitions)
            with obs.span("featurize.workload", qft=label) as sp:
                featurizer.featurize_batch(queries)
            rows.append({
                "measure": "featurization",
                "subject": label,
                "value": sp.duration_seconds / len(queries) * 1e6,
                "unit": "us/query",
            })

    # Memory footprints of trained estimators (small training runs — the
    # parameter count, not the accuracy, is what is measured here).
    head = conj_train.queries[:1_000]
    cards = conj_train.cardinalities[:1_000]
    gb = LearnedEstimator(
        qft_factory("conjunctive", table, partitions=scale.partitions),
        GradientBoostingRegressor(n_estimators=scale.gb_trees),
    ).fit(head, cards)
    nn = LearnedEstimator(
        qft_factory("conjunctive", table, partitions=scale.partitions),
        NeuralNetRegressor(epochs=5),
    ).fit(head, cards)
    mscn = MSCNEstimator(MSCNModel(
        MSCNInputBuilder(table, mode="qft", max_partitions=scale.partitions),
        epochs=2,
    )).fit(list(head), cards)
    sampling = SamplingEstimator(table, per_query_sample=False)
    for name, footprint in (
        ("GB", gb.memory_bytes()),
        ("NN", nn.memory_bytes()),
        ("MSCN", mscn.memory_bytes()),
        ("Sampling (fixed sample)", sampling.sample_bytes()),
    ):
        rows.append({"measure": "memory", "subject": name,
                     "value": footprint / 1024.0, "unit": "kB"})

    return ExperimentResult(
        experiment="tab7",
        paper_artifact="Table 7: QFT time consumption + Section 5.7 memory",
        rows=rows,
        paper_rows=PAPER_TABLE_7
        + [
            {"measure": "memory", "subject": "GB", "value": 4.8, "unit": "kB"},
            {"measure": "memory", "subject": "MSCN", "value": 320.0, "unit": "kB (lower bound)"},
            {"measure": "memory", "subject": "NN", "value": 1024.0, "unit": "kB (>1 MB)"},
            {"measure": "memory", "subject": "Sampling", "value": 142.0, "unit": "kB"},
        ],
        notes=(
            "Expected shape: featurization time grows with QFT complexity "
            "(simple < range < conjunctive < complex) and stays far below "
            "1 ms; GB is the smallest model, NN the largest."
        ),
    )
