"""Shared experiment infrastructure: scales, cached contexts, results.

Building the forest table, the IMDb schema, and the labeled workloads is
the expensive part of every experiment, and many experiments share them.
:func:`get_context` returns a per-scale :class:`Context` that builds each
artifact lazily exactly once per process, so a full benchmark run pays
for data generation a single time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro import config, obs
from repro.data.forest import generate_forest
from repro.data.imdb import generate_imdb
from repro.data.schema import Schema
from repro.data.table import Table
from repro.featurize import (
    ConjunctiveEncoding,
    DisjunctionEncoding,
    RangeEncoding,
    SingularEncoding,
)
from repro.metrics import QErrorSummary, format_table, qerror, summarize
from repro.models import GradientBoostingRegressor, NeuralNetRegressor
from repro.workloads import (
    Workload,
    generate_conjunctive_workload,
    generate_joblight_benchmark,
    generate_mixed_workload,
)
from repro.workloads.joblight import generate_balanced_training

__all__ = [
    "Scale", "SMALL", "FULL", "Context", "get_context",
    "ExperimentResult", "qft_factory", "gb_factory", "nn_factory",
    "evaluate_estimator", "summary_row", "QFT_LABELS",
]

#: Paper QFT label -> featurizer class, in the paper's plot order.
QFT_LABELS = ("simple", "range", "conjunctive", "complex")


@dataclass(frozen=True)
class Scale:
    """Dataset/training sizes for one experiment configuration."""

    name: str
    forest_rows: int
    train_queries: int
    test_queries: int
    imdb_title_rows: int
    queries_per_subschema: int
    gb_trees: int
    nn_epochs: int
    mscn_epochs: int
    #: Per-attribute partitions for conjunctive/complex encodings.
    partitions: int = 32
    #: Queries per workload in the featurization throughput benchmark.
    featurize_queries: int = 10_000


#: Laptop-minutes configuration used by tests and default benchmarks.
SMALL = Scale(
    name="small",
    forest_rows=20_000,
    train_queries=4_000,
    test_queries=1_500,
    imdb_title_rows=5_000,
    queries_per_subschema=600,
    gb_trees=150,
    nn_epochs=40,
    mscn_epochs=25,
)

#: Closer-to-paper configuration (minutes to an hour on a laptop).
FULL = Scale(
    name="full",
    forest_rows=config.FOREST_ROWS,
    train_queries=20_000,
    test_queries=5_000,
    imdb_title_rows=config.IMDB_TITLE_ROWS,
    queries_per_subschema=1_500,
    gb_trees=250,
    nn_epochs=80,
    mscn_epochs=50,
)


def qft_factory(label: str, table: Table, attributes=None,
                partitions: int = 32, attr_selectivity: bool = True):
    """Build a fitted QFT by its paper label."""
    if label == "simple":
        return SingularEncoding(table, attributes)
    if label == "range":
        return RangeEncoding(table, attributes)
    if label == "conjunctive":
        return ConjunctiveEncoding(table, attributes,
                                   max_partitions=partitions,
                                   attr_selectivity=attr_selectivity)
    if label == "complex":
        return DisjunctionEncoding(table, attributes,
                                   max_partitions=partitions,
                                   attr_selectivity=attr_selectivity)
    raise ValueError(f"unknown QFT label {label!r}; expected {QFT_LABELS}")


def gb_factory(scale: Scale) -> Callable[[], GradientBoostingRegressor]:
    """Gradient-boosting model factory at the given scale."""
    return lambda: GradientBoostingRegressor(n_estimators=scale.gb_trees)


def nn_factory(scale: Scale) -> Callable[[], NeuralNetRegressor]:
    """Feed-forward NN model factory at the given scale."""
    return lambda: NeuralNetRegressor(epochs=scale.nn_epochs)


class Context:
    """Lazily built, cached data artifacts for one scale."""

    def __init__(self, scale: Scale) -> None:
        self.scale = scale
        self._cache: dict[str, object] = {}

    def _get(self, key: str, build: Callable[[], object]):
        if key not in self._cache:
            self._cache[key] = build()
        return self._cache[key]

    @property
    def forest(self) -> Table:
        """The synthetic forest covertype table."""
        return self._get("forest", lambda: generate_forest(
            rows=self.scale.forest_rows))

    @property
    def imdb(self) -> Schema:
        """The synthetic IMDb star schema."""
        return self._get("imdb", lambda: generate_imdb(
            title_rows=self.scale.imdb_title_rows))

    def conjunctive_workload(self) -> tuple[Workload, Workload]:
        """(train, test) of the forest conjunctive workload."""
        def build():
            total = self.scale.train_queries + self.scale.test_queries
            workload = generate_conjunctive_workload(self.forest, total)
            return workload.split(self.scale.train_queries)
        return self._get("conjunctive", build)

    def mixed_workload(self) -> tuple[Workload, Workload]:
        """(train, test) of the forest mixed workload."""
        def build():
            total = self.scale.train_queries + self.scale.test_queries
            workload = generate_mixed_workload(self.forest, total,
                                               seed=config.DEFAULT_SEED + 1)
            return workload.split(self.scale.train_queries)
        return self._get("mixed", build)

    def joblight_benchmark(self) -> Workload:
        """The 70-query JOB-light-style benchmark."""
        return self._get("joblight", lambda: generate_joblight_benchmark(self.imdb))

    def joblight_training(self) -> Workload:
        """Balanced per-sub-schema training workload for join experiments."""
        return self._get("joblight_train", lambda: generate_balanced_training(
            self.imdb, self.scale.queries_per_subschema))


_CONTEXTS: dict[str, Context] = {}


def get_context(scale: Scale = SMALL) -> Context:
    """Process-wide cached context for ``scale``."""
    if scale.name not in _CONTEXTS:
        _CONTEXTS[scale.name] = Context(scale)
    return _CONTEXTS[scale.name]


@dataclass
class ExperimentResult:
    """Measured rows of one experiment plus the paper's reference values."""

    experiment: str
    #: What the paper's corresponding table/figure is.
    paper_artifact: str
    #: Measured rows (dicts; column order from the first row).
    rows: list[dict] = field(default_factory=list)
    #: The paper's reported rows, for side-by-side comparison.
    paper_rows: list[dict] = field(default_factory=list)
    #: Free-text notes on how to read the comparison.
    notes: str = ""
    #: Row columns forming box-plot labels; non-empty renders an ASCII
    #: box plot (the paper's figures are box plots) under the table.
    boxplot_label_keys: tuple[str, ...] = ()

    def markdown(self) -> str:
        """Render measured (and paper) rows as markdown."""
        parts = [f"### {self.experiment} — {self.paper_artifact}", ""]
        parts.append("**Measured**")
        parts.append("")
        parts.append(format_table(self.rows))
        if self.boxplot_label_keys and self.rows:
            from repro.plotting import boxplot_from_rows

            parts += ["", "```",
                      boxplot_from_rows(self.rows,
                                        list(self.boxplot_label_keys)),
                      "```"]
        if self.paper_rows:
            parts += ["", "**Paper reports**", "", format_table(self.paper_rows)]
        if self.notes:
            parts += ["", self.notes]
        return "\n".join(parts)


def evaluate_estimator(estimator, workload: Workload) -> QErrorSummary:
    """q-error summary of ``estimator`` over ``workload``.

    Per-query q-errors also stream into the ``estimator.qerror``
    histogram, so traced experiment runs carry the error distribution
    alongside the timing spans.
    """
    with obs.span("experiment.evaluate",
                  estimator=getattr(estimator, "name", type(estimator).__name__),
                  n_queries=len(workload.queries)):
        estimates = estimator.estimate_batch(workload.queries)
        errors = qerror(workload.cardinalities, estimates)
    obs.get_registry().histogram("estimator.qerror").record_many(errors)
    return summarize(errors)


def summary_row(label: Mapping[str, object] | str,
                summary: QErrorSummary) -> dict:
    """A table row combining a label with the paper's four error columns."""
    row = dict(label) if isinstance(label, Mapping) else {"setup": label}
    row.update(summary.row())
    return row
