"""Table 3 — effect of the per-attribute selectivity estimates.

Algorithm 1's gray lines append, per attribute, a uniformity-assumption
selectivity estimate to the feature vector.  The paper ablates this
(w/ attrSel vs w/o attrSel) for GB/NN × conj/comp on the forest
workloads and finds the difference mostly marginal, but "in all except
one case, the worst case error (max) is reduced".
"""

from __future__ import annotations

from repro.estimators import LearnedEstimator
from repro.experiments.common import (
    SMALL,
    ExperimentResult,
    Scale,
    evaluate_estimator,
    get_context,
    qft_factory,
)
from repro.models import GradientBoostingRegressor, NeuralNetRegressor

__all__ = ["run", "PAPER_TABLE_3"]

PAPER_TABLE_3 = [
    {"model": "GB+conj w/ attrSel", "mean": 2.65, "median": 1.12, "99%": 20.19, "max": 4709.14},
    {"model": "GB+conj w/o attrSel", "mean": 2.93, "median": 1.23, "99%": 25.78, "max": 3876.95},
    {"model": "GB+comp w/ attrSel", "mean": 2.95, "median": 1.11, "99%": 18.31, "max": 6051.11},
    {"model": "GB+comp w/o attrSel", "mean": 2.92, "median": 1.06, "99%": 16.00, "max": 8823.52},
    {"model": "NN+conj w/ attrSel", "mean": 3.65, "median": 1.36, "99%": 19.80, "max": 23912.81},
    {"model": "NN+conj w/o attrSel", "mean": 4.00, "median": 1.28, "99%": 16.93, "max": 38377.30},
    {"model": "NN+comp w/ attrSel", "mean": 5.08, "median": 1.21, "99%": 37.54, "max": 16482.75},
    {"model": "NN+comp w/o attrSel", "mean": 39.74, "median": 3.20, "99%": 268.39, "max": 246047.41},
]


def run(scale: Scale = SMALL) -> ExperimentResult:
    """GB/NN × conj/comp × with/without per-attribute selectivity."""
    context = get_context(scale)
    table = context.forest
    model_factories = {
        "GB": lambda: GradientBoostingRegressor(n_estimators=scale.gb_trees),
        "NN": lambda: NeuralNetRegressor(epochs=scale.nn_epochs),
    }
    rows = []
    for model_name in ("GB", "NN"):
        for label, short in (("conjunctive", "conj"), ("complex", "comp")):
            if label == "complex":
                train, test = context.mixed_workload()
            else:
                train, test = context.conjunctive_workload()
            for attr_sel in (True, False):
                featurizer = qft_factory(
                    label, table, partitions=scale.partitions,
                    attr_selectivity=attr_sel,
                )
                estimator = LearnedEstimator(
                    featurizer, model_factories[model_name]()
                ).fit(train.queries, train.cardinalities)
                summary = evaluate_estimator(estimator, test)
                tag = "w/ attrSel" if attr_sel else "w/o attrSel"
                rows.append({
                    "model": f"{model_name}+{short} {tag}",
                    "mean": summary.mean,
                    "median": summary.median,
                    "99%": summary.q99,
                    "max": summary.max,
                })
    return ExperimentResult(
        experiment="tab3",
        paper_artifact="Table 3: effect of per-attribute selectivity estimates",
        rows=rows,
        paper_rows=PAPER_TABLE_3,
        notes=(
            "Expected shape: differences mostly marginal; appending the "
            "selectivity estimate tends to reduce the worst-case (max) "
            "error, most visibly for the NN."
        ),
    )
