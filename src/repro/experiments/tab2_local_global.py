"""Table 2 — JOB-light: local vs. global models.

Three configurations: the unmodified global MSCN (*MSCN w/o mods*), MSCN
with Universal Conjunction Encoding as its predicate featurization
(*MSCN + conj*, Section 4.2), and the local NN + conj ensemble.  The
paper's findings: the QFT upgrade significantly reduces MSCN's errors,
and local models beat the global model on joins — hence "we recommend to
use local models".
"""

from __future__ import annotations

from repro.estimators import LocalModelEnsemble
from repro.estimators.learned import MSCNEstimator
from repro.experiments.common import (
    SMALL,
    ExperimentResult,
    Scale,
    evaluate_estimator,
    get_context,
    qft_factory,
)
from repro.models import NeuralNetRegressor
from repro.models.mscn import MSCNInputBuilder, MSCNModel

__all__ = ["run", "PAPER_TABLE_2"]

PAPER_TABLE_2 = [
    {"model + QFT": "MSCN w/o mods (global)", "mean": 138.94, "median": 11.23, "99%": 4209.0, "max": 5460.0},
    {"model + QFT": "MSCN + conj (global)", "mean": 119.83, "median": 5.26, "99%": 1465.0, "max": 1811.0},
    {"model + QFT": "NN + conj (local)", "mean": 19.97, "median": 5.74, "99%": 129.0, "max": 134.0},
]


def run(scale: Scale = SMALL) -> ExperimentResult:
    """MSCN w/o mods vs MSCN + conj vs local NN + conj on JOB-light."""
    context = get_context(scale)
    schema = context.imdb
    train = context.joblight_training()
    bench = context.joblight_benchmark()

    rows = []
    for name, mode in (("MSCN w/o mods (global)", "basic"),
                       ("MSCN + conj (global)", "qft")):
        estimator = MSCNEstimator(MSCNModel(
            MSCNInputBuilder(schema, mode=mode,
                             max_partitions=scale.partitions),
            epochs=scale.mscn_epochs,
        ), name=name).fit(train.queries, train.cardinalities)
        summary = evaluate_estimator(estimator, bench)
        rows.append({"model + QFT": name, "mean": summary.mean,
                     "median": summary.median, "99%": summary.q99,
                     "max": summary.max})

    local = LocalModelEnsemble(
        schema,
        lambda table, attrs: qft_factory("conjunctive", table, attrs,
                                         partitions=8),
        lambda: NeuralNetRegressor(epochs=scale.nn_epochs),
        name="NN + conj (local)",
    ).fit(train.queries, train.cardinalities)
    summary = evaluate_estimator(local, bench)
    rows.append({"model + QFT": "NN + conj (local)", "mean": summary.mean,
                 "median": summary.median, "99%": summary.q99,
                 "max": summary.max})

    return ExperimentResult(
        experiment="tab2",
        paper_artifact="Table 2: JOB-light — local vs. global models",
        rows=rows,
        paper_rows=PAPER_TABLE_2,
        notes=(
            "Expected shape: MSCN + conj improves on MSCN w/o mods across "
            "the board; the local NN + conj beats both global rows."
        ),
    )
