"""Experiment harness: one module per paper table/figure.

Every experiment module exposes ``run(scale) -> ExperimentResult``.  The
``scale`` is a :class:`~repro.experiments.common.Scale` bundle of dataset
and training sizes; ``SMALL`` (the default, laptop-minutes) and ``FULL``
(closer to the paper's setup) are predefined.  Results carry the measured
rows plus the paper's reported numbers for side-by-side comparison.

Run from the command line::

    python -m repro.experiments.runner --experiment fig1
    python -m repro.experiments.runner --all --scale small
"""

from repro.experiments.common import (
    SMALL,
    FULL,
    ExperimentResult,
    Scale,
    get_context,
)

__all__ = ["SMALL", "FULL", "Scale", "ExperimentResult", "get_context"]
