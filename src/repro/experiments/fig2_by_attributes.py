"""Figure 2 — estimation error per QFT by number of attributes (GB only).

The paper groups the forest test queries by the number of attributes
mentioned (1, 2, 3, 5, 8) and shows, for GB, that accuracy worsens with
more attributes, that Universal Conjunction Encoding beats Singular and
Range Predicate Encoding throughout, and that Limited Disjunction
Encoding (on the mixed workload) is about as good as Universal
Conjunction Encoding (on the conjunctive workload).
"""

from __future__ import annotations

from repro.estimators import LearnedEstimator
from repro.experiments.common import (
    SMALL,
    ExperimentResult,
    Scale,
    get_context,
    qft_factory,
)
from repro.metrics import qerror, summarize
from repro.models import GradientBoostingRegressor

__all__ = ["run", "ATTRIBUTE_BUCKETS"]

#: Attribute counts the paper plots.
ATTRIBUTE_BUCKETS = (1, 2, 3, 5, 8)


def run(scale: Scale = SMALL) -> ExperimentResult:
    """Per-QFT, per-attribute-count error distributions under GB."""
    context = get_context(scale)
    table = context.forest
    rows = []
    for label in ("simple", "range", "conjunctive", "complex"):
        if label == "complex":
            train, test = context.mixed_workload()
        else:
            train, test = context.conjunctive_workload()
        estimator = LearnedEstimator(
            qft_factory(label, table, partitions=scale.partitions),
            GradientBoostingRegressor(n_estimators=scale.gb_trees),
        ).fit(train.queries, train.cardinalities)
        estimates = estimator.estimate_batch(test.queries)
        errors = qerror(test.cardinalities, estimates)
        groups: dict[int, list[float]] = {}
        for item, error in zip(test, errors):
            groups.setdefault(item.num_attributes, []).append(float(error))
        for count in ATTRIBUTE_BUCKETS:
            if count not in groups:
                continue
            summary = summarize(groups[count])
            rows.append({
                "qft": label,
                "attributes": count,
                "median": summary.median,
                "q75": summary.q75,
                "q99": summary.q99,
                "mean": summary.mean,
                "queries": summary.count,
            })
    return ExperimentResult(
        experiment="fig2",
        paper_artifact="Figure 2: errors per QFT by #attributes (GB)",
        rows=rows,
        boxplot_label_keys=("qft", "attributes"),
        notes=(
            "Expected shape: errors grow with the attribute count for every "
            "QFT; conjunctive < range/simple throughout; complex (mixed "
            "workload) tracks conjunctive."
        ),
    )
