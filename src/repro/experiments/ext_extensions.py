"""Section 6 extensions, made measurable (beyond the paper's evaluation).

The paper *outlines* two featurization extensions without evaluating
them; this experiment quantifies both:

* **GROUP BY** — the binary grouping vector concatenated with a QFT,
  regressing the number of groups (Section 6, first paragraph).  We
  compare the learned group-count estimator against the trivial
  "distinct product" upper bound (product of the grouping attributes'
  distinct counts, capped by the qualifying row estimate).
* **String prefixes** — the per-letter bucket encoding for
  ``LIKE 'a%'`` predicates.  We measure the bucket selectivity estimate
  against the true prefix selectivity over a synthetic dictionary.
"""

from __future__ import annotations

import numpy as np

from repro.estimators.groupby import (
    GroupCountEstimator,
    generate_groupby_workload,
)
from repro.experiments.common import (
    SMALL,
    ExperimentResult,
    Scale,
    get_context,
)
from repro.featurize import ConjunctiveEncoding
from repro.featurize.strings import StringPrefixEncoding
from repro.metrics import qerror, summarize
from repro.models import GradientBoostingRegressor

__all__ = ["run_groupby", "run_strings", "run"]


def _distinct_product_baseline(table, workload) -> np.ndarray:
    """Group-count bound a DBMS could compute: the product of the
    grouping attributes' distinct counts, capped by the (histogram-
    estimated) number of qualifying rows."""
    from repro.estimators import PostgresEstimator
    from repro.sql.ast import Query

    postgres = PostgresEstimator(table)
    estimates = []
    for item in workload:
        bound = 1.0
        for attr in item.query.group_by:
            bound *= table.column(attr).stats.distinct_count
        qualifying = postgres.estimate(
            Query.single_table(table.name, item.query.where))
        estimates.append(max(min(bound, qualifying), 1.0))
    return np.asarray(estimates)


def run_groupby(scale: Scale = SMALL) -> ExperimentResult:
    """Learned group counts vs. the distinct-product bound."""
    context = get_context(scale)
    table = context.forest
    # Group on the high-cardinality terrain attributes (A1..A10): that is
    # where group counts are data-dependent and estimation is genuinely
    # hard — grouping on binary indicators is trivially bounded by 2.
    workload = generate_groupby_workload(
        table, scale.train_queries + scale.test_queries,
        group_columns=[f"A{i}" for i in range(1, 11)])
    train, test = workload.split(scale.train_queries)

    estimator = GroupCountEstimator(
        ConjunctiveEncoding(table, max_partitions=scale.partitions),
        table,
        GradientBoostingRegressor(n_estimators=scale.gb_trees,
                                  min_samples_leaf=5),
    ).fit(train.queries, train.cardinalities)

    learned = summarize(qerror(test.cardinalities,
                               estimator.estimate_batch(test.queries)))
    baseline = summarize(qerror(test.cardinalities,
                                _distinct_product_baseline(table, test)))
    rows = [
        {"estimator": "GB + conj ⊕ grouping vector", "mean": learned.mean,
         "median": learned.median, "99%": learned.q99},
        {"estimator": "distinct-product bound", "mean": baseline.mean,
         "median": baseline.median, "99%": baseline.q99},
    ]
    return ExperimentResult(
        experiment="ext-groupby",
        paper_artifact="Section 6: GROUP BY featurization (outlined, not evaluated)",
        rows=rows,
        notes=(
            "Expected shape: the learned estimator beats the "
            "distinct-product bound decisively — grouping shrinks result "
            "sizes in data-dependent ways the bound cannot see."
        ),
    )


def run_strings(scale: Scale = SMALL) -> ExperimentResult:
    """Bucket selectivity of LIKE-prefix predicates vs. ground truth."""
    rng = np.random.default_rng(scale.train_queries)
    # A Zipf-ish dictionary of synthetic words.
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    words = []
    for _ in range(4_000):
        length = int(rng.integers(3, 10))
        first = alphabet[int(rng.zipf(1.4)) % 26]
        rest = "".join(alphabet[i] for i in rng.integers(0, 26, length - 1))
        words.append(first + rest)

    rows = []
    for buckets in (13, 26, 104):
        encoding = StringPrefixEncoding(words, buckets=buckets)
        dictionary = encoding.dictionary
        errors = []
        for _ in range(300):
            word = dictionary[int(rng.integers(len(dictionary)))]
            prefix = word[:int(rng.integers(1, 3))]
            true_sel = sum(1 for w in dictionary
                           if w.startswith(prefix)) / len(dictionary)
            est_sel = encoding.prefix_selectivity(prefix)
            errors.append(float(qerror(max(true_sel, 1e-9) * len(dictionary),
                                       max(est_sel, 1e-9) * len(dictionary))))
        summary = summarize(errors)
        rows.append({"buckets": buckets, "mean": summary.mean,
                     "median": summary.median, "99%": summary.q99})
    return ExperimentResult(
        experiment="ext-strings",
        paper_artifact="Section 6: string-prefix featurization (outlined, not evaluated)",
        rows=rows,
        notes=(
            "Expected shape: the dictionary-based selectivity estimate is "
            "near-exact (it is computed on the dictionary itself); bucket "
            "count does not change the appended selectivity, only the "
            "vector's resolution."
        ),
    )


def run(scale: Scale = SMALL) -> list[ExperimentResult]:
    """Run both Section 6 extension experiments."""
    return [run_groupby(scale), run_strings(scale)]
