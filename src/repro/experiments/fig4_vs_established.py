"""Figure 4 — best QFT × model combinations vs. established estimators.

On the forest dataset, partitioned by the number of attributes per
query:

* **conjunctive workload** — GB + conj vs Postgres, Sampling, and the
  unmodified MSCN;
* **mixed workload** — GB + complex vs Postgres and Sampling (the
  standard MSCN cannot featurize disjunctions, so it is absent, exactly
  as in the paper).

Expected shape: every estimator degrades with more attributes; Postgres
is worst; sampling is fine in the median but has heavy tails; our GB
combinations have the lowest 99 % errors.
"""

from __future__ import annotations

from repro.estimators import LearnedEstimator, PostgresEstimator, SamplingEstimator
from repro.estimators.learned import MSCNEstimator
from repro.experiments.common import (
    SMALL,
    ExperimentResult,
    Scale,
    get_context,
    qft_factory,
)
from repro.experiments.fig2_by_attributes import ATTRIBUTE_BUCKETS
from repro.metrics import qerror, summarize
from repro.models import GradientBoostingRegressor
from repro.models.mscn import MSCNInputBuilder, MSCNModel

__all__ = ["run"]


def _grouped_rows(name, workload_label, estimator, test, rows) -> None:
    errors = qerror(test.cardinalities, estimator.estimate_batch(test.queries))
    groups: dict[int, list[float]] = {}
    for item, error in zip(test, errors):
        groups.setdefault(item.num_attributes, []).append(float(error))
    for count in ATTRIBUTE_BUCKETS:
        if count not in groups:
            continue
        summary = summarize(groups[count])
        rows.append({
            "workload": workload_label,
            "estimator": name,
            "attributes": count,
            "median": summary.median,
            "q75": summary.q75,
            "q99": summary.q99,
            "mean": summary.mean,
        })


def run(scale: Scale = SMALL) -> ExperimentResult:
    """Compare GB+conj / GB+complex with Postgres, Sampling, MSCN."""
    context = get_context(scale)
    table = context.forest
    rows: list[dict] = []

    # --- Conjunctive workload ---------------------------------------
    train, test = context.conjunctive_workload()
    gb_conj = LearnedEstimator(
        qft_factory("conjunctive", table, partitions=scale.partitions),
        GradientBoostingRegressor(n_estimators=scale.gb_trees),
        name="GB + conj",
    ).fit(train.queries, train.cardinalities)
    mscn = MSCNEstimator(MSCNModel(
        MSCNInputBuilder(table, mode="basic"), epochs=scale.mscn_epochs,
    ), name="MSCN").fit(train.queries, train.cardinalities)
    for name, estimator in (
        ("Postgres", PostgresEstimator(table)),
        ("Sampling", SamplingEstimator(table)),
        ("MSCN", mscn),
        ("GB + conj", gb_conj),
    ):
        _grouped_rows(name, "conjunctive", estimator, test, rows)

    # --- Mixed workload ----------------------------------------------
    train_m, test_m = context.mixed_workload()
    gb_complex = LearnedEstimator(
        qft_factory("complex", table, partitions=scale.partitions),
        GradientBoostingRegressor(n_estimators=scale.gb_trees),
        name="GB + complex",
    ).fit(train_m.queries, train_m.cardinalities)
    for name, estimator in (
        ("Postgres", PostgresEstimator(table)),
        ("Sampling", SamplingEstimator(table)),
        ("GB + complex", gb_complex),
    ):
        _grouped_rows(name, "mixed", estimator, test_m, rows)

    return ExperimentResult(
        experiment="fig4",
        paper_artifact="Figure 4: best QFT × model vs. established estimators",
        rows=rows,
        boxplot_label_keys=("workload", "estimator", "attributes"),
        notes=(
            "Expected shape: all estimators degrade with more attributes; "
            "Postgres worst; sampling has heavy 99% tails; GB+conj / "
            "GB+complex have the lowest 99% errors.  MSCN is absent for the "
            "mixed workload (it cannot featurize disjunctions)."
        ),
    )
