"""Table 6 — average error vs. number of training queries.

The paper trains GB and NN under all four QFTs on growing training sets
(10k … 100k; scaled down proportionally here) and reports the mean
q-error on the forest workloads.  Findings: errors fall with more
training queries everywhere; GB needs far fewer queries than NN; and
given any training budget, conjunctive/complex beat range/simple by a
wide margin.
"""

from __future__ import annotations

import numpy as np

from repro.estimators import LearnedEstimator
from repro.experiments.common import (
    SMALL,
    ExperimentResult,
    Scale,
    get_context,
    qft_factory,
)
from repro.metrics import qerror
from repro.models import GradientBoostingRegressor, NeuralNetRegressor

__all__ = ["run", "PAPER_TABLE_6_GB", "PAPER_TABLE_6_NN", "training_grid"]

PAPER_TABLE_6_GB = [
    {"training queries": "10k", "conj": 5.96, "comp": 4.71, "range": 58.23, "simple": 76.93},
    {"training queries": "20k", "conj": 4.31, "comp": 4.11, "range": 56.07, "simple": 63.98},
    {"training queries": "30k", "conj": 3.83, "comp": 3.79, "range": 45.82, "simple": 58.32},
    {"training queries": "40k", "conj": 3.43, "comp": 3.83, "range": 43.74, "simple": 54.23},
    {"training queries": "50k", "conj": 3.24, "comp": 3.72, "range": 32.48, "simple": 51.20},
    {"training queries": "100k", "conj": 2.93, "comp": 2.96, "range": 32.50, "simple": 47.29},
]

PAPER_TABLE_6_NN = [
    {"training queries": "10k", "conj": 28.44, "comp": 17.91, "range": 283.20, "simple": 386.20},
    {"training queries": "20k", "conj": 19.70, "comp": 12.18, "range": 232.70, "simple": 325.50},
    {"training queries": "30k", "conj": 13.15, "comp": 10.44, "range": 98.17, "simple": 267.80},
    {"training queries": "40k", "conj": 19.56, "comp": 5.88, "range": 70.69, "simple": 313.70},
    {"training queries": "50k", "conj": 8.32, "comp": 4.45, "range": 57.37, "simple": 149.02},
    {"training queries": "100k", "conj": 5.44, "comp": 3.38, "range": 56.66, "simple": 146.20},
]

#: QFT label -> short column name used by the paper's table.
_SHORT = {"conjunctive": "conj", "complex": "comp",
          "range": "range", "simple": "simple"}


def training_grid(scale: Scale) -> list[int]:
    """Training-set sizes mirroring the paper's 10k..100k grid.

    The paper's grid is {0.1, 0.2, 0.3, 0.4, 0.5, 1.0} of its 100k
    training queries; we apply the same fractions to the scale's budget.
    """
    fractions = (0.1, 0.2, 0.3, 0.4, 0.5, 1.0)
    return [max(int(scale.train_queries * f), 100) for f in fractions]


def run(scale: Scale = SMALL) -> ExperimentResult:
    """Mean error for each training-set size × QFT × {GB, NN}."""
    context = get_context(scale)
    table = context.forest
    grid = training_grid(scale)
    model_factories = {
        "GB": lambda: GradientBoostingRegressor(n_estimators=scale.gb_trees),
        "NN": lambda: NeuralNetRegressor(epochs=scale.nn_epochs),
    }
    rows = []
    for model_name, factory in model_factories.items():
        per_size: dict[int, dict[str, float]] = {n: {} for n in grid}
        for label in ("conjunctive", "complex", "range", "simple"):
            if label == "complex":
                train_full, test = context.mixed_workload()
            else:
                train_full, test = context.conjunctive_workload()
            featurizer = qft_factory(label, table, partitions=scale.partitions)
            for size in grid:
                subset = list(train_full)[:size]
                estimator = LearnedEstimator(featurizer, factory()).fit(
                    [it.query for it in subset],
                    np.asarray([it.cardinality for it in subset], dtype=float),
                )
                errors = qerror(test.cardinalities,
                                estimator.estimate_batch(test.queries))
                per_size[size][_SHORT[label]] = float(errors.mean())
        for size in grid:
            row = {"model": model_name, "training queries": size}
            row.update(per_size[size])
            rows.append(row)
    return ExperimentResult(
        experiment="tab6",
        paper_artifact="Table 6: average error vs. number of training queries",
        rows=rows,
        paper_rows=[{"model": "GB", **r} for r in PAPER_TABLE_6_GB]
                   + [{"model": "NN", **r} for r in PAPER_TABLE_6_NN],
        notes=(
            "Expected shape: errors fall with training size for every "
            "combination; NN errors are much larger than GB's; conj/comp "
            "beat range/simple at every budget."
        ),
    )
