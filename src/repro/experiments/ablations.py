"""Ablation experiments beyond the paper's tables.

Three design choices DESIGN.md calls out:

* **Partition-count convergence (Lemma 3.2)** — as the per-attribute
  entry count ``n`` grows, feature-vector collisions (different queries,
  different cardinalities, same vector — the information loss of
  Section 2.2's determinism argument) must vanish and accuracy improve
  until learnability limits kick in.
* **Disjunction merge operator** — Algorithm 2 merges branch vectors
  with the entry-wise max; an entry-wise (clipped) sum is the obvious
  alternative.  This ablation quantifies the choice.
* **Linear baselines** — the paper drops linear regression and SVR
  because "their estimates are worse by a significant factor"; this
  ablation reproduces that claim.
"""

from __future__ import annotations

import numpy as np

from repro.estimators import LearnedEstimator
from repro.experiments.common import (
    SMALL,
    ExperimentResult,
    Scale,
    evaluate_estimator,
    get_context,
    qft_factory,
)
from repro.featurize import ConjunctiveEncoding, DisjunctionEncoding
from repro.metrics import qerror
from repro.models import GradientBoostingRegressor
from repro.models.linear import LinearSVR, RidgeRegressor

__all__ = ["run_partitions", "run_merge", "run_linear_baselines", "run",
           "run_model_granularity", "run_partitioning_scheme",
           "collision_rate"]


def collision_rate(featurizer, workload) -> float:
    """Fraction of queries whose vector collides with a different-cardinality query.

    This is exactly the determinism violation of the paper's Equation 4:
    the same input mapping to different labels.
    """
    buckets: dict[bytes, set[int]] = {}
    for item in workload:
        key = featurizer.featurize(item.query).tobytes()
        buckets.setdefault(key, set()).add(item.cardinality)
    collisions = sum(len(cards) for cards in buckets.values() if len(cards) > 1)
    return collisions / len(workload)


def run_partitions(scale: Scale = SMALL) -> ExperimentResult:
    """Collisions + GB accuracy as the partition count grows (Lemma 3.2)."""
    context = get_context(scale)
    table = context.forest
    train, test = context.conjunctive_workload()
    rows = []
    for entries in (2, 4, 8, 16, 32, 64):
        featurizer = ConjunctiveEncoding(table, max_partitions=entries)
        estimator = LearnedEstimator(
            featurizer, GradientBoostingRegressor(n_estimators=scale.gb_trees)
        ).fit(train.queries, train.cardinalities)
        summary = evaluate_estimator(estimator, test)
        rows.append({
            "entries": entries,
            "collision rate": collision_rate(featurizer, test),
            "mean": summary.mean,
            "median": summary.median,
            "99%": summary.q99,
        })
    return ExperimentResult(
        experiment="ablation-partitions",
        paper_artifact="Lemma 3.2: convergence toward lossless featurization",
        rows=rows,
        notes=(
            "Expected shape: the collision rate decreases monotonically in "
            "the entry count; accuracy improves until the feature vector "
            "outgrows the training budget."
        ),
    )


def run_merge(scale: Scale = SMALL) -> ExperimentResult:
    """Entry-wise max (Algorithm 2) vs clipped sum for branch merging."""
    context = get_context(scale)
    table = context.forest
    train, test = context.mixed_workload()
    rows = []
    for merge in ("max", "sum"):
        featurizer = DisjunctionEncoding(table, max_partitions=scale.partitions,
                                         merge=merge)
        estimator = LearnedEstimator(
            featurizer, GradientBoostingRegressor(n_estimators=scale.gb_trees)
        ).fit(train.queries, train.cardinalities)
        summary = evaluate_estimator(estimator, test)
        rows.append({"merge": merge, "mean": summary.mean,
                     "median": summary.median, "99%": summary.q99,
                     "max": summary.max})
    return ExperimentResult(
        experiment="ablation-merge",
        paper_artifact="Algorithm 2 design choice: entry-wise max merging",
        rows=rows,
        notes="Both merges should be close; max matches OR semantics exactly.",
    )


def run_linear_baselines(scale: Scale = SMALL) -> ExperimentResult:
    """Linear regression / SVR vs GB (the Section 2.2 dismissal).

    Measured under both a lossy featurization (``simple``, where the
    cardinality is far from linear in the features and linear models
    collapse — the regime behind the paper's dismissal) and the
    data-driven ``conjunctive`` featurization, where the appended
    selectivity entries give even a linear model a usable signal (a
    side-effect of near-lossless featurization worth documenting).
    """
    import numpy as np

    from repro.metrics import qerror, summarize

    context = get_context(scale)
    table = context.forest
    train, test = context.conjunctive_workload()
    rows = []
    featurizers = {
        "simple": lambda: qft_factory("simple", table),
        "conjunctive": lambda: ConjunctiveEncoding(
            table, max_partitions=scale.partitions),
    }
    for qft_name, make_featurizer in featurizers.items():
        for name, make_model in (
            ("GB", lambda: GradientBoostingRegressor(
                n_estimators=scale.gb_trees)),
            ("Ridge (log targets)", RidgeRegressor),
            ("Linear SVR (log targets)", LinearSVR),
        ):
            estimator = LearnedEstimator(make_featurizer(), make_model()).fit(
                train.queries, train.cardinalities)
            summary = evaluate_estimator(estimator, test)
            rows.append({"qft": qft_name, "model": name,
                         "mean": summary.mean, "median": summary.median,
                         "99%": summary.q99})
        # Linear regression on *raw* cardinalities — the naive setup the
        # paper's dismissal corresponds to: without the log transform a
        # linear model spends its capacity on the few huge cardinalities
        # and is hopeless under the (relative) q-error.
        featurizer = make_featurizer()
        raw = RidgeRegressor().fit(
            featurizer.featurize_batch(train.queries),
            train.cardinalities,
        )
        estimates = np.maximum(
            raw.predict(featurizer.featurize_batch(test.queries)), 1.0)
        summary = summarize(qerror(test.cardinalities, estimates))
        rows.append({"qft": qft_name, "model": "Ridge (raw targets)",
                     "mean": summary.mean, "median": summary.median,
                     "99%": summary.q99})
    return ExperimentResult(
        experiment="ablation-linear",
        paper_artifact="Section 2.2: linear models are 'worse by a significant factor'",
        rows=rows,
        notes=(
            "Expected shape: raw-target linear regression and the linear "
            "SVR are worse than GB by a large factor (the paper's "
            "dismissal); a log-target ridge on near-lossless features is "
            "surprisingly competitive at this scale — itself evidence for "
            "the featurization-quality thesis."
        ),
    )


def run_model_granularity(scale: Scale = SMALL) -> ExperimentResult:
    """Local-model granularity on JOB-light: per-sub-schema vs. per-table.

    The paper's Section 2.1.2 cites Woltmann et al. [31]: models are only
    needed where the System-R assumptions fail.  This ablation compares
    the full per-sub-schema ensemble (up to ``2^n - 1`` models, join
    labels required) against the hybrid configuration (one model per
    base table, cheap single-table labels, Selinger join composition)
    and the pure histogram baseline.
    """
    from repro.estimators import LocalModelEnsemble, PostgresEstimator
    from repro.estimators.hybrid import HybridEstimator
    from repro.experiments.common import gb_factory

    context = get_context(scale)
    schema = context.imdb
    bench = context.joblight_benchmark()

    def conj_factory(table, attrs):
        return ConjunctiveEncoding(table, attrs,
                                   max_partitions=scale.partitions)

    local = LocalModelEnsemble(schema, conj_factory, gb_factory(scale))
    local.fit(context.joblight_training().queries,
              context.joblight_training().cardinalities)
    hybrid = HybridEstimator(schema, conj_factory, gb_factory(scale))
    hybrid.fit_generated(queries_per_table=scale.queries_per_subschema * 4)
    postgres = PostgresEstimator(schema)

    rows = []
    for name, estimator, models in (
        ("local (per sub-schema)", local, len(local.subschemata)),
        ("hybrid (per base table)", hybrid, len(hybrid.table_models)),
        ("Postgres (no models)", postgres, 0),
    ):
        summary = evaluate_estimator(estimator, bench)
        rows.append({"estimator": name, "models": models,
                     "mean": summary.mean, "median": summary.median,
                     "99%": summary.q99})
    return ExperimentResult(
        experiment="ablation-granularity",
        paper_artifact="Section 2.1.2 / [31]: where are learned models needed?",
        rows=rows,
        notes=(
            "Expected shape: the hybrid matches or beats the histogram "
            "baseline on the median with only n models.  At small "
            "training budgets the hybrid can even beat the full ensemble "
            "(which splits its join-labelled budget over up to 2^n - 1 "
            "models); with abundant training the ensemble wins because "
            "only it can model cross-table correlation."
        ),
    )


def run_partitioning_scheme(scale: Scale = SMALL) -> ExperimentResult:
    """Equal-width vs equi-depth partitions (Section 3.2's histogram hint).

    "For attributes with high skew, a larger n may be necessary.  [...]
    One could also apply sophisticated partitioning techniques from the
    field of histograms."  We compare both layouts at identical
    per-attribute budgets on the forest conjunctive workload under GB.
    """
    from repro.featurize.equidepth import EquiDepthConjunctiveEncoding

    context = get_context(scale)
    table = context.forest
    train, test = context.conjunctive_workload()
    rows = []
    for entries in (8, scale.partitions):
        for scheme, featurizer in (
            ("equal-width", ConjunctiveEncoding(table, max_partitions=entries)),
            ("equi-depth", EquiDepthConjunctiveEncoding(
                table, max_partitions=entries)),
        ):
            estimator = LearnedEstimator(
                featurizer,
                GradientBoostingRegressor(n_estimators=scale.gb_trees),
            ).fit(train.queries, train.cardinalities)
            summary = evaluate_estimator(estimator, test)
            rows.append({"entries": entries, "scheme": scheme,
                         "mean": summary.mean, "median": summary.median,
                         "99%": summary.q99})
    return ExperimentResult(
        experiment="ablation-partitioning",
        paper_artifact="Section 3.2's hint: histogram-style partitioning",
        rows=rows,
        notes=(
            "Expected shape: with few entries, equi-depth spends its "
            "budget where the data lives and wins on skewed attributes; "
            "with a generous budget the layouts converge."
        ),
    )


def run(scale: Scale = SMALL) -> list[ExperimentResult]:
    """Run all five ablations."""
    return [run_partitions(scale), run_merge(scale),
            run_linear_baselines(scale), run_model_granularity(scale),
            run_partitioning_scheme(scale)]
