"""Command-line interface.

Four subcommands cover the train-once / estimate-many workflow a
downstream user needs, plus dataset generation:

* ``repro generate-forest out.csv --rows 60000`` — write the synthetic
  covertype table (or use a real UCI ``covtype.data`` directly).
* ``repro train data.csv model.npz --qft conjunctive --model gb`` —
  generate + label a training workload over the CSV table, train the
  chosen QFT × model combination, and persist it.
* ``repro estimate model.npz "SELECT count(*) FROM t WHERE a > 5"`` —
  load a persisted estimator and print the estimate (optionally the true
  cardinality and q-error when ``--data`` is given).
* ``repro experiments ...`` — forwards to the experiment runner.
* ``repro serve --artifact model.npz --port 8642`` — serve a persisted
  estimator over the HTTP JSON API (micro-batching, estimate cache,
  admission control; see ``docs/serving.md``).  ``--registry`` switches
  ``--artifact`` to a published model-registry name.
* ``repro bench featurize`` — scalar-vs-batch featurization benchmark;
  writes ``BENCH_featurize.json`` and fails if the batch pipeline is
  slower than the scalar loop or diverges from it.
* ``repro bench lint`` — cold-vs-warm incremental lint benchmark;
  writes ``BENCH_lint.json`` and fails below ``--min-speedup``.
* ``repro bench obs`` — observability-overhead benchmark; writes
  ``BENCH_obs.json`` and fails if disabled-tracing overhead exceeds
  ``--max-overhead`` (default 3%).
* ``repro bench serve`` — end-to-end serving benchmark (closed-loop
  client fleet, client batch sizes 1/8/64); writes ``BENCH_serve.json``
  and fails if batched throughput is below ``--min-batch-speedup``
  (default 5x) times the single-request rate.  ``--workers N`` adds a
  fleet-scaling leg (router + worker subprocesses at 1..N workers)
  gated on ``--min-fleet-speedup``.
* ``repro fleet serve --registry R --model M --workers N`` — sharded
  multi-process serving with canary rollouts; ``repro fleet
  status/rollout/promote/rollback`` drive a running fleet (see
  ``docs/serving.md``).
* ``repro obs report trace.jsonl [--events events.jsonl]`` — per-stage
  summary of a span trace recorded with ``--trace``, plus a request-
  event summary when ``--events`` is given (see
  ``docs/observability.md``).
* ``repro obs watch events.jsonl [--follow]`` — tail a request-event
  log as one aligned line per event.
* ``repro obs stitch client.jsonl server.jsonl --output trace.json`` —
  stitch span logs from several processes into one Chrome trace with
  flow arrows joining each request's client and server spans.
* ``repro lint [paths]`` — the repo's own static-analysis pass
  (featurization/determinism contracts; see ``docs/lint_rules.md``).

Invoke as ``python -m repro <subcommand>``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import config
from repro.data.forest import generate_forest
from repro.data.loaders import load_table_csv, save_table_csv
from repro.estimators import LearnedEstimator
from repro.experiments import runner as experiments_runner
from repro.featurize import BY_PAPER_LABEL
from repro.metrics import qerror
from repro.models import GradientBoostingRegressor, NeuralNetRegressor
from repro.persistence import load_estimator, save_estimator
from repro.sql.executor import cardinality
from repro.sql.parser import parse_query
from repro.workloads import (
    generate_conjunctive_workload,
    generate_mixed_workload,
)

__all__ = ["build_parser", "main"]

_MODELS = {
    "gb": lambda trees: GradientBoostingRegressor(n_estimators=trees),
    "nn": lambda trees: NeuralNetRegressor(),
}


def _cmd_generate_forest(args) -> int:
    table = generate_forest(rows=args.rows, seed=args.seed)
    save_table_csv(table, args.output)
    print(f"wrote {table.row_count} rows x {len(table.column_names)} "
          f"columns to {args.output}")
    return 0


def _cmd_train(args) -> int:
    table = load_table_csv(args.data, name=args.table_name)
    print(f"loaded {table}")
    generate = (generate_mixed_workload if args.workload == "mixed"
                else generate_conjunctive_workload)
    workload = generate(table, args.queries,
                        max_attributes=min(args.max_attributes,
                                           len(table.column_names)),
                        seed=args.seed)
    print(f"labeled {len(workload)} {args.workload} training queries")
    featurizer_cls = BY_PAPER_LABEL[args.qft]
    if args.qft in ("conjunctive", "complex"):
        featurizer = featurizer_cls(table, max_partitions=args.partitions)
    else:
        featurizer = featurizer_cls(table)
    estimator = LearnedEstimator(featurizer, _MODELS[args.model](args.trees))
    estimator.fit(workload.queries, workload.cardinalities)
    save_estimator(estimator, args.output)
    print(f"saved estimator ({estimator.name}, "
          f"{estimator.memory_bytes() / 1024:.1f} kB) to {args.output}")
    return 0


def _cmd_estimate(args) -> int:
    estimator = load_estimator(args.model)
    query = parse_query(args.sql)
    estimate = estimator.estimate(query)
    print(f"estimate: {estimate:.0f}")
    if args.data:
        table = load_table_csv(args.data,
                               name=estimator.featurizer.table_name)
        true_count = cardinality(query, table)
        print(f"true:     {true_count}")
        # qerror rejects empty results (the paper's protocol); an ad-hoc
        # CLI query may legitimately match nothing, so floor it here.
        print(f"q-error:  {float(qerror(max(true_count, 1), estimate)):.2f}")
    return 0


def _cmd_serve(args) -> int:
    import signal
    import threading

    from repro import obs
    from repro.serve import EstimationServer, EstimationService, ModelRegistry

    if args.registry is not None:
        registry = ModelRegistry(args.registry)
        estimator = registry.load(args.artifact, args.version)
        print(f"loaded {registry.resolve(args.artifact, args.version).label()}"
              f" from registry {args.registry}")
    else:
        estimator = load_estimator(args.artifact)
        print(f"loaded {estimator.name} from {args.artifact}")
    if args.trace:
        # Spans are recorded for the whole serving lifetime and written
        # as JSONL at drain; stitch with a client trace afterwards.
        obs.enable()
    service = EstimationService(estimator,
                                max_batch_size=args.max_batch_size,
                                max_wait_ms=args.max_wait_ms,
                                cache_size=args.cache_size,
                                max_inflight=args.max_inflight,
                                plan_cache_size=args.plan_cache_size,
                                parse_cache_size=args.parse_cache_size,
                                model_version=args.model_version,
                                tick_every=args.tick_every)
    server = EstimationServer(service, host=args.host, port=args.port)
    server.start()
    fused = "fused" if service.fused is not None else "legacy"
    print(f"serving on {server.url} "
          f"(batch<= {args.max_batch_size}, wait {args.max_wait_ms}ms, "
          f"cache {args.cache_size}, plans {args.plan_cache_size}, "
          f"templates {args.parse_cache_size}, "
          f"inflight<= {args.max_inflight}, {fused} path, "
          f"model {service.model_version}, tick every {args.tick_every})")
    stop = getattr(args, "shutdown_event", None) or threading.Event()
    if threading.current_thread() is threading.main_thread():
        # SIGINT/SIGTERM trigger the graceful drain; tests drive the
        # same path through an injected shutdown_event instead.
        signal.signal(signal.SIGINT, lambda signum, frame: stop.set())
        signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
    stop.wait()
    print("draining in-flight requests ...")
    server.stop(drain=True)
    if args.trace:
        from repro.obs import export

        count = export.write_spans_jsonl(obs.get_tracer().finished(),
                                         args.trace)
        print(f"wrote {count} spans to {args.trace}")
    if args.events:
        count = obs.get_event_log().write_jsonl(args.events)
        print(f"wrote {count} events to {args.events}")
    print("server stopped")
    return 0


def _cmd_bench(args) -> int:
    args.smoke = args.smoke or args.quick
    if args.target == "lint":
        return _cmd_bench_lint(args)
    if args.target == "obs":
        return _cmd_bench_obs(args)
    if args.target == "serve":
        return _cmd_bench_serve(args)
    if args.target == "predict":
        return _cmd_bench_predict(args)
    from repro import obs
    from repro.bench import run_featurize_bench, write_report

    tracer = obs.Tracer(enabled=bool(args.trace))
    with obs.use_tracer(tracer):
        report = run_featurize_bench(rows=args.rows, queries=args.queries,
                                     partitions=args.partitions,
                                     seed=args.seed,
                                     smoke=args.smoke, repeats=args.repeats)
    if args.trace:
        from repro.obs import export

        count = export.write_spans_jsonl(tracer.finished(), args.trace)
        print(f"wrote {count} spans to {args.trace}")
    cfg = report["config"]
    print(f"featurize bench: {cfg['queries']} queries over "
          f"{cfg['rows']} rows ({cfg['partitions']} partitions, "
          f"seed {cfg['seed']}{', smoke' if cfg['smoke'] else ''})")
    for case in report["cases"]:
        status = "ok" if case["identical"] else "MISMATCH"
        print(f"  {case['featurizer']:>12} / {case['workload']:<12} "
              f"scalar {case['scalar_seconds']:8.3f}s  "
              f"batch {case['batch_seconds']:8.3f}s  "
              f"speedup {case['speedup']:6.2f}x  [{status}]")
    output = args.output or Path("BENCH_featurize.json")
    write_report(report, output)
    print(f"wrote {output}")
    if not report["all_identical"]:
        print("FAIL: batch featurization diverges from scalar")
        return 1
    if report["min_speedup"] < args.min_speedup:
        print(f"FAIL: min speedup {report['min_speedup']:.2f}x below "
              f"required {args.min_speedup:.2f}x")
        return 1
    return 0


def _cmd_bench_lint(args) -> int:
    from repro.bench import run_lint_bench, write_report

    report = run_lint_bench(repeats=args.repeats, jobs=args.jobs)
    print(f"lint bench: {report['files_scanned']} files, "
          f"cold {report['cold_seconds']:.3f}s "
          f"({report['cold_files_reanalyzed']} analysed), "
          f"warm {report['warm_seconds']:.3f}s "
          f"({report['warm_files_reanalyzed']} analysed), "
          f"speedup {report['min_speedup']:.2f}x")
    for name in ("syntactic", "dataflow", "numeric", "semantic"):
        cold_pass = report["cold_pass_seconds"].get(name, 0.0)
        warm_pass = report["warm_pass_seconds"].get(name, 0.0)
        print(f"  {name:10s} cold {cold_pass:.3f}s  warm {warm_pass:.3f}s")
    output = args.output or Path("BENCH_lint.json")
    write_report(report, output)
    print(f"wrote {output}")
    if report["min_speedup"] < args.min_speedup:
        print(f"FAIL: warm/cold speedup {report['min_speedup']:.2f}x "
              f"below required {args.min_speedup:.2f}x")
        return 1
    return 0


def _cmd_bench_obs(args) -> int:
    from repro.bench import run_obs_bench, write_report

    report = run_obs_bench(rows=args.rows, queries=args.queries,
                           partitions=args.partitions, seed=args.seed,
                           smoke=args.smoke, repeats=args.repeats)
    cfg = report["config"]
    print(f"obs bench: {report['n_queries']} queries over {cfg['rows']} "
          f"rows, best of {cfg['repeats']} "
          f"({'smoke' if cfg['smoke'] else 'full'})")
    print(f"  baseline (uninstrumented) {report['baseline_seconds']:8.3f}s")
    print(f"  tracing disabled          {report['disabled_seconds']:8.3f}s "
          f"({report['disabled_overhead_pct']:+.2f}%)")
    print(f"  tracing enabled           {report['enabled_seconds']:8.3f}s "
          f"({report['enabled_overhead_pct']:+.2f}%)")
    window = report["window"]
    events = report["events"]
    print(f"  window observe {window['observe_ns_per_op']:8.0f}ns/op  "
          f"advance {window['advance_ns_per_op']:8.0f}ns/op")
    print(f"  event record   {events['keep_all_ns_per_op']:8.0f}ns/op "
          f"(keep all)  {events['sample_16_ns_per_op']:8.0f}ns/op "
          f"(1-in-16 sampling)")
    output = args.output or Path("BENCH_obs.json")
    write_report(report, output)
    print(f"wrote {output}")
    if report["disabled_overhead_pct"] > args.max_overhead:
        print(f"FAIL: disabled-tracing overhead "
              f"{report['disabled_overhead_pct']:.2f}% above allowed "
              f"{args.max_overhead:.2f}%")
        return 1
    return 0


def _cmd_bench_serve(args) -> int:
    from repro.bench import run_serve_bench, write_report

    # 10k HTTP requests per case is featurize-bench scale, not serving
    # scale; cap the shared --queries default at a seconds-long run.
    queries = min(args.queries, 4_096)
    if queries < args.queries:
        print(f"capping --queries at {queries} for the serving benchmark")
    report = run_serve_bench(artifact=args.artifact, rows=args.rows,
                             queries=queries, threads=args.threads,
                             partitions=args.partitions, seed=args.seed,
                             smoke=args.smoke, templates=args.templates)
    cfg = report["config"]
    print(f"serve bench: {cfg['queries']} queries over "
          f"{cfg['templates']} statement templates, "
          f"{cfg['threads']} client threads, estimator "
          f"{cfg['estimator']}{', smoke' if cfg['smoke'] else ''}")
    for case in report["cases"]:
        print(f"  batch {case['batch_size']:>3}: "
              f"{case['queries_per_second']:10.1f} q/s  "
              f"p50 {case['p50_latency_ms']:7.2f}ms  "
              f"p95 {case['p95_latency_ms']:7.2f}ms  "
              f"({case['requests']} requests)")
    print(f"  batched/single speedup: {report['speedup']:.2f}x")
    if report["fused_identical"] is not None:
        verdict = "ok" if report["fused_identical"] else "MISMATCH"
        plans = report["plan_cache"]
        parses = report["parse_cache"]
        print(f"  fused path: bitwise vs legacy [{verdict}], plan cache "
              f"{plans['hits']} hits / {plans['misses']} misses "
              f"({plans['size']} plans)")
        print(f"  parse cache: {parses['hits']} hits / "
              f"{parses['misses']} misses "
              f"({parses['size']} templates)")
    print(f"  forest inference (embedded bench predict): "
          f"{report['predict']['min_speedup']:.2f}x min speedup, "
          f"{report['predict']['n_trees']} trees")
    output = args.output or Path("BENCH_serve.json")
    write_report(report, output)
    print(f"wrote {output}")
    if report["fused_identical"] is False:
        print("FAIL: fused estimates diverge from the legacy path")
        return 1
    if not report["predict"]["all_identical"]:
        print("FAIL: compiled forest diverges from the per-tree loop")
        return 1
    if report["speedup"] < args.min_batch_speedup:
        print(f"FAIL: batched throughput speedup {report['speedup']:.2f}x "
              f"below required {args.min_batch_speedup:.2f}x")
        return 1
    if args.workers > 1:
        return _bench_serve_fleet_leg(args, report, output)
    return 0


def _bench_serve_fleet_leg(args, report: dict, output: Path) -> int:
    """Fleet-scaling leg of ``repro bench serve --workers N``."""
    from repro.bench import run_fleet_bench, write_report

    counts = sorted({1, max(2, args.workers // 2), args.workers})
    fleet = run_fleet_bench(artifact=args.artifact, rows=args.rows,
                            queries=min(args.queries, 4_096),
                            threads=args.threads, partitions=args.partitions,
                            seed=args.seed, smoke=args.smoke,
                            worker_counts=counts, templates=args.templates)
    print(f"fleet bench: {fleet['config']['queries']} queries, "
          f"batch {fleet['config']['batch_size']}, worker counts "
          f"{fleet['config']['worker_counts']}")
    for case in fleet["cases"]:
        print(f"  workers {case['workers']:>2}: "
              f"{case['queries_per_second']:10.1f} q/s  "
              f"p50 {case['p50_latency_ms']:7.2f}ms  "
              f"p95 {case['p95_latency_ms']:7.2f}ms")
    print(f"  fleet speedup at {max(counts)} workers: "
          f"{fleet['fleet_speedup']:.2f}x")
    report["fleet"] = fleet
    write_report(report, output)
    print(f"rewrote {output} with the fleet leg")
    cores = fleet["config"]["cpu_count"]
    if cores < max(counts):
        # Worker processes scale across cores; on a box with fewer
        # cores than workers the aggregate is capped at ~1x by the
        # hardware, so enforcing the speedup gate would only measure
        # the machine.  The report says so instead of lying.
        print(f"  NOTE: {cores} CPU core(s) < {max(counts)} workers — "
              f"{args.min_fleet_speedup:.2f}x scaling gate not "
              f"enforceable on this host (cpu_limited)")
        return 0
    if fleet["fleet_speedup"] < args.min_fleet_speedup:
        print(f"FAIL: fleet speedup {fleet['fleet_speedup']:.2f}x below "
              f"required {args.min_fleet_speedup:.2f}x")
        return 1
    return 0


def _cmd_bench_predict(args) -> int:
    from repro.bench import run_predict_bench, write_report

    kwargs = {}
    if args.batch_sizes:
        kwargs["batch_sizes"] = args.batch_sizes
    report = run_predict_bench(rows=args.rows,
                               queries=min(args.queries, 4_096),
                               partitions=args.partitions, seed=args.seed,
                               smoke=args.smoke, repeats=args.repeats,
                               **kwargs)
    cfg = report["config"]
    print(f"predict bench: {report['n_trees']} trees "
          f"(max {report['max_nodes']} nodes, depth {report['max_depth']}), "
          f"feature length {report['feature_length']}"
          f"{', smoke' if cfg['smoke'] else ''}")
    for case in report["cases"]:
        status = "ok" if case["identical"] else "MISMATCH"
        print(f"  batch {case['batch_size']:>5}: "
              f"legacy {case['legacy_seconds'] * 1000:9.3f}ms  "
              f"compiled {case['compiled_seconds'] * 1000:9.3f}ms  "
              f"speedup {case['speedup']:7.2f}x  [{status}]")
    print(f"  min speedup: {report['min_speedup']:.2f}x")
    output = args.output or Path("BENCH_predict.json")
    write_report(report, output)
    print(f"wrote {output}")
    if not report["all_identical"]:
        print("FAIL: compiled forest diverges from the per-tree loop")
        return 1
    if report["min_speedup"] < args.min_speedup:
        print(f"FAIL: min speedup {report['min_speedup']:.2f}x below "
              f"required {args.min_speedup:.2f}x")
        return 1
    return 0


def _cmd_obs_report(args) -> int:
    from repro.obs import events as obs_events
    from repro.obs import export

    if args.trace is None and args.events is None:
        print("error: nothing to report — give a span trace and/or "
              "--events", file=sys.stderr)
        return 2
    if args.trace is not None:
        records = export.read_spans_jsonl(args.trace)
        summary = export.summarize_spans(records)
        if args.format == "json":
            print(export.render_summary_json(summary))
        else:
            print(export.render_summary_text(summary))
        if args.chrome:
            count = export.write_chrome_trace(records, args.chrome)
            print(f"wrote {count} trace events to {args.chrome}")
    if args.events is not None:
        event_records = obs_events.read_events_jsonl(args.events)
        event_summary = obs_events.summarize_events(event_records)
        if args.format == "json":
            print(obs_events.render_events_summary_json(event_summary))
        else:
            print(obs_events.render_events_summary_text(event_summary))
    return 0


def _cmd_obs_watch(args) -> int:
    import time

    from repro.obs import events as obs_events

    shown = 0
    while True:
        if args.events.exists():
            records = obs_events.read_events_jsonl(args.events)
        elif not args.follow:
            print(f"error: no such event log: {args.events}",
                  file=sys.stderr)
            return 2
        else:
            records = []
        for record in records[shown:]:
            if args.errors_only and not record.get("error"):
                continue
            print(obs_events.render_event_text(record), flush=True)
        shown = len(records)
        if not args.follow:
            return 0
        try:
            # A poll delay, not a measurement — RPR108 governs clock
            # *reads*, and the tailer takes none.
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _cmd_obs_stitch(args) -> int:
    from repro.obs import export

    traces = []
    for path in args.traces:
        traces.append((Path(path).stem, export.read_spans_jsonl(path)))
    count = export.write_stitched_chrome_trace(traces, args.output)
    names = ", ".join(name for name, _ in traces)
    print(f"wrote {count} trace events ({names}) to {args.output}")
    return 0


def _cmd_lint(args) -> int:
    # Reassemble the flags for the lint front end so both entry points
    # (`repro lint` and `python -m repro.lint`) share one parser.
    from repro.lint.cli import main as lint_main

    forwarded: list[str] = [str(p) for p in args.paths]
    forwarded += ["--format", args.format]
    forwarded += ["--jobs", str(args.jobs)]
    if args.baseline is not None:
        forwarded += ["--baseline", str(args.baseline)]
    if args.write_baseline:
        forwarded.append("--write-baseline")
    if args.update_baseline:
        forwarded.append("--update-baseline")
    if args.no_baseline:
        forwarded.append("--no-baseline")
    if args.cache is not None:
        forwarded += ["--cache", str(args.cache)]
    if args.no_cache:
        forwarded.append("--no-cache")
    if args.list_rules:
        forwarded.append("--list-rules")
    if args.explain is not None:
        forwarded += ["--explain", args.explain]
    return lint_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Learned cardinality estimation with enhanced query "
                    "featurization (EDBT 2023 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate-forest",
                         help="write the synthetic covertype table as CSV")
    gen.add_argument("output", type=Path)
    gen.add_argument("--rows", type=int, default=config.FOREST_ROWS)
    gen.add_argument("--seed", type=int, default=config.DEFAULT_SEED)
    gen.set_defaults(func=_cmd_generate_forest)

    train = sub.add_parser("train", help="train and persist an estimator")
    train.add_argument("data", type=Path, help="CSV table (headered)")
    train.add_argument("output", type=Path, help="output .npz model path")
    train.add_argument("--table-name", default=None,
                       help="table name (default: CSV file stem)")
    train.add_argument("--qft", choices=sorted(BY_PAPER_LABEL),
                       default="conjunctive")
    train.add_argument("--model", choices=sorted(_MODELS), default="gb")
    train.add_argument("--workload", choices=["conjunctive", "mixed"],
                       default="conjunctive")
    train.add_argument("--queries", type=int, default=5_000)
    train.add_argument("--max-attributes", type=int, default=8)
    train.add_argument("--partitions", type=int, default=32)
    train.add_argument("--trees", type=int, default=150)
    train.add_argument("--seed", type=int, default=config.DEFAULT_SEED)
    train.set_defaults(func=_cmd_train)

    estimate = sub.add_parser("estimate",
                              help="estimate a SQL count(*) query")
    estimate.add_argument("model", type=Path, help="persisted .npz model")
    estimate.add_argument("sql", help="SELECT count(*) ... statement")
    estimate.add_argument("--data", type=Path, default=None,
                          help="CSV table to compute the true count against")
    estimate.set_defaults(func=_cmd_estimate)

    sub.add_parser(
        "experiments", help="run paper experiments (see runner --help)")

    sub.add_parser(
        "fleet", help="sharded multi-worker serving with hot-swap "
                      "rollouts (see fleet serve --help)")

    serve = sub.add_parser(
        "serve", help="serve a persisted estimator over an HTTP JSON API")
    serve.add_argument("--artifact", required=True,
                       help="persisted .npz model path (or a registry "
                            "model name with --registry)")
    serve.add_argument("--registry", type=Path, default=None,
                       help="model-registry root; --artifact is then a "
                            "published model name")
    serve.add_argument("--version", default="latest",
                       help="registry version to serve (default: latest)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument("--max-batch-size", type=int, default=64,
                       help="micro-batch dispatch threshold (default: 64)")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="micro-batch collection window (default: 2ms)")
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="LRU estimate-cache capacity, 0 disables "
                            "(default: 1024)")
    serve.add_argument("--max-inflight", type=int, default=256,
                       help="reject requests beyond this many in flight "
                            "with 503 (default: 256)")
    serve.add_argument("--plan-cache-size", type=int, default=256,
                       help="shape-keyed plan-cache capacity for the fused "
                            "estimate path, 0 disables (default: 256)")
    serve.add_argument("--parse-cache-size", type=int, default=512,
                       help="fingerprint-keyed parsed-template cache "
                            "capacity, 0 disables (default: 512)")
    serve.add_argument("--model-version", default=None,
                       help="version label stamped on telemetry "
                            "(default: the estimator's name)")
    serve.add_argument("--tick-every", type=int, default=256,
                       help="advance the sliding telemetry windows every "
                            "N requests, 0 disables auto-ticking "
                            "(default: 256)")
    serve.add_argument("--trace", type=Path, default=None,
                       help="enable tracing and write the span JSONL "
                            "here at graceful shutdown")
    serve.add_argument("--events", type=Path, default=None,
                       help="write the retained request-event JSONL "
                            "here at graceful shutdown")
    serve.set_defaults(func=_cmd_serve)

    bench = sub.add_parser(
        "bench",
        help="micro-benchmarks (featurize throughput, lint cache, "
             "obs overhead, serving latency, forest inference)")
    bench.add_argument("target", choices=["featurize", "lint", "obs",
                                          "serve", "predict"],
                       help="benchmark to run")
    bench.add_argument("--quick", action="store_true",
                       help="alias for --smoke")
    bench.add_argument("--smoke", action="store_true",
                       help="small CI-sized workload (caps rows/queries)")
    bench.add_argument("--rows", type=int, default=10_000,
                       help="synthetic table rows (default: 10000)")
    bench.add_argument("--queries", type=int, default=10_000,
                       help="queries per workload (default: 10000)")
    bench.add_argument("--partitions", type=int,
                       default=config.DEFAULT_PARTITIONS)
    bench.add_argument("--seed", type=int, default=config.DEFAULT_SEED)
    bench.add_argument("--repeats", type=int, default=3,
                       help="timed runs per case; the best is reported "
                            "(default: 3, smoke forces 1)")
    bench.add_argument("--jobs", type=int, default=1,
                       help="lint bench: parse-stage worker processes "
                            "(default: 1)")
    bench.add_argument("--output", type=Path, default=None,
                       help="JSON report path (default: "
                            "BENCH_<target>.json)")
    bench.add_argument("--min-speedup", type=float, default=1.0,
                       help="fail if any case's speedup is below this "
                            "(default: 1.0)")
    bench.add_argument("--max-overhead", type=float, default=3.0,
                       help="obs bench: fail if disabled-tracing overhead "
                            "exceeds this percentage (default: 3.0)")
    bench.add_argument("--trace", type=Path, default=None,
                       help="featurize bench: record spans to this JSONL "
                            "trace file")
    bench.add_argument("--artifact", default=None,
                       help="serve bench: persisted .npz estimator to "
                            "serve (default: train one in-process)")
    bench.add_argument("--threads", type=int, default=8,
                       help="serve bench: closed-loop client threads "
                            "(default: 8)")
    bench.add_argument("--templates", type=int, default=64,
                       help="serve bench: distinct statement templates in "
                            "the parameterized workload (default: 64)")
    bench.add_argument("--min-batch-speedup", type=float, default=5.0,
                       help="serve bench: fail if batched throughput is "
                            "below this multiple of the single-request "
                            "rate (default: 5.0)")
    bench.add_argument("--workers", type=int, default=0,
                       help="serve bench: also run the fleet-scaling leg "
                            "up to this many worker subprocesses "
                            "(default: 0 = off)")
    bench.add_argument("--min-fleet-speedup", type=float, default=3.0,
                       help="serve bench: fail if aggregate fleet "
                            "throughput at --workers is below this "
                            "multiple of the single-worker rate "
                            "(default: 3.0)")
    bench.add_argument("--batch-sizes", type=int, nargs="+", default=None,
                       help="predict bench: batch sizes to measure "
                            "(default: 1 8 64, the serving regime)")
    bench.set_defaults(func=_cmd_bench)

    obs_parser = sub.add_parser(
        "obs", help="observability utilities (see docs/observability.md)")
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report", help="summarise a JSONL span trace and/or event log")
    obs_report.add_argument("trace", type=Path, nargs="?", default=None,
                            help="trace.jsonl recorded with --trace")
    obs_report.add_argument("--events", type=Path, default=None,
                            help="events.jsonl recorded with "
                                 "serve --events")
    obs_report.add_argument("--format", choices=["text", "json"],
                            default="text",
                            help="report format (default: text)")
    obs_report.add_argument("--chrome", type=Path, default=None,
                            help="also write Chrome trace-event JSON "
                                 "(chrome://tracing / Perfetto)")
    obs_report.set_defaults(func=_cmd_obs_report)
    obs_watch = obs_sub.add_parser(
        "watch", help="print request events from a JSONL event log, "
                      "one aligned line each")
    obs_watch.add_argument("events", type=Path,
                           help="events.jsonl recorded with serve --events")
    obs_watch.add_argument("--follow", action="store_true",
                           help="keep polling the file for new events "
                                "(Ctrl-C to stop)")
    obs_watch.add_argument("--interval", type=float, default=1.0,
                           help="poll interval in seconds with --follow "
                                "(default: 1.0)")
    obs_watch.add_argument("--errors-only", action="store_true",
                           help="only print events that errored")
    obs_watch.set_defaults(func=_cmd_obs_watch)
    obs_stitch = obs_sub.add_parser(
        "stitch", help="stitch span traces from several processes into "
                       "one Chrome trace with flow arrows")
    obs_stitch.add_argument("traces", type=Path, nargs="+",
                            help="span JSONL files, ordered by causality "
                                 "(client before server); process names "
                                 "come from the file stems")
    obs_stitch.add_argument("--output", type=Path, required=True,
                            help="stitched Chrome trace-event JSON path")
    obs_stitch.set_defaults(func=_cmd_obs_stitch)

    lint = sub.add_parser(
        "lint", help="run the repro static-analysis pass (RPR rules)")
    lint.add_argument("paths", nargs="*", default=["src"], type=Path,
                      help="files or directories to lint (default: src)")
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default="text",
                      help="report format (default: text)")
    lint.add_argument("--baseline", type=Path, default=None,
                      help="baseline file of grandfathered findings")
    lint.add_argument("--write-baseline", action="store_true",
                      help="record current findings as the new baseline")
    lint.add_argument("--update-baseline", action="store_true",
                      help="drop baseline entries no longer produced")
    lint.add_argument("--no-baseline", action="store_true",
                      help="report every finding, ignoring any baseline")
    lint.add_argument("--jobs", type=int, default=1,
                      help="parse-stage worker processes (default: 1)")
    lint.add_argument("--cache", type=Path, default=None,
                      help="incremental cache file")
    lint.add_argument("--no-cache", action="store_true",
                      help="analyse from scratch without a cache")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")
    lint.add_argument("--explain", metavar="CODE", default=None,
                      help="print one rule's description, rationale, "
                           "and a good/bad example, then exit")
    lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    # The experiments subcommand forwards everything verbatim to the
    # experiment runner (argparse.REMAINDER mishandles leading options).
    if argv and argv[0] == "experiments":
        return experiments_runner.main(argv[1:])
    # The fleet subcommand parses with its own parser so the top-level
    # CLI never pays the fleet/serve import unless a fleet command runs.
    if argv and argv[0] == "fleet":
        from repro.fleet.cli import build_parser as build_fleet_parser

        args = build_fleet_parser().parse_args(argv)
        return args.func(args)
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
