"""Histogram-based regression trees (the weak learners of gradient boosting).

This is the substrate replacing lightGBM: features are pre-binned once
(:class:`BinMapper`), and tree growth finds splits by scanning per-feature
histograms of the gradient statistics — the same design lightGBM uses.
A histogram-subtraction trick (a child's histogram equals its parent's
minus its sibling's) keeps node costs proportional to the *smaller* child.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BinMapper", "RegressionTree", "grow_tree"]

#: Features are processed in chunks of this many columns when building
#: histograms, bounding the temporary flat-index array.
_FEATURE_CHUNK = 256


class BinMapper:
    """Maps continuous features to small integer bin codes.

    Thresholds are midpoints between adjacent (sampled) unique values, so
    no data point ever equals a threshold and ``code(x) <= b  <=>
    x < threshold[b]`` holds exactly.
    """

    def __init__(self, max_bins: int = 64) -> None:
        if not 2 <= max_bins <= 255:
            raise ValueError(f"max_bins must be in [2, 255], got {max_bins}")
        self._max_bins = max_bins
        self._thresholds: list[np.ndarray] = []

    @property
    def max_bins(self) -> int:
        """The configured maximum number of bins per feature."""
        return self._max_bins

    @property
    def n_features(self) -> int:
        """Number of features this mapper was fitted to."""
        return len(self._thresholds)

    def thresholds(self, feature: int) -> np.ndarray:
        """Sorted split thresholds of ``feature``."""
        return self._thresholds[feature]

    def fit(self, features: np.ndarray) -> "BinMapper":
        """Choose per-feature thresholds from the training matrix.

        Re-validates ``max_bins`` here as well as in the constructor:
        :meth:`transform` packs codes into uint8, so more than 255 bins
        would wrap silently (code 256 → 0) and corrupt every downstream
        histogram.  Failing loudly at fit time catches configs that
        bypassed ``__init__`` (deserialisation, subclasses, direct
        attribute mutation).
        """
        if not 2 <= self._max_bins <= 255:
            raise ValueError(
                f"max_bins must be in [2, 255] to fit uint8 bin codes, "
                f"got {self._max_bins}"
            )
        X = np.asarray(features, dtype=np.float64)
        self._thresholds = []
        for column in X.T:
            uniques = np.unique(column)
            if uniques.size <= 1:
                thresholds = np.empty(0, dtype=np.float64)
            elif uniques.size <= self._max_bins:
                thresholds = (uniques[:-1] + uniques[1:]) / 2.0
            else:
                # Sample bin boundaries at equi-spaced unique positions.
                positions = np.linspace(
                    0, uniques.size, self._max_bins + 1
                ).astype(int)[1:-1]
                positions = np.unique(positions)
                thresholds = (uniques[positions - 1] + uniques[positions]) / 2.0
            # A midpoint between nearly-equal values can round onto one of
            # them, which would break the ``code(x) <= b <=> x < t[b]``
            # invariant; drop colliding thresholds (merging the two
            # indistinguishable values into one bin) and duplicates.
            thresholds = np.unique(thresholds)
            positions = np.searchsorted(uniques, thresholds)
            positions = np.clip(positions, 0, uniques.size - 1)
            collides = uniques[positions] == thresholds
            self._thresholds.append(thresholds[~collides])
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Return uint8 bin codes of shape ``(n, d)``."""
        X = np.asarray(features, dtype=np.float64)
        if X.shape[1] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {X.shape[1]}"
            )
        codes = np.empty(X.shape, dtype=np.uint8)
        for j, thresholds in enumerate(self._thresholds):
            # fit() rejects max_bins > 255, but thresholds can also
            # arrive via persistence, where a corrupt or hand-built
            # artifact bypasses that check — and searchsorted output
            # beyond 255 would wrap to a valid-looking uint8 code.
            if thresholds.size > 254:
                raise ValueError(
                    f"column {j} has {thresholds.size} thresholds; "
                    "bin codes above 255 cannot fit uint8"
                )
            codes[:, j] = np.searchsorted(thresholds, X[:, j]).astype(np.uint8)
        return codes


@dataclass
class RegressionTree:
    """A trained tree in flat-array form.

    ``feature[i] < 0`` marks node ``i`` as a leaf with prediction
    ``value[i]``; otherwise rows with ``x[feature[i]] < threshold[i]`` go
    to ``left[i]`` and the rest to ``right[i]``.
    """

    feature: np.ndarray
    threshold: np.ndarray
    split_bin: np.ndarray
    left: np.ndarray
    right: np.ndarray
    value: np.ndarray

    @property
    def node_count(self) -> int:
        """Total number of nodes (inner + leaves)."""
        return int(self.feature.size)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict from raw (un-binned) features."""
        X = np.asarray(features, dtype=np.float64)
        return self._traverse(X, lambda idx, node: (
            X[idx, self.feature[node]] < self.threshold[node]
        ))

    def predict_binned(self, codes: np.ndarray) -> np.ndarray:
        """Predict from pre-binned codes (used inside the boosting loop)."""
        return self._traverse(codes, lambda idx, node: (
            codes[idx, self.feature[node]] <= self.split_bin[node]
        ))

    def _traverse(self, X: np.ndarray, goes_left) -> np.ndarray:
        out = np.empty(X.shape[0], dtype=np.float64)
        stack: list[tuple[int, np.ndarray]] = [(0, np.arange(X.shape[0]))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if self.feature[node] < 0:
                out[idx] = self.value[node]
                continue
            mask = goes_left(idx, node)
            stack.append((int(self.left[node]), idx[mask]))
            stack.append((int(self.right[node]), idx[~mask]))
        return out

    def memory_bytes(self) -> int:
        """Serialized size of the node arrays."""
        return sum(arr.nbytes for arr in (
            self.feature, self.threshold, self.split_bin,
            self.left, self.right, self.value,
        ))


def _node_histograms(codes: np.ndarray, rows: np.ndarray, gradients: np.ndarray,
                     max_bins: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-feature histograms of row counts and gradient sums at a node."""
    n_features = codes.shape[1]
    counts = np.empty((n_features, max_bins), dtype=np.float64)
    sums = np.empty((n_features, max_bins), dtype=np.float64)
    g = gradients[rows]
    for start in range(0, n_features, _FEATURE_CHUNK):
        stop = min(start + _FEATURE_CHUNK, n_features)
        width = stop - start
        block = codes[rows, start:stop].astype(np.int64)
        block += np.arange(width, dtype=np.int64) * max_bins
        flat = block.ravel()
        counts[start:stop] = np.bincount(
            flat, minlength=width * max_bins
        ).reshape(width, max_bins)
        sums[start:stop] = np.bincount(
            flat, weights=np.repeat(g, width), minlength=width * max_bins
        ).reshape(width, max_bins)
    return counts, sums


def _best_split(counts: np.ndarray, sums: np.ndarray, total_count: float,
                total_sum: float, min_samples_leaf: int,
                feature_mask: np.ndarray | None) -> tuple[float, int, int]:
    """Return ``(gain, feature, split_bin)`` of the best split (gain <= 0 if none)."""
    cum_counts = np.cumsum(counts, axis=1)
    cum_sums = np.cumsum(sums, axis=1)
    right_counts = total_count - cum_counts
    right_sums = total_sum - cum_sums
    valid = (cum_counts >= min_samples_leaf) & (right_counts >= min_samples_leaf)
    if feature_mask is not None:
        valid &= feature_mask[:, None]
    with np.errstate(divide="ignore", invalid="ignore"):
        gain = (cum_sums**2 / cum_counts + right_sums**2 / right_counts)
    parent_score = total_sum**2 / total_count
    gain = np.where(valid, gain - parent_score, -np.inf)
    flat_best = int(np.argmax(gain))
    feature, split_bin = divmod(flat_best, counts.shape[1])
    return float(gain[feature, split_bin]), feature, split_bin


def grow_tree(codes: np.ndarray, gradients: np.ndarray, mapper: BinMapper,
              rows: np.ndarray | None = None, max_depth: int = 6,
              min_samples_leaf: int = 20, min_gain: float = 1e-10,
              colsample: float = 1.0,
              rng: np.random.Generator | None = None) -> RegressionTree:
    """Grow one regression tree on binned features against ``gradients``.

    ``rows`` restricts training to a row subset (boosting's subsampling).
    ``colsample`` draws a feature subset per node.
    """
    if rows is None:
        rows = np.arange(codes.shape[0])
    if rows.size == 0:
        raise ValueError("cannot grow a tree on zero rows")
    if not 0.0 < colsample <= 1.0:
        raise ValueError(f"colsample must be in (0, 1], got {colsample}")
    if colsample < 1.0 and rng is None:
        # Column subsampling needs randomness even when the caller did
        # not pass a generator; a fixed seed keeps training reproducible
        # (Equation 4's determinism contract, enforced by RPR202).
        rng = np.random.default_rng(0)
    max_bins = mapper.max_bins
    n_features = codes.shape[1]

    feature: list[int] = []
    threshold: list[float] = []
    split_bin: list[int] = []
    left: list[int] = []
    right: list[int] = []
    value: list[float] = []

    def new_node() -> int:
        feature.append(-1)
        threshold.append(0.0)
        split_bin.append(0)
        left.append(-1)
        right.append(-1)
        value.append(0.0)
        return len(feature) - 1

    root = new_node()
    # Depth-first growth; each stack entry carries the parent's histograms
    # so the larger child can be derived by subtraction.
    stack = [(root, rows, 0, None)]
    while stack:
        node, node_rows, depth, hists = stack.pop()
        g_sum = float(gradients[node_rows].sum())
        n_node = float(node_rows.size)
        value[node] = g_sum / n_node
        if depth >= max_depth or node_rows.size < 2 * min_samples_leaf:
            continue
        if hists is None:
            hists = _node_histograms(codes, node_rows, gradients, max_bins)
        counts, sums = hists
        feature_mask = None
        if colsample < 1.0:
            feature_mask = rng.random(n_features) < colsample
            if not feature_mask.any():
                feature_mask[rng.integers(n_features)] = True
        gain, feat, bin_idx = _best_split(
            counts, sums, n_node, g_sum, min_samples_leaf, feature_mask
        )
        if gain <= min_gain:
            continue
        thresholds = mapper.thresholds(feat)
        if bin_idx >= thresholds.size:
            continue  # split beyond the last threshold is a no-op
        go_left = codes[node_rows, feat] <= bin_idx
        left_rows = node_rows[go_left]
        right_rows = node_rows[~go_left]
        if left_rows.size < min_samples_leaf or right_rows.size < min_samples_leaf:
            continue

        feature[node] = feat
        threshold[node] = float(thresholds[bin_idx])
        split_bin[node] = bin_idx
        left_id = new_node()
        right_id = new_node()
        left[node] = left_id
        right[node] = right_id

        # Compute the smaller child's histograms; derive the larger by
        # subtraction from the parent's.
        if left_rows.size <= right_rows.size:
            small_rows, small_id = left_rows, left_id
            big_rows, big_id = right_rows, right_id
        else:
            small_rows, small_id = right_rows, right_id
            big_rows, big_id = left_rows, left_id
        small_hists = _node_histograms(codes, small_rows, gradients, max_bins)
        big_hists = (counts - small_hists[0], sums - small_hists[1])
        stack.append((small_id, small_rows, depth + 1, small_hists))
        stack.append((big_id, big_rows, depth + 1, big_hists))

    return RegressionTree(
        feature=np.asarray(feature, dtype=np.int32),
        threshold=np.asarray(threshold, dtype=np.float64),
        split_bin=np.asarray(split_bin, dtype=np.int32),
        left=np.asarray(left, dtype=np.int32),
        right=np.asarray(right, dtype=np.int32),
        value=np.asarray(value, dtype=np.float64),
    )
