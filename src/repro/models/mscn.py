"""Multi-Set Convolutional Network (MSCN), from scratch (Section 2.2.1/4.2).

MSCN (Kipf et al., CIDR 2019) is the paper's representative *global*
model.  A query is featurized into three **sets** — tables, joins, and
predicates — each set element is passed through a small MLP, the per-set
outputs are average-pooled, concatenated, and fed through an output MLP
with a sigmoid over the min-max-normalised log cardinality.

:class:`MSCNInputBuilder` produces the padded set tensors in two modes:

* ``mode="basic"`` — the original per-predicate featurization
  (attribute one-hot ++ operator bits ++ normalised literal); this is the
  paper's *MSCN w/o mods*.
* ``mode="qft"`` — the paper's Section 4.2 modification: all predicates
  referencing the same attribute are featurized into **one** per-attribute
  vector with Universal Conjunction / Limited Disjunction Encoding,
  labelled by the attribute's one-hot id; this is *MSCN + conj*.

:class:`MSCNModel` implements forward and backward passes (masked
pooling included) in numpy with Adam.
"""

from __future__ import annotations

import numpy as np

from repro import config, obs
from repro.data.schema import Schema
from repro.data.table import Table
from repro.featurize.batch import OP_CODES, PredicateBatch
from repro.featurize.disjunction import DisjunctionEncoding
from repro.featurize.joins import predicate_columns
from repro.sql.ast import Op, Query, to_compound_form
from repro.sql.executor import per_table_selections

__all__ = ["MSCNInputBuilder", "MSCNModel", "SetBatch"]

#: Operator -> (=, >, <) bits for the basic per-predicate featurization.
_OP_BITS = {
    Op.EQ: (1.0, 0.0, 0.0),
    Op.GT: (0.0, 1.0, 0.0),
    Op.LT: (0.0, 0.0, 1.0),
    Op.GE: (1.0, 1.0, 0.0),
    Op.LE: (1.0, 0.0, 1.0),
    Op.NE: (0.0, 1.0, 1.0),
}


class SetBatch:
    """Padded tensors of one set type: ``data (B, S, D)``, ``mask (B, S, 1)``."""

    def __init__(self, elements: list[list[np.ndarray]], dim: int) -> None:
        batch = len(elements)
        width = max((len(e) for e in elements), default=1)
        width = max(width, 1)
        self.data = np.zeros((batch, width, dim), dtype=np.float64)
        self.mask = np.zeros((batch, width, 1), dtype=np.float64)
        for i, rows in enumerate(elements):
            if not rows:
                # Empty sets keep one zero element with an active mask so
                # pooling stays well-defined (original MSCN does the same).
                self.mask[i, 0, 0] = 1.0
                continue
            for j, row in enumerate(rows):
                self.data[i, j] = row
                self.mask[i, j, 0] = 1.0

    def take(self, idx: np.ndarray) -> "SetBatch":
        """Row-subset view used for mini-batching."""
        out = object.__new__(SetBatch)
        out.data = self.data[idx]
        out.mask = self.mask[idx]
        return out


def _schema_of(data: Table | Schema) -> Schema:
    if isinstance(data, Schema):
        return data
    return Schema([data])


class MSCNInputBuilder:
    """Builds MSCN's three set featurizations for queries over a schema."""

    def __init__(self, data: Table | Schema, mode: str = "basic",
                 max_partitions: int = config.DEFAULT_PARTITIONS,
                 attr_selectivity: bool = True) -> None:
        if mode not in ("basic", "range", "qft"):
            raise ValueError(
                f"mode must be 'basic', 'range' or 'qft', got {mode!r}"
            )
        self._schema = _schema_of(data)
        self._mode = mode
        self._tables = tuple(self._schema.table_names)
        self._joins = tuple(self._schema.foreign_keys)

        # Attribute universe: every featurizable (table, column) pair.
        self._attributes: list[tuple[str, str]] = []
        self._featurizers: dict[str, DisjunctionEncoding] = {}
        for table_name in self._tables:
            columns = predicate_columns(self._schema, table_name)
            for column in columns:
                self._attributes.append((table_name, column))
            if mode == "qft":
                self._featurizers[table_name] = DisjunctionEncoding(
                    self._schema.table(table_name), columns,
                    max_partitions=max_partitions,
                    attr_selectivity=attr_selectivity,
                )
        self._attr_index = {pair: i for i, pair in enumerate(self._attributes)}

        if mode == "qft":
            self._segment_width = max(
                feat.attribute_slices()[attr].stop - feat.attribute_slices()[attr].start
                for feat in self._featurizers.values()
                for attr in feat.attributes
            )
        elif mode == "range":
            self._segment_width = 2  # normalised [lo, hi]
        else:
            self._segment_width = 4  # op bits + literal

    @property
    def table_dim(self) -> int:
        """Element width of the table set (one-hot over tables)."""
        return len(self._tables)

    @property
    def join_dim(self) -> int:
        """Element width of the join set (one-hot over FK edges)."""
        return max(len(self._joins), 1)

    @property
    def predicate_dim(self) -> int:
        """Element width of the predicate set (attr one-hot ++ payload)."""
        return len(self._attributes) + self._segment_width

    def _join_onehot(self, query: Query) -> list[np.ndarray]:
        rows = []
        for join in query.joins:
            vector = np.zeros(self.join_dim, dtype=np.float64)
            for i, fk in enumerate(self._joins):
                same = (fk.child_table == join.left_table
                        and fk.child_column == join.left_column
                        and fk.parent_table == join.right_table
                        and fk.parent_column == join.right_column)
                flipped = (fk.child_table == join.right_table
                           and fk.child_column == join.right_column
                           and fk.parent_table == join.left_table
                           and fk.parent_column == join.left_column)
                if same or flipped:
                    vector[i] = 1.0
                    break
            else:
                raise KeyError(f"join {join} does not match any schema FK")
            rows.append(vector)
        return rows

    def _predicate_rows(self, query: Query) -> list[np.ndarray]:
        selections = per_table_selections(query, self._schema)
        rows: list[np.ndarray] = []
        n_attrs = len(self._attributes)
        for table_name in query.tables:
            expr = selections.get(table_name)
            if expr is None:
                continue
            if self._mode == "basic":
                compound = to_compound_form(expr)
                table = self._schema.table(table_name)
                for attr, branches in compound.items():
                    name = attr.partition(".")[2] if "." in attr else attr
                    stats = table.column(name).stats
                    for branch in branches:
                        for pred in branch:
                            vector = np.zeros(self.predicate_dim)
                            vector[self._attr_index[(table_name, name)]] = 1.0
                            vector[n_attrs:n_attrs + 3] = _OP_BITS[pred.op]
                            vector[n_attrs + 3] = stats.normalize(pred.value)
                            rows.append(vector)
            elif self._mode == "range":
                from repro.featurize.selectivity import fold_conjunction

                compound = to_compound_form(expr)
                table = self._schema.table(table_name)
                for attr, branches in compound.items():
                    name = attr.partition(".")[2] if "." in attr else attr
                    stats = table.column(name).stats
                    # One normalised closed range per attribute (branches
                    # beyond the first cannot be represented — Range
                    # Predicate Encoding's information loss).
                    interval = fold_conjunction(branches[0], stats)
                    vector = np.zeros(self.predicate_dim)
                    vector[self._attr_index[(table_name, name)]] = 1.0
                    if interval.is_empty:
                        vector[n_attrs], vector[n_attrs + 1] = 1.0, 0.0
                    else:
                        vector[n_attrs] = stats.normalize(interval.lo)
                        vector[n_attrs + 1] = stats.normalize(interval.hi)
                    rows.append(vector)
            else:
                featurizer = self._featurizers[table_name]
                compound = to_compound_form(expr)
                for attr, branches in compound.items():
                    name = attr.partition(".")[2] if "." in attr else attr
                    merged = featurizer.attribute_segment(name, branches[0])
                    for branch in branches[1:]:
                        np.maximum(
                            merged, featurizer.attribute_segment(name, branch),
                            out=merged,
                        )
                    vector = np.zeros(self.predicate_dim)
                    vector[self._attr_index[(table_name, name)]] = 1.0
                    vector[n_attrs:n_attrs + merged.size] = merged
                    rows.append(vector)
        return rows

    def _predicate_rows_batch(self, queries: list[Query]
                              ) -> list[list[np.ndarray]]:
        """Batched qft-mode predicate rows via the compile → encode kernel.

        Compiles every query's per-table compound predicates into one
        :class:`PredicateBatch` per table and encodes all attribute
        segments with the vectorized Algorithm 1/2 kernel.  Rows are
        re-sorted by (table rank in the query, compile position) so each
        query's set elements appear in exactly the scalar order — the
        masked average pool sums floats in element order, so row order
        is part of the bitwise contract.
        """
        selections = [per_table_selections(q, self._schema) for q in queries]
        n_attrs = len(self._attributes)
        # Per query: (table_rank, compile_position, row) sort keys.
        collected: list[list[tuple[int, int, np.ndarray]]] = [
            [] for _ in queries
        ]
        for table_name in self._tables:
            featurizer = self._featurizers[table_name]
            query_ids = [i for i, selection in enumerate(selections)
                         if table_name in queries[i].tables
                         and selection.get(table_name) is not None]
            if not query_ids:
                continue
            batch = self._compile_table(
                featurizer, [selections[i][table_name] for i in query_ids])
            segments, group_queries, group_attrs, group_positions = (
                featurizer._compiled_attribute_segments(batch))
            counts = np.asarray(
                [featurizer.partitions(a) for a in featurizer.attributes],
                dtype=np.int64)[group_attrs]
            onehot_ids = np.asarray(
                [self._attr_index[(table_name, a)]
                 for a in featurizer.attributes],
                dtype=np.int64)[group_attrs]
            max_n = segments.shape[1] - (1 if featurizer.attr_selectivity
                                         else 0)
            n_groups = segments.shape[0]
            rows = np.zeros((n_groups, self.predicate_dim), dtype=np.float64)
            rows[np.arange(n_groups), onehot_ids] = 1.0
            # Padded segment columns beyond a group's n_A are all zero,
            # so the block copy leaves the scalar path's zero padding.
            rows[:, n_attrs:n_attrs + max_n] = segments[:, :max_n]
            if featurizer.attr_selectivity:
                rows[np.arange(n_groups), n_attrs + counts] = segments[:, -1]
            for g in range(n_groups):
                query_id = query_ids[group_queries[g]]
                rank = queries[query_id].tables.index(table_name)
                collected[query_id].append(
                    (rank, int(group_positions[g]), rows[g]))
        return [
            [row for _, _, row in sorted(per_query, key=lambda t: t[:2])]
            for per_query in collected
        ]

    @staticmethod
    def _compile_table(featurizer: DisjunctionEncoding,
                       exprs: list) -> PredicateBatch:
        """Compile WHERE expressions in ``compound.items()`` order.

        Unlike the featurizer's own compile (feature-space attribute
        order), set rows follow the scalar builder's iteration order over
        ``to_compound_form``, so positions must be assigned in that
        order for the re-sort above to reproduce it.
        """
        attr_ids = {name: i for i, name in
                    enumerate(featurizer.attributes)}
        query_index: list[int] = []
        attr_index: list[int] = []
        branch_index: list[int] = []
        op_code: list[int] = []
        value: list[float] = []
        for qi, expr in enumerate(exprs):
            compound = to_compound_form(expr)
            for attr, branches in compound.items():
                name = attr.partition(".")[2] if "." in attr else attr
                attr_id = attr_ids[name]
                for bi, branch in enumerate(branches):
                    for predicate in branch:
                        query_index.append(qi)
                        attr_index.append(attr_id)
                        branch_index.append(bi)
                        op_code.append(OP_CODES[predicate.op])
                        value.append(float(predicate.value))
        return PredicateBatch.from_lists(
            n_queries=len(exprs), attributes=featurizer.attributes,
            query_index=query_index, attr_index=attr_index,
            branch_index=branch_index, op_code=op_code,
            value=value, exprs=exprs,
        )

    def build(self, queries: list[Query]) -> tuple[SetBatch, SetBatch, SetBatch]:
        """Build the (tables, joins, predicates) set batches for ``queries``."""
        table_rows = []
        join_rows = []
        for query in queries:
            onehots = []
            for table in query.tables:
                vector = np.zeros(self.table_dim, dtype=np.float64)
                vector[self._tables.index(table)] = 1.0
                onehots.append(vector)
            table_rows.append(onehots)
            join_rows.append(self._join_onehot(query))
        if self._mode == "qft":
            pred_rows = self._predicate_rows_batch(queries)
        else:
            pred_rows = [self._predicate_rows(q) for q in queries]
        return (
            SetBatch(table_rows, self.table_dim),
            SetBatch(join_rows, self.join_dim),
            SetBatch(pred_rows, self.predicate_dim),
        )


class _SetMLP:
    """Two-layer ReLU MLP applied element-wise to a set, with Adam state."""

    def __init__(self, in_dim: int, hidden: int, rng: np.random.Generator) -> None:
        self.W1 = rng.normal(0.0, np.sqrt(2.0 / in_dim), (in_dim, hidden))
        self.b1 = np.zeros(hidden)
        self.W2 = rng.normal(0.0, np.sqrt(2.0 / hidden), (hidden, hidden))
        self.b2 = np.zeros(hidden)

    def params(self) -> list[np.ndarray]:
        return [self.W1, self.b1, self.W2, self.b2]

    def forward(self, batch: SetBatch) -> tuple[np.ndarray, dict]:
        h1 = np.maximum(batch.data @ self.W1 + self.b1, 0.0)
        h2 = np.maximum(h1 @ self.W2 + self.b2, 0.0)
        counts = np.maximum(batch.mask.sum(axis=1), 1.0)  # (B, 1)
        pooled = (h2 * batch.mask).sum(axis=1) / counts
        cache = {"x": batch.data, "mask": batch.mask, "h1": h1, "h2": h2,
                 "counts": counts}
        return pooled, cache

    def backward(self, d_pooled: np.ndarray, cache: dict) -> list[np.ndarray]:
        mask, counts = cache["mask"], cache["counts"]
        d_h2 = (d_pooled[:, None, :] / counts[:, None, :]) * mask
        d_h2 = d_h2 * (cache["h2"] > 0.0)
        h1_flat = cache["h1"].reshape(-1, self.W2.shape[0])
        d_h2_flat = d_h2.reshape(-1, self.W2.shape[1])
        dW2 = h1_flat.T @ d_h2_flat
        db2 = d_h2_flat.sum(axis=0)
        d_h1 = (d_h2 @ self.W2.T) * (cache["h1"] > 0.0)
        x_flat = cache["x"].reshape(-1, self.W1.shape[0])
        d_h1_flat = d_h1.reshape(-1, self.W1.shape[1])
        dW1 = x_flat.T @ d_h1_flat
        db1 = d_h1_flat.sum(axis=0)
        return [dW1, db1, dW2, db2]


class MSCNModel:
    """The full MSCN: three set MLPs, pooling, and an output MLP."""

    def __init__(self, builder: MSCNInputBuilder, hidden: int = 64,
                 epochs: int = 40, batch_size: int = 64,
                 learning_rate: float = 1e-3,
                 random_state: int = config.DEFAULT_SEED) -> None:
        self._builder = builder
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.random_state = random_state
        rng = np.random.default_rng(random_state)
        self._table_mlp = _SetMLP(builder.table_dim, hidden, rng)
        self._join_mlp = _SetMLP(builder.join_dim, hidden, rng)
        self._pred_mlp = _SetMLP(builder.predicate_dim, hidden, rng)
        self.W3 = rng.normal(0.0, np.sqrt(2.0 / (3 * hidden)), (3 * hidden, hidden))
        self.b3 = np.zeros(hidden)
        self.W4 = rng.normal(0.0, np.sqrt(2.0 / hidden), (hidden, 1))
        self.b4 = np.zeros(1)
        self._label_min = 0.0
        self._label_max = 1.0
        self._fitted = False

    # ------------------------------------------------------------------

    def _all_params(self) -> list[np.ndarray]:
        return (self._table_mlp.params() + self._join_mlp.params()
                + self._pred_mlp.params() + [self.W3, self.b3, self.W4, self.b4])

    def _forward(self, sets: tuple[SetBatch, SetBatch, SetBatch]
                 ) -> tuple[np.ndarray, dict]:
        pooled_t, cache_t = self._table_mlp.forward(sets[0])
        pooled_j, cache_j = self._join_mlp.forward(sets[1])
        pooled_p, cache_p = self._pred_mlp.forward(sets[2])
        z = np.concatenate([pooled_t, pooled_j, pooled_p], axis=1)
        a3 = np.maximum(z @ self.W3 + self.b3, 0.0)
        logits = a3 @ self.W4 + self.b4
        out = 1.0 / (1.0 + np.exp(-logits))
        cache = {"z": z, "a3": a3, "out": out,
                 "caches": (cache_t, cache_j, cache_p)}
        return out[:, 0], cache

    def _backward(self, cache: dict, error: np.ndarray) -> list[np.ndarray]:
        batch = error.shape[0]
        out = cache["out"]
        d_logits = (error / batch)[:, None] * out * (1.0 - out)
        dW4 = cache["a3"].T @ d_logits
        db4 = d_logits.sum(axis=0)
        d_a3 = (d_logits @ self.W4.T) * (cache["a3"] > 0.0)
        dW3 = cache["z"].T @ d_a3
        db3 = d_a3.sum(axis=0)
        d_z = d_a3 @ self.W3.T
        h = self.hidden
        grads = []
        for i, mlp in enumerate((self._table_mlp, self._join_mlp, self._pred_mlp)):
            grads.extend(mlp.backward(d_z[:, i * h:(i + 1) * h],
                                      cache["caches"][i]))
        grads.extend([dW3, db3, dW4, db4])
        return grads

    # ------------------------------------------------------------------

    @obs.trace("model.fit", model="MSCNModel")
    def fit(self, queries: list[Query], cardinalities: np.ndarray) -> "MSCNModel":
        """Train on queries and their true cardinalities."""
        y_raw = np.asarray(cardinalities, dtype=np.float64)
        if len(queries) != y_raw.size:
            raise ValueError("queries and cardinalities must align")
        if len(queries) == 0:
            raise ValueError("training set must be non-empty")
        log_y = np.log(np.maximum(y_raw, 1.0))
        self._label_min = float(log_y.min())
        self._label_max = float(max(log_y.max(), self._label_min + 1e-9))
        y = (log_y - self._label_min) / (self._label_max - self._label_min)

        with obs.span("model.mscn.build_inputs", n_queries=len(queries)):
            sets = self._builder.build(queries)
        rng = np.random.default_rng(self.random_state)
        params = self._all_params()
        m = [np.zeros_like(p) for p in params]
        v = [np.zeros_like(p) for p in params]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        n = len(queries)
        for epoch in range(self.epochs):
            with obs.span("model.train.epoch", model="MSCNModel",
                          epoch=epoch, metric="model.train.epoch_seconds"):
                order = rng.permutation(n)
                for start in range(0, n, self.batch_size):
                    idx = order[start:start + self.batch_size]
                    if idx.size == 0:
                        continue
                    batch_sets = tuple(s.take(idx) for s in sets)
                    pred, cache = self._forward(batch_sets)
                    grads = self._backward(cache, pred - y[idx])
                    step += 1
                    for p, g, m_i, v_i in zip(params, grads, m, v):
                        m_i *= beta1
                        m_i += (1 - beta1) * g
                        v_i *= beta2
                        v_i += (1 - beta2) * g**2
                        m_hat = m_i / (1 - beta1**step)
                        v_hat = v_i / (1 - beta2**step)
                        p -= (self.learning_rate * m_hat
                              / (np.sqrt(v_hat) + eps))
        self._fitted = True
        return self

    @obs.trace("model.predict", model="MSCNModel")
    def predict(self, queries: list[Query]) -> np.ndarray:
        """Predict cardinalities (denormalised from the sigmoid output)."""
        if not self._fitted:
            raise RuntimeError("model must be fitted before predicting")
        with obs.span("model.mscn.build_inputs", n_queries=len(queries)):
            sets = self._builder.build(queries)
        out, _ = self._forward(sets)
        log_pred = out * (self._label_max - self._label_min) + self._label_min
        return np.maximum(np.exp(np.clip(log_pred, 0.0, 80.0)),
                          config.MIN_ESTIMATE)

    def memory_bytes(self) -> int:
        """Footprint of all trainable parameters (Section 5.7)."""
        return sum(p.nbytes for p in self._all_params())
