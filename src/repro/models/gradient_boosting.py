"""Gradient boosting with regression-tree weak learners (Section 2.2.2).

Implements the paper's Equation 5: the estimator sums ``P`` weak
predictors (here: histogram-based regression trees, each weighted by the
learning rate) plus a constant ``c`` (the target mean).  Squared loss on
the log-cardinality target makes each tree fit the current residuals.

Defaults mirror a lightly tuned lightGBM setup at the reproduction's
scale; the experiment harness exposes the knobs the paper tuned.
"""

from __future__ import annotations

import numpy as np

from repro import config, obs
from repro.models.base import Regressor, check_matrix
from repro.models.compiled_forest import CompiledForest
from repro.models.tree import BinMapper, RegressionTree, grow_tree

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor(Regressor):
    """Gradient-boosted regression trees on binned features."""

    def __init__(self, n_estimators: int = 120, learning_rate: float = 0.1,
                 max_depth: int = 6, min_samples_leaf: int = 20,
                 max_bins: int = 64, subsample: float = 1.0,
                 colsample: float = 1.0,
                 early_stopping_rounds: int | None = 15,
                 validation_fraction: float = 0.1,
                 random_state: int = config.DEFAULT_SEED) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError(f"learning_rate must be in (0, 1], got {learning_rate}")
        if not 0.0 < subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got {subsample}")
        if not 0.0 < validation_fraction < 1.0:
            raise ValueError(
                f"validation_fraction must be in (0, 1), got {validation_fraction}"
            )
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_bins = max_bins
        self.subsample = subsample
        self.colsample = colsample
        self.early_stopping_rounds = early_stopping_rounds
        self.validation_fraction = validation_fraction
        self.random_state = random_state
        self._trees: list[RegressionTree] = []
        self._mapper: BinMapper | None = None
        self._base: float = 0.0
        self._fitted = False
        self._compiled: CompiledForest | None = None

    @property
    def trees(self) -> list[RegressionTree]:
        """The trained weak learners."""
        return list(self._trees)

    @property
    def compiled(self) -> CompiledForest | None:
        """The packed forest, or ``None`` before :meth:`compile`."""
        return self._compiled

    def compile(self) -> CompiledForest:
        """Pack the fitted trees into a :class:`CompiledForest`.

        Idempotent; subsequent :meth:`predict` calls use the packed
        tensors (bitwise-identical output).  Re-fitting invalidates the
        compiled form.
        """
        if not self._fitted:
            raise RuntimeError("model must be fitted before compiling")
        if self._compiled is None:
            with obs.span("model.gb.compile", n_trees=len(self._trees)):
                self._compiled = CompiledForest(
                    self._trees, self._base, self.learning_rate
                )
        return self._compiled

    @obs.trace("model.fit", model="GradientBoostingRegressor")
    def fit(self, features: np.ndarray, targets: np.ndarray
            ) -> "GradientBoostingRegressor":
        X, y = check_matrix(features, targets)
        self._compiled = None
        rng = np.random.default_rng(self.random_state)
        with obs.span("model.gb.bin", max_bins=self.max_bins):
            self._mapper = BinMapper(self.max_bins).fit(X)
            codes = self._mapper.transform(X)

        use_early_stop = (self.early_stopping_rounds is not None
                          and X.shape[0] >= 50)
        if use_early_stop:
            permutation = rng.permutation(X.shape[0])
            n_val = max(int(X.shape[0] * self.validation_fraction), 10)
            val_idx = permutation[:n_val]
            train_idx = permutation[n_val:]
        else:
            train_idx = np.arange(X.shape[0])
            val_idx = np.empty(0, dtype=np.int64)

        self._base = float(y[train_idx].mean())
        self._trees = []
        prediction = np.full(X.shape[0], self._base)
        best_val_loss = np.inf
        best_n_trees = 0
        rounds_since_best = 0

        with obs.span("model.gb.boost",
                      n_estimators=self.n_estimators) as boost:
            for _ in range(self.n_estimators):
                residuals = y - prediction
                if self.subsample < 1.0:
                    take = rng.random(train_idx.size) < self.subsample
                    rows = train_idx[take] if take.any() else train_idx
                else:
                    rows = train_idx
                tree = grow_tree(
                    codes, residuals, self._mapper, rows=rows,
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    colsample=self.colsample, rng=rng,
                )
                self._trees.append(tree)
                prediction += self.learning_rate * tree.predict_binned(codes)

                if use_early_stop:
                    val_loss = float(
                        np.mean((y[val_idx] - prediction[val_idx]) ** 2)
                    )
                    if val_loss < best_val_loss - 1e-12:
                        best_val_loss = val_loss
                        best_n_trees = len(self._trees)
                        rounds_since_best = 0
                    else:
                        rounds_since_best += 1
                        if rounds_since_best >= self.early_stopping_rounds:
                            break
            if boost is not None:
                boost.set_attribute("trees_grown", len(self._trees))

        if use_early_stop and best_n_trees:
            self._trees = self._trees[:best_n_trees]
        self._fitted = True
        return self

    @obs.trace("model.predict", model="GradientBoostingRegressor")
    def predict(self, features: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("model must be fitted before predicting")
        X, _ = check_matrix(features)
        if self._compiled is not None:
            return self._compiled.predict(X)
        prediction = np.full(X.shape[0], self._base)
        for tree in self._trees:  # repro: ignore[RPR109]
            prediction += self.learning_rate * tree.predict(X)
        return prediction

    def memory_bytes(self) -> int:
        """Footprint of the trained trees (thresholds live in the trees)."""
        return sum(tree.memory_bytes() for tree in self._trees) + 8

    # ------------------------------------------------------------------
    # Persistence (see repro.persistence)
    # ------------------------------------------------------------------

    _TREE_FIELDS = ("feature", "threshold", "split_bin", "left", "right",
                    "value")

    def state_dict(self) -> dict:
        """Serializable state: JSON-safe ``config`` + numpy ``arrays``.

        Prediction only needs the trees (raw thresholds live inside
        them), so the bin mapper is not persisted; a loaded model can
        predict but not resume training.
        """
        if not self._fitted:
            raise RuntimeError("cannot serialise an unfitted model")
        arrays = {}
        for i, tree in enumerate(self._trees):
            for field in self._TREE_FIELDS:
                arrays[f"tree{i}/{field}"] = getattr(tree, field)
        config = {
            "kind": "gradient_boosting",
            "n_trees": len(self._trees),
            "base": self._base,
            "learning_rate": self.learning_rate,
        }
        return {"config": config, "arrays": arrays}

    @classmethod
    def from_state(cls, state: dict) -> "GradientBoostingRegressor":
        """Rebuild a predict-only model from :meth:`state_dict` output."""
        config = state["config"]
        if config.get("kind") != "gradient_boosting":
            raise ValueError(f"not a gradient-boosting state: {config}")
        model = cls(learning_rate=config["learning_rate"])
        arrays = state["arrays"]
        model._trees = [
            RegressionTree(**{field: np.asarray(arrays[f"tree{i}/{field}"])
                              for field in cls._TREE_FIELDS})
            for i in range(config["n_trees"])
        ]
        model._base = float(config["base"])
        model._fitted = True
        return model
