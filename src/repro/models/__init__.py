"""Machine-learning models for cardinality estimation, from scratch.

The paper combines its QFTs with three model families (Section 2.2): a
feed-forward neural network (Keras/TensorFlow in the paper), gradient
boosting (lightGBM in the paper), and the Multi-Set Convolutional Network
(PyTorch in the paper).  None of those libraries are available offline,
so this subpackage implements all three — plus the linear/SVR baselines
the paper mentions and dismisses — in pure numpy:

* :mod:`repro.models.tree` / :mod:`repro.models.gradient_boosting` —
  histogram-based gradient-boosted regression trees.
* :mod:`repro.models.neural_net` — a multi-layer perceptron with ReLU,
  Adam, mini-batching, and early stopping.
* :mod:`repro.models.mscn` — the multi-set convolutional network: per-set
  MLPs, masked average pooling, and an output MLP.
* :mod:`repro.models.linear` — ridge regression and linear SVR.

All models are *input-agnostic* regressors (``fit(X, y)`` /
``predict(X)``), which is what lets the QFT vary independently of the
model (Section 2.2, last paragraph).  Cardinality targets are handled in
log space by :class:`repro.models.base.LogSpaceRegressor`.
"""

from repro.models.base import LogSpaceRegressor, Regressor
from repro.models.compiled_forest import CompiledForest
from repro.models.gradient_boosting import GradientBoostingRegressor
from repro.models.linear import LinearSVR, RidgeRegressor
from repro.models.mscn import MSCNModel, MSCNInputBuilder
from repro.models.neural_net import NeuralNetRegressor

__all__ = [
    "Regressor",
    "LogSpaceRegressor",
    "CompiledForest",
    "GradientBoostingRegressor",
    "NeuralNetRegressor",
    "MSCNModel",
    "MSCNInputBuilder",
    "RidgeRegressor",
    "LinearSVR",
]
