"""Linear baselines the paper mentions and dismisses (Section 2.2).

"We also tested simpler models, like linear regression and support vector
regression.  However, we do not include these ML models in the further
discussion and evaluation since their estimates are worse by a
significant factor."  We implement both so that claim is checkable
(see ``tests/models/test_linear.py`` and the ablation benchmark).
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.models.base import Regressor, check_matrix

__all__ = ["RidgeRegressor", "LinearSVR"]


class RidgeRegressor(Regressor):
    """L2-regularised least squares, solved in closed form."""

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.alpha = alpha
        self._coef: np.ndarray | None = None
        self._intercept = 0.0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RidgeRegressor":
        X, y = check_matrix(features, targets)
        mean_x = X.mean(axis=0)
        mean_y = float(y.mean())
        Xc = X - mean_x
        yc = y - mean_y
        gram = Xc.T @ Xc + self.alpha * np.eye(X.shape[1])
        self._coef = np.linalg.solve(gram, Xc.T @ yc)
        self._intercept = mean_y - float(mean_x @ self._coef)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._coef is None:
            raise RuntimeError("model must be fitted before predicting")
        X, _ = check_matrix(features)
        return X @ self._coef + self._intercept

    def memory_bytes(self) -> int:
        if self._coef is None:
            return 0
        return self._coef.nbytes + 8


class LinearSVR(Regressor):
    """Linear support vector regression via subgradient descent.

    Epsilon-insensitive loss with L2 regularisation; plain mini-batch
    subgradient updates are plenty for a baseline that exists to be
    outperformed.
    """

    def __init__(self, epsilon: float = 0.1, c: float = 1.0,
                 epochs: int = 60, batch_size: int = 128,
                 learning_rate: float = 1e-2,
                 random_state: int = config.DEFAULT_SEED) -> None:
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        if c <= 0:
            raise ValueError(f"c must be > 0, got {c}")
        self.epsilon = epsilon
        self.c = c
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.random_state = random_state
        self._coef: np.ndarray | None = None
        self._intercept = 0.0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "LinearSVR":
        X, y = check_matrix(features, targets)
        rng = np.random.default_rng(self.random_state)
        coef = np.zeros(X.shape[1])
        intercept = float(y.mean())
        n = X.shape[0]
        for epoch in range(self.epochs):
            lr = self.learning_rate / (1.0 + 0.1 * epoch)
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start:start + self.batch_size]
                residual = X[idx] @ coef + intercept - y[idx]
                # Subgradient of the epsilon-insensitive loss.
                sign = np.where(residual > self.epsilon, 1.0,
                                np.where(residual < -self.epsilon, -1.0, 0.0))
                grad_coef = (self.c * (X[idx].T @ sign) / idx.size
                             + coef / n)
                grad_intercept = self.c * float(sign.mean())
                coef -= lr * grad_coef
                intercept -= lr * grad_intercept
        self._coef = coef
        self._intercept = intercept
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._coef is None:
            raise RuntimeError("model must be fitted before predicting")
        X, _ = check_matrix(features)
        return X @ self._coef + self._intercept

    def memory_bytes(self) -> int:
        if self._coef is None:
            return 0
        return self._coef.nbytes + 8
