"""Compiled forest inference: the whole GB ensemble as node tensors.

The legacy predict path walks every :class:`~repro.models.tree.RegressionTree`
separately — a python loop over trees, each tree a python stack of
index-array splits.  For serving-sized batches (1–64 queries) the python
dispatch dominates: ~``n_trees × nodes_per_tree`` tiny numpy calls per
request.

:class:`CompiledForest` packs all fitted trees into contiguous
``(n_trees, max_nodes)`` tensors (feature index, raw threshold, child
indices, leaf value) and predicts with **level-synchronous traversal**:
every (tree, row) pair advances one level per step, so a whole batch
crosses the entire forest in ``max_depth`` iterations of a handful of
numpy gathers — no per-tree python loop, no recursion, no index stacks.

The traversal exploits three packing invariants to stay at ~7 numpy
kernels per level with no masking:

* ``grow_tree`` allocates children consecutively, so ``right ==
  left + 1`` and the branch is pure arithmetic: ``next = left +
  (x[feature] >= threshold)``.
* Leaves are rewritten as *self-loops* with ``threshold = +inf``
  (and feature 0), so finished cursors keep re-landing on their leaf
  without an ``active`` mask — inputs are finite per ``check_matrix``,
  and ``finite >= +inf`` is always ``False``.
* Node ids are pre-offset to *global* flat positions (``tree ×
  max_nodes + node``), so every per-level lookup is one fancy gather
  from a 1-d array.

The contract is *bitwise identity* with the legacy path: for finite
inputs ``x >= t`` is exactly ``not (x < t)``, so the traversal reaches
the same leaves the flat trees reach, and :meth:`predict` accumulates
``base + lr·v₀ + lr·v₁ + …`` in the same tree order with the same
float associativity.  ``tests/models/test_compiled_forest.py`` gates
this, and ``repro bench predict`` measures the speedup.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.models.tree import RegressionTree

__all__ = ["CompiledForest"]


class CompiledForest:
    """All trees of a fitted gradient-boosting ensemble, packed flat.

    Parameters
    ----------
    trees:
        The fitted :class:`RegressionTree` weak learners, in boosting
        order (the order the legacy predict loop accumulates them in).
    base:
        The ensemble's constant term (training-target mean).
    learning_rate:
        Per-tree shrinkage applied during accumulation.
    """

    def __init__(self, trees: Sequence[RegressionTree], base: float,
                 learning_rate: float) -> None:
        if not trees:
            raise ValueError("cannot compile an empty forest")
        self._base = float(base)
        self._learning_rate = float(learning_rate)
        n_trees = len(trees)
        max_nodes = max(tree.node_count for tree in trees)
        # Padded slots are self-leaves (feature -1, value 0); the
        # traversal never reaches them because every tree's reachable
        # nodes sit in its own prefix.
        self._feature = np.full((n_trees, max_nodes), -1, dtype=np.int64)
        self._threshold = np.zeros((n_trees, max_nodes), dtype=np.float64)
        self._left = np.zeros((n_trees, max_nodes), dtype=np.int64)
        self._right = np.zeros((n_trees, max_nodes), dtype=np.int64)
        self._value = np.zeros((n_trees, max_nodes), dtype=np.float64)
        for t, tree in enumerate(trees):
            n = tree.node_count
            self._feature[t, :n] = tree.feature
            self._threshold[t, :n] = tree.threshold
            self._left[t, :n] = tree.left
            self._right[t, :n] = tree.right
            self._value[t, :n] = tree.value
        self._max_depth = self._measure_depth()
        # Derived flat traversal tensors (module docstring): global node
        # ids, leaf self-loops with +inf thresholds, and the consecutive-
        # children invariant that turns branching into ``left + bool``.
        inner = self._feature >= 0
        if not np.array_equal(self._right[inner], self._left[inner] + 1):
            raise ValueError(
                "forest violates the consecutive-children invariant "
                "(right != left + 1); only grow_tree forests are packable")
        offsets = (np.arange(n_trees, dtype=np.int64) * max_nodes)[:, None]
        node_ids = np.arange(max_nodes, dtype=np.int64)[None, :]
        self._roots = offsets[:, 0].copy()
        self._flat_feature = np.where(inner, self._feature, 0).ravel()
        self._flat_threshold = np.where(
            inner, self._threshold, np.inf).ravel()
        self._flat_left = (
            np.where(inner, self._left, node_ids) + offsets).ravel()
        self._flat_value = self._value.ravel()

    @property
    def n_trees(self) -> int:
        """Number of packed trees."""
        return self._feature.shape[0]

    @property
    def max_nodes(self) -> int:
        """Node-tensor width (the largest tree's node count)."""
        return self._feature.shape[1]

    @property
    def max_depth(self) -> int:
        """Deepest inner-node level across all trees (leaf-only = 0)."""
        return self._max_depth

    @property
    def base(self) -> float:
        """The ensemble's constant term."""
        return self._base

    @property
    def learning_rate(self) -> float:
        """Per-tree shrinkage factor."""
        return self._learning_rate

    def _measure_depth(self) -> int:
        """Longest root-to-leaf path, measured level-synchronously."""
        frontier = np.zeros(self.n_trees, dtype=np.int64)
        tree_ids = np.arange(self.n_trees)
        depth = 0
        # Every level visits each (tree, frontier-node) pair once; a
        # flat tree array cannot cycle, so max_nodes bounds the walk.
        for _ in range(self.max_nodes):
            inner = self._feature[tree_ids, frontier] >= 0
            if not inner.any():
                break
            depth += 1
            # Follow both children of every inner node.
            lefts = self._left[tree_ids[inner], frontier[inner]]
            rights = self._right[tree_ids[inner], frontier[inner]]
            tree_ids = np.concatenate([tree_ids[inner], tree_ids[inner]])
            frontier = np.concatenate([lefts, rights])
        return depth

    def leaf_values(self, features: np.ndarray) -> np.ndarray:
        """Per-tree leaf values, shape ``(n_trees, n_rows)``.

        This is the level-synchronous core: all (tree, row) cursors
        advance one split per iteration until every cursor rests on a
        leaf (exactly :attr:`max_depth` iterations; leaf cursors idle on
        their self-loop).  Inputs must be finite — the GB predict path
        guarantees this via ``check_matrix`` — because the leaf
        self-loop relies on ``finite >= +inf`` being ``False``.
        """
        X = np.asarray(features, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"feature matrix must be 2-d, got {X.shape}")
        n_rows = X.shape[0]
        flat_x = np.ascontiguousarray(X).ravel()
        row_offsets = (np.arange(n_rows, dtype=np.int64) *
                       X.shape[1])[None, :]
        node = np.broadcast_to(self._roots[:, None],
                               (self.n_trees, n_rows))
        for _ in range(self._max_depth):
            go_right = (flat_x[row_offsets + self._flat_feature[node]]
                        >= self._flat_threshold[node])
            node = self._flat_left[node] + go_right
        return self._flat_value[node]

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict a batch, bitwise-identical to the legacy tree loop.

        The per-tree accumulation stays a sequential vector loop on
        purpose: ``base + lr·v₀ + lr·v₁ + …`` must associate exactly
        like the legacy path, and ``n_trees`` vector adds are noise next
        to the traversal.
        """
        values = self.leaf_values(features)
        prediction = np.full(values.shape[1], self._base)
        for t in range(values.shape[0]):
            prediction += self._learning_rate * values[t]
        return prediction

    def memory_bytes(self) -> int:
        """Footprint of the packed node tensors (incl. traversal flats)."""
        return sum(arr.nbytes for arr in (
            self._feature, self._threshold, self._left, self._right,
            self._value, self._flat_feature, self._flat_threshold,
            self._flat_left, self._flat_value, self._roots,
        ))

    def __repr__(self) -> str:
        return (f"CompiledForest(n_trees={self.n_trees}, "
                f"max_nodes={self.max_nodes}, max_depth={self._max_depth})")
