"""Model interface and the log-space target transform.

Cardinalities span many orders of magnitude, and the q-error is a
*relative* metric, so every learned estimator in the paper regresses
``log(cardinality)`` rather than the raw count.
:class:`LogSpaceRegressor` wraps any raw :class:`Regressor` with that
transform and clamps predictions to ``>= 1`` (Section 5: "all estimates
are >= 1").
"""

from __future__ import annotations

import abc

import numpy as np

from repro import config

__all__ = ["Regressor", "LogSpaceRegressor", "check_matrix"]


def check_matrix(features: np.ndarray, targets: np.ndarray | None = None
                 ) -> tuple[np.ndarray, np.ndarray | None]:
    """Validate and normalise ``(X, y)`` shapes; returns float64 arrays."""
    X = np.asarray(features, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"feature matrix must be 2-d, got shape {X.shape}")
    if X.shape[0] == 0:
        raise ValueError("feature matrix must contain at least one sample")
    if not np.isfinite(X).all():
        raise ValueError("feature matrix contains NaN or infinity")
    if targets is None:
        return X, None
    y = np.asarray(targets, dtype=np.float64).reshape(-1)
    if y.shape[0] != X.shape[0]:
        raise ValueError(
            f"targets length {y.shape[0]} does not match samples {X.shape[0]}"
        )
    if not np.isfinite(y).all():
        raise ValueError("targets contain NaN or infinity")
    return X, y


class Regressor(abc.ABC):
    """A supervised regressor ``f: R^d -> R`` (the paper's Equation 3)."""

    @abc.abstractmethod
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "Regressor":
        """Train on a feature matrix ``(n, d)`` and targets ``(n,)``."""

    @abc.abstractmethod
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for a feature matrix ``(n, d)``."""

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Approximate in-memory footprint of the trained model.

        Used for the memory-consumption comparison of Section 5.7.
        """


class LogSpaceRegressor:
    """Wrap a raw regressor to train/predict cardinalities in log space."""

    def __init__(self, model: Regressor) -> None:
        self._model = model
        self._fitted = False

    @property
    def model(self) -> Regressor:
        """The wrapped raw regressor."""
        return self._model

    def fit(self, features: np.ndarray, cardinalities: np.ndarray
            ) -> "LogSpaceRegressor":
        """Train on raw cardinalities (transformed to ``log`` internally)."""
        X, y = check_matrix(features, cardinalities)
        if (y < 0).any():
            raise ValueError("cardinalities must be non-negative")
        self._model.fit(X, np.log(np.maximum(y, 1.0)))
        self._fitted = True
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict cardinalities (``exp`` of the model output, clamped >= 1)."""
        if not self._fitted:
            raise RuntimeError("model must be fitted before predicting")
        X, _ = check_matrix(features)
        log_pred = self._model.predict(X)
        # Guard the exponential against runaway extrapolation.
        log_pred = np.clip(log_pred, 0.0, 80.0)
        return np.maximum(np.exp(log_pred), config.MIN_ESTIMATE)

    def memory_bytes(self) -> int:
        """Footprint of the wrapped model."""
        return self._model.memory_bytes()
