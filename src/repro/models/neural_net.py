"""Feed-forward neural network (Section 2.2.1), pure numpy.

A multi-layer perceptron with ReLU activations trained with Adam on the
mean-squared error of the log-cardinality target — the architecture class
used by the local models of Woltmann et al. [32].  Inputs are
standardised internally; training uses mini-batches, an optional
validation split, and early stopping.
"""

from __future__ import annotations

import numpy as np

from repro import config, obs
from repro.models.base import Regressor, check_matrix

__all__ = ["NeuralNetRegressor"]


class _Standardizer:
    """Per-feature standardisation fitted on the training matrix."""

    def fit(self, X: np.ndarray) -> "_Standardizer":
        self.mean = X.mean(axis=0)
        std = X.std(axis=0)
        self.std = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        return (X - self.mean) / self.std


class NeuralNetRegressor(Regressor):
    """MLP regressor: ``input -> hidden... -> 1`` with ReLU and Adam."""

    def __init__(self, hidden_sizes: tuple[int, ...] = (256, 128),
                 epochs: int = 60, batch_size: int = 128,
                 learning_rate: float = 1e-3, l2: float = 1e-6,
                 early_stopping_rounds: int | None = 8,
                 validation_fraction: float = 0.1,
                 random_state: int = config.DEFAULT_SEED) -> None:
        if not hidden_sizes:
            raise ValueError("at least one hidden layer is required")
        if any(h < 1 for h in hidden_sizes):
            raise ValueError(f"hidden sizes must be positive, got {hidden_sizes}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.hidden_sizes = tuple(hidden_sizes)
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.l2 = l2
        self.early_stopping_rounds = early_stopping_rounds
        self.validation_fraction = validation_fraction
        self.random_state = random_state
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []
        self._scaler: _Standardizer | None = None

    # ------------------------------------------------------------------

    def _init_params(self, input_dim: int, rng: np.random.Generator) -> None:
        sizes = [input_dim, *self.hidden_sizes, 1]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            # He initialisation for ReLU layers.
            scale = np.sqrt(2.0 / fan_in)
            self._weights.append(rng.normal(0.0, scale, (fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

    def _forward(self, X: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Return output and the post-activation of every layer."""
        activations = [X]
        out = X
        last = len(self._weights) - 1
        for i, (W, b) in enumerate(zip(self._weights, self._biases)):
            out = out @ W + b
            if i != last:
                out = np.maximum(out, 0.0)
            activations.append(out)
        return out[:, 0], activations

    def _backward(self, activations: list[np.ndarray], error: np.ndarray
                  ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Gradients of the MSE loss w.r.t. weights and biases."""
        batch = activations[0].shape[0]
        grad_w = [np.empty(0)] * len(self._weights)
        grad_b = [np.empty(0)] * len(self._biases)
        # dL/d(output) for 0.5 * mean((pred - y)^2).
        delta = (error / batch)[:, None]
        for i in range(len(self._weights) - 1, -1, -1):
            grad_w[i] = activations[i].T @ delta + self.l2 * self._weights[i]
            grad_b[i] = delta.sum(axis=0)
            if i > 0:
                delta = delta @ self._weights[i].T
                delta *= activations[i] > 0.0  # ReLU derivative
        return grad_w, grad_b

    # ------------------------------------------------------------------

    @obs.trace("model.fit", model="NeuralNetRegressor")
    def fit(self, features: np.ndarray, targets: np.ndarray
            ) -> "NeuralNetRegressor":
        X, y = check_matrix(features, targets)
        rng = np.random.default_rng(self.random_state)
        self._scaler = _Standardizer().fit(X)
        X = self._scaler.transform(X)
        self._init_params(X.shape[1], rng)

        use_early_stop = (self.early_stopping_rounds is not None
                          and X.shape[0] >= 50)
        if use_early_stop:
            permutation = rng.permutation(X.shape[0])
            n_val = max(int(X.shape[0] * self.validation_fraction), 10)
            val_idx, train_idx = permutation[:n_val], permutation[n_val:]
        else:
            train_idx = np.arange(X.shape[0])
            val_idx = np.empty(0, dtype=np.int64)

        # Adam state.
        m_w = [np.zeros_like(W) for W in self._weights]
        v_w = [np.zeros_like(W) for W in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        best_val = np.inf
        best_params: tuple[list[np.ndarray], list[np.ndarray]] | None = None
        rounds_since_best = 0

        for epoch in range(self.epochs):
            with obs.span("model.train.epoch", model="NeuralNetRegressor",
                          epoch=epoch, metric="model.train.epoch_seconds"):
                order = rng.permutation(train_idx)
                for start in range(0, order.size, self.batch_size):
                    batch = order[start:start + self.batch_size]
                    if batch.size == 0:
                        continue
                    pred, activations = self._forward(X[batch])
                    grad_w, grad_b = self._backward(activations,
                                                    pred - y[batch])
                    step += 1
                    for i in range(len(self._weights)):
                        m_w[i] = beta1 * m_w[i] + (1 - beta1) * grad_w[i]
                        v_w[i] = beta2 * v_w[i] + (1 - beta2) * grad_w[i]**2
                        m_b[i] = beta1 * m_b[i] + (1 - beta1) * grad_b[i]
                        v_b[i] = beta2 * v_b[i] + (1 - beta2) * grad_b[i]**2
                        m_hat_w = m_w[i] / (1 - beta1**step)
                        v_hat_w = v_w[i] / (1 - beta2**step)
                        m_hat_b = m_b[i] / (1 - beta1**step)
                        v_hat_b = v_b[i] / (1 - beta2**step)
                        self._weights[i] -= (self.learning_rate * m_hat_w
                                             / (np.sqrt(v_hat_w) + eps))
                        self._biases[i] -= (self.learning_rate * m_hat_b
                                            / (np.sqrt(v_hat_b) + eps))

                if use_early_stop:
                    val_pred, _ = self._forward(X[val_idx])
                    val_loss = float(np.mean((val_pred - y[val_idx]) ** 2))
                    if val_loss < best_val - 1e-9:
                        best_val = val_loss
                        best_params = ([W.copy() for W in self._weights],
                                       [b.copy() for b in self._biases])
                        rounds_since_best = 0
                    else:
                        rounds_since_best += 1
                        if rounds_since_best >= self.early_stopping_rounds:
                            break

        if best_params is not None:
            self._weights, self._biases = best_params
        return self

    @obs.trace("model.predict", model="NeuralNetRegressor")
    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._scaler is None:
            raise RuntimeError("model must be fitted before predicting")
        X, _ = check_matrix(features)
        pred, _ = self._forward(self._scaler.transform(X))
        return pred

    def memory_bytes(self) -> int:
        """Footprint of weights, biases, and the scaler."""
        params = sum(W.nbytes for W in self._weights)
        params += sum(b.nbytes for b in self._biases)
        if self._scaler is not None:
            params += self._scaler.mean.nbytes + self._scaler.std.nbytes
        return params

    # ------------------------------------------------------------------
    # Persistence (see repro.persistence)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable state: JSON-safe ``config`` + numpy ``arrays``."""
        if self._scaler is None:
            raise RuntimeError("cannot serialise an unfitted model")
        arrays = {"scaler_mean": self._scaler.mean,
                  "scaler_std": self._scaler.std}
        for i, (W, b) in enumerate(zip(self._weights, self._biases)):
            arrays[f"w{i}"] = W
            arrays[f"b{i}"] = b
        config = {
            "kind": "neural_net",
            "n_layers": len(self._weights),
            "hidden_sizes": list(self.hidden_sizes),
        }
        return {"config": config, "arrays": arrays}

    @classmethod
    def from_state(cls, state: dict) -> "NeuralNetRegressor":
        """Rebuild a predict-only model from :meth:`state_dict` output."""
        config = state["config"]
        if config.get("kind") != "neural_net":
            raise ValueError(f"not a neural-net state: {config}")
        model = cls(hidden_sizes=tuple(config["hidden_sizes"]))
        arrays = state["arrays"]
        model._weights = [np.asarray(arrays[f"w{i}"])
                          for i in range(config["n_layers"])]
        model._biases = [np.asarray(arrays[f"b{i}"])
                         for i in range(config["n_layers"])]
        scaler = _Standardizer()
        scaler.mean = np.asarray(arrays["scaler_mean"])
        scaler.std = np.asarray(arrays["scaler_std"])
        model._scaler = scaler
        return model
