"""Query-feedback monitoring and model reconstruction (Section 5.5.2).

The paper's recommendation for data drift: "we simply recommend to
reconstruct models after data drift occurred.  For deciding when to
reconstruct, we recommend to follow Larson et al. [15], who propose to
base the decision on query feedback."

:class:`QueryFeedbackMonitor` implements that decision rule: it keeps a
sliding window of observed q-errors (estimate vs. the true cardinality
the executor later produced) and reports drift when a chosen quantile of
the window exceeds a threshold.  :class:`SelfTuningEstimator` wires the
monitor to any estimator plus a rebuild callback, so the model is
reconstructed automatically once feedback shows it has gone stale.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from repro import obs
from repro.estimators.base import CardinalityEstimator
from repro.metrics import qerror
from repro.sql.ast import Query

__all__ = ["QueryFeedbackMonitor", "SelfTuningEstimator"]


class QueryFeedbackMonitor:
    """Sliding-window q-error monitor with a quantile trigger.

    Parameters
    ----------
    window:
        Number of most recent feedback observations considered.
    threshold:
        q-error level that counts as "model is stale".
    quantile:
        Fraction of the window compared against the threshold; the
        default 0.9 triggers when the 90th-percentile error in the
        window exceeds ``threshold``.
    min_observations:
        No decision before this many observations have arrived (avoids
        triggering on the first unlucky query).
    """

    def __init__(self, window: int = 200, threshold: float = 10.0,
                 quantile: float = 0.9, min_observations: int = 30) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if threshold < 1.0:
            raise ValueError(f"threshold must be >= 1 (a q-error), got {threshold}")
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {quantile}")
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        self._window: deque[float] = deque(maxlen=window)
        self._threshold = threshold
        self._quantile = quantile
        self._min_observations = min(min_observations, window)
        self._total_observations = 0

    @property
    def observation_count(self) -> int:
        """Total feedback observations recorded (including evicted ones)."""
        return self._total_observations

    def record(self, true_cardinality: float, estimate: float) -> None:
        """Record one executed query's feedback.

        Production feedback may include empty results, which the strict
        q-error rejects; the monitor treats those as cardinality 1 (the
        paper's floor) rather than refusing the observation.

        Every observation is mirrored into the global windowed
        ``feedback.qerror.window`` monitor, so sliding-window feedback
        percentiles show up on the Prometheus exposition alongside the
        monitor's own drift decision.
        """
        observed = float(qerror(max(float(true_cardinality), 1.0),
                                max(float(estimate), 1.0)))
        self._window.append(observed)
        self._total_observations += 1
        obs.get_windows().histogram(
            "feedback.qerror.window").observe(observed)

    def current_quantile_error(self) -> float:
        """The monitored quantile of the current window (1.0 if empty)."""
        if not self._window:
            return 1.0
        return float(np.quantile(np.asarray(self._window), self._quantile))

    def drift_detected(self) -> bool:
        """True when enough feedback has arrived and errors are too high."""
        if len(self._window) < self._min_observations:
            return False
        return self.current_quantile_error() > self._threshold

    def reset(self) -> None:
        """Clear the window (called after a model rebuild)."""
        self._window.clear()


class SelfTuningEstimator(CardinalityEstimator):
    """An estimator that rebuilds itself when query feedback degrades.

    ``builder`` is a zero-argument callable returning a *fitted*
    estimator over the current data — typically a closure that re-labels
    a workload against the live table and retrains (featurization and
    training are cheap, Section 5.5.2; obtaining labels is the costly
    part and is the caller's policy decision).
    """

    def __init__(self, builder: Callable[[], CardinalityEstimator],
                 monitor: QueryFeedbackMonitor | None = None,
                 name: str = "self-tuning") -> None:
        self._builder = builder
        self._monitor = monitor if monitor is not None else QueryFeedbackMonitor()
        self._estimator = builder()
        self._rebuild_count = 0
        self.name = name

    @property
    def current_estimator(self) -> CardinalityEstimator:
        """The currently active underlying estimator."""
        return self._estimator

    @property
    def rebuild_count(self) -> int:
        """How many times the model has been reconstructed."""
        return self._rebuild_count

    @property
    def monitor(self) -> QueryFeedbackMonitor:
        """The feedback monitor."""
        return self._monitor

    def estimate(self, query: Query) -> float:
        return self._estimator.estimate(query)

    def estimate_batch(self, queries) -> np.ndarray:
        return self._estimator.estimate_batch(queries)

    def feedback(self, query: Query, true_cardinality: float) -> bool:
        """Report an executed query's true cardinality.

        Re-estimates the query, records the q-error, and rebuilds the
        model if the monitor detects drift.  Returns True iff a rebuild
        happened.
        """
        estimate = self._estimator.estimate(query)
        self._monitor.record(true_cardinality, estimate)
        if not self._monitor.drift_detected():
            return False
        self._estimator = self._builder()
        self._rebuild_count += 1
        self._monitor.reset()
        return True
