"""Synthetic IMDb-like star schema for the JOB-light join experiments.

The paper's join experiments run JOB-light — 70 hand-written queries over
six IMDb tables — plus 231k generated training queries.  The IMDb snapshot
is not available offline, so this module generates a scaled-down schema
with the same shape:

* ``title`` is the hub table (every JOB-light query joins through it).
* Five fact/dimension tables hang off ``title`` via foreign keys:
  ``movie_companies``, ``movie_info``, ``movie_info_idx``,
  ``movie_keyword``, and ``cast_info``.
* Foreign-key fan-outs are Zipf-skewed (blockbusters have many cast
  entries; obscure titles have none), so join-size estimates under the
  independence assumption go wrong in the way the paper's Table 1/2
  exploit.

All categorical attributes (company type, info type, role, …) are
dictionary-encoded to small integer domains, matching how the original
MSCN featurizes IMDb columns.
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.data.schema import ForeignKey, Schema
from repro.data.table import Table

__all__ = ["generate_imdb", "JOBLIGHT_TABLES", "PREDICATE_ATTRIBUTES"]

#: The six tables used by JOB-light, hub first.
JOBLIGHT_TABLES = (
    "title",
    "movie_companies",
    "movie_info",
    "movie_info_idx",
    "movie_keyword",
    "cast_info",
)

#: Attributes JOB-light-style queries filter on.  The real JOB-light
#: predicates target low-domain categorical and year attributes
#: (kind_id, production_year, company_type_id, info_type_id, role_id);
#: the huge-domain identifier-like columns (person_id, keyword_id,
#: company_id) exist for realistic fan-out skew but are never filtered.
PREDICATE_ATTRIBUTES: dict[str, tuple[str, ...]] = {
    "title": ("kind_id", "production_year", "episode_nr"),
    "movie_companies": ("company_type_id",),
    "movie_info": ("info_type_id",),
    "movie_info_idx": ("info_type_id",),
    "movie_keyword": ("keyword_id",),
    "cast_info": ("role_id",),
}


def _fanout_counts(rng: np.random.Generator, rows: int, mean: float,
                   zero_fraction: float, year_shift: np.ndarray) -> np.ndarray:
    """Draw a skewed per-title fan-out with a point mass at zero.

    Zipf-like tails model the real IMDb: a few titles have hundreds of
    cast entries while ``zero_fraction`` of titles have none at all.
    Fan-outs grow with ``year_shift`` (recent titles have far more
    metadata rows) — exactly the predicate/fan-out correlation that makes
    independence-assumption join estimates fail on the real IMDb.
    """
    counts = rng.zipf(1.9, rows).astype(np.float64)
    counts = np.minimum(counts, 200.0)
    counts *= 0.15 + 4.0 * year_shift**3
    scale = mean / max(counts.mean(), 1e-9)
    counts = np.maximum(np.rint(counts * scale), 1).astype(np.int64)
    zero_p = np.clip(zero_fraction * (1.6 - 1.2 * year_shift), 0.0, 0.98)
    counts[rng.random(rows) < zero_p] = 0
    return counts


def _child_table(name: str, rng: np.random.Generator, title_ids: np.ndarray,
                 counts: np.ndarray, attributes: dict[str, tuple[int, float]],
                 title_year: np.ndarray) -> Table:
    """Materialise a child table with ``counts[i]`` rows per title ``i``.

    ``attributes`` maps attribute name to ``(domain_size, zipf_exponent)``;
    each is generated Zipf-skewed over ``1..domain_size`` and mildly
    correlated with the parent title's production year so cross-table
    correlation exists (local models must learn it).
    """
    movie_id = np.repeat(title_ids, counts)
    total = int(movie_id.size)
    if total == 0:
        raise ValueError(f"child table {name!r} would be empty")
    columns: dict[str, np.ndarray] = {
        "id": np.arange(1, total + 1, dtype=np.float64),
        "movie_id": movie_id.astype(np.float64),
    }
    parent_year = np.repeat(title_year, counts)
    year_shift = ((parent_year - parent_year.min())
                  / max(parent_year.max() - parent_year.min(), 1.0))
    for attr, (domain, exponent) in attributes.items():
        ranks = np.arange(1, domain + 1, dtype=np.float64)
        weights = 1.0 / ranks**exponent
        weights /= weights.sum()
        base = rng.choice(domain, size=total, p=weights)
        # Shift most rows by the parent's year band so child attributes
        # correlate strongly with the join partner: the value regions a
        # predicate selects then sit on titles with specific fan-outs,
        # which breaks the independence assumption (the effect the paper's
        # join experiments rely on).
        shifted = (base + (year_shift * domain * 0.8).astype(np.int64)) % domain
        take_shifted = rng.random(total) < 0.9
        values = np.where(take_shifted, shifted, base) + 1
        columns[attr] = values.astype(np.float64)
    return Table(name, columns)


def generate_imdb(title_rows: int = config.IMDB_TITLE_ROWS,
                  seed: int = config.DEFAULT_SEED) -> Schema:
    """Generate the synthetic IMDb star schema.

    Deterministic in ``seed``.  ``title_rows`` scales the whole schema;
    child tables hold roughly 1.5–3x as many rows as ``title``.
    """
    if title_rows < 100:
        raise ValueError(f"title table needs at least 100 rows, got {title_rows}")
    rng = np.random.default_rng(seed)

    title_ids = np.arange(1, title_rows + 1, dtype=np.int64)
    production_year = np.clip(
        np.rint(2010.0 - rng.gamma(2.0, 14.0, title_rows)), 1880.0, 2023.0
    )
    kind_id = rng.choice(7, size=title_rows,
                         p=[0.45, 0.25, 0.12, 0.08, 0.05, 0.03, 0.02]) + 1
    # Episode counts: mostly zero (movies), some large (series).
    episode_nr = np.where(
        rng.random(title_rows) < 0.85, 0.0,
        np.rint(rng.gamma(1.5, 40.0, title_rows))
    )
    title = Table("title", {
        "id": title_ids.astype(np.float64),
        "kind_id": kind_id.astype(np.float64),
        "production_year": production_year,
        "episode_nr": episode_nr,
    })

    children = {
        "movie_companies": dict(
            mean=1.6, zero_fraction=0.25,
            attributes={"company_id": (400, 1.3), "company_type_id": (4, 0.8)},
        ),
        "movie_info": dict(
            mean=3.0, zero_fraction=0.10,
            attributes={"info_type_id": (110, 1.1)},
        ),
        "movie_info_idx": dict(
            mean=1.2, zero_fraction=0.45,
            attributes={"info_type_id": (110, 1.4)},
        ),
        "movie_keyword": dict(
            mean=2.4, zero_fraction=0.30,
            attributes={"keyword_id": (120, 1.2)},
        ),
        "cast_info": dict(
            mean=4.0, zero_fraction=0.08,
            attributes={"person_id": (5000, 1.15), "role_id": (11, 0.9)},
        ),
    }

    year_shift = ((production_year - production_year.min())
                  / max(production_year.max() - production_year.min(), 1.0))
    tables = [title]
    foreign_keys = []
    for name, spec in children.items():
        counts = _fanout_counts(rng, title_rows, spec["mean"],
                                spec["zero_fraction"], year_shift)
        tables.append(_child_table(name, rng, title_ids, counts,
                                   spec["attributes"], production_year))
        foreign_keys.append(ForeignKey(name, "movie_id", "title", "id"))

    schema = Schema(tables, foreign_keys)
    schema.check_referential_integrity()
    return schema
