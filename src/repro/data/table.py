"""A named collection of equally-long columns."""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.data.column import Column

__all__ = ["Table"]


class Table:
    """An immutable, numpy-backed relational table.

    A table owns an ordered mapping from column names to
    :class:`~repro.data.column.Column` objects, all of the same length.
    It is the unit the featurizers are fitted against (they need the
    attribute list and per-attribute statistics) and the unit the executor
    scans to produce true cardinalities.
    """

    def __init__(self, name: str, columns: Mapping[str, np.ndarray] | Iterable[Column]) -> None:
        if not name:
            raise ValueError("table name must be non-empty")
        self._name = name
        if isinstance(columns, Mapping):
            cols = [Column(col_name, values) for col_name, values in columns.items()]
        else:
            cols = list(columns)
        if not cols:
            raise ValueError(f"table {name!r} must have at least one column")
        lengths = {len(col) for col in cols}
        if len(lengths) != 1:
            raise ValueError(
                f"table {name!r} has columns of differing lengths: {sorted(lengths)}"
            )
        names = [col.name for col in cols]
        if len(set(names)) != len(names):
            raise ValueError(f"table {name!r} has duplicate column names")
        self._columns: dict[str, Column] = {col.name: col for col in cols}
        self._row_count = lengths.pop()

    @property
    def name(self) -> str:
        """The table's name."""
        return self._name

    @property
    def row_count(self) -> int:
        """Number of rows."""
        return self._row_count

    @property
    def column_names(self) -> list[str]:
        """Column names in definition order."""
        return list(self._columns)

    @property
    def columns(self) -> list[Column]:
        """Columns in definition order."""
        return list(self._columns.values())

    def column(self, name: str) -> Column:
        """Return the column called ``name``.

        Raises ``KeyError`` with the available names listed; a missing
        column is always a query/schema mismatch the caller must see.
        """
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"table {self._name!r} has no column {name!r}; "
                f"available: {self.column_names}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def subset(self, mask: np.ndarray, name: str | None = None) -> "Table":
        """Return a new table containing only rows where ``mask`` is true.

        Used by the sampling estimator (to materialise Bernoulli samples)
        and by tests.  ``mask`` must be a boolean array with one entry per
        row and must select at least one row (tables may not be empty).
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._row_count,):
            raise ValueError(
                f"mask shape {mask.shape} does not match row count {self._row_count}"
            )
        if not mask.any():
            raise ValueError("subset would produce an empty table")
        return Table(
            name or self._name,
            {col.name: col.values[mask] for col in self.columns},
        )

    def __repr__(self) -> str:
        return f"Table({self._name!r}, rows={self._row_count}, cols={len(self._columns)})"
