"""Synthetic stand-in for the UCI forest covertype dataset.

The paper's single-table experiments run on *forest cover type* (UCI,
581 012 rows, 55 attributes).  The original file is not available offline,
so this module generates a dataset that reproduces the structural
properties the QFT evaluation exercises:

* **55 numeric attributes** with heterogeneous domain sizes: ten
  terrain-style ordinal attributes with large domains (elevation, aspect,
  slope, distances, hillshades), four binary wilderness-area indicators,
  forty binary soil-type indicators, and one small-domain cover-type label.
* **Inter-attribute correlation** — elevation drives slope, hillshade,
  distances and the cover type, so the independence-assumption baseline is
  genuinely wrong (this is what Figure 4 demonstrates).
* **Skew** — soil types follow a Zipf-like distribution and hillshades are
  beta-shaped, so uniformity assumptions also fail.

Column names follow the paper's query examples (``A1`` .. ``A55``): the
example query in Section 5 references attributes as ``A7``, ``A8``.
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.data.table import Table

__all__ = ["generate_forest", "FOREST_TABLE_NAME"]

FOREST_TABLE_NAME = "forest"

#: Number of terrain-style ordinal attributes (matches covertype's 10).
_NUM_TERRAIN = 10
#: Number of binary wilderness-area indicators.
_NUM_WILDERNESS = 4
#: Number of binary soil-type indicators.
_NUM_SOIL = 40


def generate_forest(rows: int = config.FOREST_ROWS,
                    seed: int = config.DEFAULT_SEED) -> Table:
    """Generate the synthetic forest covertype table.

    The result is deterministic in ``seed`` and has exactly
    ``config.FOREST_ATTRIBUTES`` (55) columns named ``A1`` .. ``A55``.
    """
    if rows < 100:
        raise ValueError(f"forest table needs at least 100 rows, got {rows}")
    rng = np.random.default_rng(seed)
    columns: dict[str, np.ndarray] = {}

    # --- Terrain block (A1..A10), correlated through a latent elevation. ---
    # Latent elevation in meters, bimodal like the real data's two study
    # areas.
    area = rng.random(rows) < 0.6
    elevation = np.where(
        area,
        rng.normal(2950.0, 180.0, rows),
        rng.normal(2450.0, 220.0, rows),
    )
    elevation = np.clip(elevation, 1850.0, 3850.0)

    aspect = rng.integers(0, 361, rows).astype(np.float64)

    # Slope correlates negatively with elevation plateaus.
    slope = np.clip(
        rng.normal(14.0, 7.0, rows) + (3100.0 - elevation) / 150.0, 0.0, 60.0
    )

    horiz_hydro = np.clip(
        rng.gamma(2.0, 110.0, rows) + (elevation - 2300.0) / 12.0, 0.0, 1400.0
    )
    vert_hydro = np.clip(
        rng.normal(45.0, 60.0, rows) + slope * 1.5 - 30.0, -170.0, 600.0
    )
    horiz_road = np.clip(
        rng.gamma(2.2, 700.0, rows) + (elevation - 2400.0) / 2.0, 0.0, 7100.0
    )

    # Hillshades are beta-shaped and depend on aspect/slope.
    aspect_rad = np.deg2rad(aspect)
    shade_9am = np.clip(
        220.0 + 30.0 * np.cos(aspect_rad) - slope * 1.2
        + rng.normal(0.0, 12.0, rows), 0.0, 254.0
    )
    shade_noon = np.clip(
        223.0 + 20.0 * np.sin(aspect_rad + 0.4) - slope * 0.5
        + rng.normal(0.0, 10.0, rows), 0.0, 254.0
    )
    shade_3pm = np.clip(
        140.0 - 28.0 * np.cos(aspect_rad) + slope * 0.3
        + rng.normal(0.0, 16.0, rows), 0.0, 254.0
    )
    horiz_fire = np.clip(
        rng.gamma(2.0, 600.0, rows) + (3200.0 - elevation) / 4.0, 0.0, 7200.0
    )

    terrain = [elevation, aspect, slope, horiz_hydro, vert_hydro,
               horiz_road, shade_9am, shade_noon, shade_3pm, horiz_fire]
    for i, values in enumerate(terrain, start=1):
        columns[f"A{i}"] = np.rint(values)

    # --- Wilderness indicators (A11..A14): exactly one set per row, with
    # membership driven by elevation so indicators correlate with terrain.
    wilderness_probs = np.stack([
        np.clip((elevation - 2500.0) / 1500.0, 0.01, 0.97),
        np.full(rows, 0.10),
        np.clip((3000.0 - elevation) / 1800.0, 0.01, 0.97),
        np.full(rows, 0.05),
    ], axis=1)
    wilderness_probs /= wilderness_probs.sum(axis=1, keepdims=True)
    cumulative = np.cumsum(wilderness_probs, axis=1)
    draws = rng.random(rows)[:, None]
    wilderness_choice = (draws > cumulative).sum(axis=1)
    for j in range(_NUM_WILDERNESS):
        columns[f"A{_NUM_TERRAIN + 1 + j}"] = (
            (wilderness_choice == j).astype(np.float64)
        )

    # --- Soil indicators (A15..A54): exactly one set per row, Zipf-skewed,
    # with the soil family shifted by elevation band.
    ranks = np.arange(1, _NUM_SOIL + 1, dtype=np.float64)
    zipf = 1.0 / ranks**1.1
    zipf /= zipf.sum()
    band = np.clip(((elevation - 1850.0) / 2000.0 * 8.0).astype(np.int64), 0, 7)
    soil_choice = np.empty(rows, dtype=np.int64)
    for b in range(8):
        in_band = band == b
        count = int(in_band.sum())
        if count == 0:
            continue
        shifted = np.roll(zipf, b * 5)
        soil_choice[in_band] = rng.choice(_NUM_SOIL, size=count, p=shifted)
    soil_base = _NUM_TERRAIN + _NUM_WILDERNESS
    for j in range(_NUM_SOIL):
        columns[f"A{soil_base + 1 + j}"] = (soil_choice == j).astype(np.float64)

    # --- Cover type (A55): 7 classes, elevation-dependent like the real
    # spruce/lodgepole split.
    class_center = np.array([3100.0, 2900.0, 2500.0, 2250.0, 2700.0, 2400.0, 3300.0])
    class_scale = np.array([180.0, 220.0, 150.0, 120.0, 200.0, 160.0, 170.0])
    logits = -((elevation[:, None] - class_center) / class_scale) ** 2
    logits += rng.gumbel(0.0, 1.0, size=(rows, 7))
    cover = logits.argmax(axis=1) + 1
    columns[f"A{config.FOREST_ATTRIBUTES}"] = cover.astype(np.float64)

    table = Table(FOREST_TABLE_NAME, columns)
    if len(table.column_names) != config.FOREST_ATTRIBUTES:
        raise AssertionError(
            f"forest generator produced {len(table.column_names)} columns, "
            f"expected {config.FOREST_ATTRIBUTES}"
        )
    return table
