"""Data substrate: columnar tables, statistics, schemas, and generators.

The paper runs against PostgreSQL tables holding the UCI forest covertype
data and an IMDb snapshot.  Neither a DBMS nor the original datasets are
available offline, so this subpackage provides the substrate from scratch:

* :mod:`repro.data.column` / :mod:`repro.data.table` — a numpy-backed
  columnar storage engine.
* :mod:`repro.data.stats` — per-column statistics (min/max, distinct
  counts, equi-depth histograms, most-common values) used both by the
  featurizers and by the Postgres-style baseline estimator.
* :mod:`repro.data.schema` — multi-table schemas with key/foreign-key
  relationships.
* :mod:`repro.data.forest` — deterministic synthetic stand-in for the UCI
  forest covertype dataset (55 attributes, correlated, skewed).
* :mod:`repro.data.imdb` — synthetic IMDb-like star schema for the
  JOB-light join experiments.
"""

from repro.data.column import Column
from repro.data.schema import ForeignKey, Schema
from repro.data.stats import ColumnStats
from repro.data.table import Table

__all__ = ["Column", "ColumnStats", "Table", "Schema", "ForeignKey"]
