"""Multi-table schemas with key/foreign-key relationships.

The paper's join experiments (JOB-light, Section 5) assume tables are
"joined following their key/foreign-key relationships" (Section 2.1.2).
A :class:`Schema` therefore records, besides the tables, the directed
foreign-key edges along which joins may happen, and can enumerate the
connected sub-schemata for which local models are built.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable

import networkx as nx
import numpy as np

from repro.data.table import Table

__all__ = ["ForeignKey", "Schema"]


@dataclass(frozen=True)
class ForeignKey:
    """A directed foreign-key edge ``child.child_column -> parent.parent_column``."""

    child_table: str
    child_column: str
    parent_table: str
    parent_column: str

    def __str__(self) -> str:
        return (f"{self.child_table}.{self.child_column} -> "
                f"{self.parent_table}.{self.parent_column}")


class Schema:
    """A set of tables plus the foreign-key edges connecting them."""

    def __init__(self, tables: Iterable[Table],
                 foreign_keys: Iterable[ForeignKey] = ()) -> None:
        self._tables: dict[str, Table] = {}
        for table in tables:
            if table.name in self._tables:
                raise ValueError(f"duplicate table name {table.name!r}")
            self._tables[table.name] = table
        self._foreign_keys: list[ForeignKey] = []
        for fk in foreign_keys:
            self._validate_fk(fk)
            self._foreign_keys.append(fk)

    def _validate_fk(self, fk: ForeignKey) -> None:
        for table_name, column_name in (
            (fk.child_table, fk.child_column),
            (fk.parent_table, fk.parent_column),
        ):
            if table_name not in self._tables:
                raise KeyError(f"foreign key {fk} references unknown table "
                               f"{table_name!r}")
            if column_name not in self._tables[table_name]:
                raise KeyError(f"foreign key {fk} references unknown column "
                               f"{table_name}.{column_name}")

    @property
    def table_names(self) -> list[str]:
        """Table names in definition order."""
        return list(self._tables)

    @property
    def tables(self) -> list[Table]:
        """Tables in definition order."""
        return list(self._tables.values())

    @property
    def foreign_keys(self) -> list[ForeignKey]:
        """All foreign-key edges."""
        return list(self._foreign_keys)

    def table(self, name: str) -> Table:
        """Return the table called ``name`` (``KeyError`` if unknown)."""
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"schema has no table {name!r}; "
                           f"available: {self.table_names}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def join_graph(self) -> nx.Graph:
        """Return the undirected join graph (tables as nodes, FKs as edges)."""
        graph = nx.Graph()
        graph.add_nodes_from(self._tables)
        for fk in self._foreign_keys:
            graph.add_edge(fk.child_table, fk.parent_table, fk=fk)
        return graph

    def foreign_keys_between(self, tables: Iterable[str]) -> list[ForeignKey]:
        """Return the FK edges whose both endpoints lie within ``tables``."""
        table_set = set(tables)
        return [fk for fk in self._foreign_keys
                if fk.child_table in table_set and fk.parent_table in table_set]

    def is_connected_subschema(self, tables: Iterable[str]) -> bool:
        """True iff ``tables`` form a connected subgraph of the join graph.

        Local models are only built for connected sub-schemata; a cross
        product of unrelated tables is not a meaningful estimation target.
        """
        table_list = list(tables)
        if not table_list:
            return False
        subgraph = self.join_graph().subgraph(table_list)
        return (subgraph.number_of_nodes() == len(set(table_list))
                and nx.is_connected(subgraph))

    def connected_subschemata(self, max_tables: int | None = None) -> list[tuple[str, ...]]:
        """Enumerate all connected sub-schemata, smallest first.

        The paper notes there are ``2^n - 1`` sub-schemata in general
        (Section 2.1.2); with FK-connectivity as a filter the number drops
        sharply.  ``max_tables`` caps the enumeration size.
        """
        names = self.table_names
        limit = max_tables if max_tables is not None else len(names)
        result: list[tuple[str, ...]] = []
        for size in range(1, limit + 1):
            for combo in combinations(names, size):
                if self.is_connected_subschema(combo):
                    result.append(combo)
        return result

    def check_referential_integrity(self) -> None:
        """Raise ``ValueError`` if any FK value lacks a matching parent key.

        Run by the data generators' tests to guarantee that join results
        are well-defined.
        """
        for fk in self._foreign_keys:
            child = self.table(fk.child_table).column(fk.child_column).values
            parent = self.table(fk.parent_table).column(fk.parent_column).values
            missing = ~np.isin(child, parent)
            if missing.any():
                raise ValueError(
                    f"foreign key {fk} violated for {int(missing.sum())} rows"
                )

    def __repr__(self) -> str:
        return (f"Schema(tables={self.table_names}, "
                f"foreign_keys={len(self._foreign_keys)})")
