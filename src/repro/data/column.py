"""A single named, typed column of values backed by a numpy array."""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

import numpy as np

from repro.data.stats import ColumnStats, build_stats

__all__ = ["Column"]


class Column:
    """One column of a :class:`~repro.data.table.Table`.

    Values are stored as a read-only numpy array.  Statistics are computed
    lazily on first access and cached; they never change because columns
    are immutable (the paper assumes fixed data, Equation 2 — data drift is
    handled by rebuilding tables and models, Section 5.5.2).

    String columns are supported through **dictionary encoding** (the
    state of the art the paper's Section 6 starts from): values are
    integer codes into a *sorted* dictionary, so string equality and —
    because the dictionary is sorted — prefix predicates reduce to code
    ranges.  Build one with :meth:`from_strings`.
    """

    def __init__(self, name: str, values: np.ndarray,
                 dictionary: Sequence[str] | None = None) -> None:
        if not name:
            raise ValueError("column name must be non-empty")
        data = np.asarray(values)
        if data.ndim != 1:
            raise ValueError(
                f"column {name!r} requires a 1-d array, got shape {data.shape}"
            )
        if data.size == 0:
            raise ValueError(f"column {name!r} must contain at least one value")
        if not np.issubdtype(data.dtype, np.number):
            raise TypeError(
                f"column {name!r} must be numeric, got dtype {data.dtype}; "
                "encode categorical data as integers (dictionary encoding)"
            )
        data = data.astype(np.float64, copy=True)
        data.setflags(write=False)
        self._name = name
        self._values = data
        self._stats: ColumnStats | None = None
        self._dictionary: tuple[str, ...] | None = None
        if dictionary is not None:
            entries = tuple(dictionary)
            if not entries:
                raise ValueError(f"column {name!r}: dictionary is empty")
            if list(entries) != sorted(entries):
                raise ValueError(
                    f"column {name!r}: dictionary must be sorted (prefix "
                    "predicates rely on contiguous code ranges)"
                )
            if len(set(entries)) != len(entries):
                raise ValueError(f"column {name!r}: dictionary has duplicates")
            codes = data.astype(np.int64)
            if not np.array_equal(codes, data):
                raise ValueError(
                    f"column {name!r}: dictionary-encoded values must be "
                    "integer codes"
                )
            if codes.min() < 0 or codes.max() >= len(entries):
                raise ValueError(
                    f"column {name!r}: codes out of dictionary range "
                    f"[0, {len(entries)})"
                )
            self._dictionary = entries

    @classmethod
    def from_strings(cls, name: str, values: Sequence[str]) -> "Column":
        """Dictionary-encode a string sequence into a column.

        The dictionary is the sorted distinct values; stored codes are
        their indices, so code order equals lexicographic order.
        """
        entries = sorted(set(values))
        index = {value: code for code, value in enumerate(entries)}
        codes = np.asarray([index[v] for v in values], dtype=np.float64)
        return cls(name, codes, dictionary=entries)

    @property
    def name(self) -> str:
        """The column's name."""
        return self._name

    @property
    def dictionary(self) -> tuple[str, ...] | None:
        """The sorted string dictionary, or None for numeric columns."""
        return self._dictionary

    def encode(self, value: str) -> int:
        """Dictionary code of a string value (``KeyError`` if absent)."""
        if self._dictionary is None:
            raise TypeError(f"column {self._name!r} is not dictionary-encoded")
        idx = bisect_left(self._dictionary, value)
        if idx >= len(self._dictionary) or self._dictionary[idx] != value:
            raise KeyError(f"value {value!r} not in the dictionary of "
                           f"column {self._name!r}")
        return idx

    def prefix_code_range(self, prefix: str) -> tuple[int, int]:
        """Half-open code range ``[lo, hi)`` of values starting with ``prefix``.

        The dictionary is sorted, so prefixed values are contiguous; an
        empty range means no value matches.
        """
        if self._dictionary is None:
            raise TypeError(f"column {self._name!r} is not dictionary-encoded")
        if not prefix:
            return (0, len(self._dictionary))
        lo = bisect_left(self._dictionary, prefix)
        upper = prefix[:-1] + chr(ord(prefix[-1]) + 1)
        hi = bisect_left(self._dictionary, upper)
        return (lo, hi)

    @property
    def values(self) -> np.ndarray:
        """The read-only value array (float64)."""
        return self._values

    @property
    def stats(self) -> ColumnStats:
        """Cached column statistics (computed on first access)."""
        if self._stats is None:
            self._stats = build_stats(self._values)
        return self._stats

    def __len__(self) -> int:
        return int(self._values.size)

    def __repr__(self) -> str:
        return f"Column({self._name!r}, n={len(self)})"
