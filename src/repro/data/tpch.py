"""TPC-H-style ``Orders`` table (the paper's Definition 3.3 example).

The paper illustrates mixed queries on the TPC-H ``Orders`` table:

    SELECT count(*) FROM Orders WHERE
    (o_orderdate >= '1994-01' AND o_orderdate <= '1994-12'
       AND o_orderdate <> '1994-07-04'
     OR o_orderdate >= '1996-01' AND o_orderdate <= '1996-12'
       AND o_orderdate <> '1996-07-04')
    AND (o_orderstatus = 'P' OR o_orderstatus = 'F')
    AND (o_totalprice > 1000 AND o_totalprice < 2000);

This generator produces an ``orders`` table with the columns that query
touches, dictionary-encoded per the package's numeric-column contract:

* ``o_orderdate`` — integer ``YYYYMMDD`` dates over 1992-01-01 to
  1998-08-02 (the TPC-H date range), denser in recent years.
* ``o_orderstatus`` — ``F`` -> 0, ``O`` -> 1, ``P`` -> 2 (sorted codes),
  correlated with the date exactly like TPC-H: old orders are finished
  (``F``), recent ones open (``O``), a thin band in between pending.
* ``o_totalprice`` — gamma-shaped positive prices.
* ``o_orderpriority`` — 1..5, mildly skewed.
* ``o_shippriority`` — constant 0, as in TPC-H (a degenerate domain the
  featurizers must tolerate).
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.data.table import Table

__all__ = ["generate_orders", "ORDERSTATUS_CODES"]

#: Dictionary encoding of o_orderstatus (sorted alphabetically).
ORDERSTATUS_CODES = {"F": 0, "O": 1, "P": 2}

_START = np.datetime64("1992-01-01")
_END = np.datetime64("1998-08-02")


def _to_yyyymmdd(dates: np.ndarray) -> np.ndarray:
    """Convert datetime64[D] to integer YYYYMMDD."""
    years = dates.astype("datetime64[Y]").astype(int) + 1970
    months = dates.astype("datetime64[M]").astype(int) % 12 + 1
    month_start = dates.astype("datetime64[M]").astype("datetime64[D]")
    days = (dates - month_start).astype(int) + 1
    return years * 10_000 + months * 100 + days


def generate_orders(rows: int = 30_000,
                    seed: int = config.DEFAULT_SEED) -> Table:
    """Generate the TPC-H-style orders table (deterministic in ``seed``)."""
    if rows < 100:
        raise ValueError(f"orders table needs at least 100 rows, got {rows}")
    rng = np.random.default_rng(seed)

    total_days = int((_END - _START).astype(int))
    # Order volume grows over time (recent dates denser).
    offsets = np.floor(
        total_days * rng.beta(1.6, 1.0, rows)
    ).astype(int)
    dates = _START + offsets
    order_date = _to_yyyymmdd(dates).astype(np.float64)

    # Status follows age: anything shipped long ago is F, recent orders
    # are O, and a slice in between is still P(ending).
    age_fraction = offsets / total_days
    draw = rng.random(rows)
    status = np.where(
        age_fraction > 0.9, ORDERSTATUS_CODES["O"],
        np.where(draw < 0.07, ORDERSTATUS_CODES["P"],
                 ORDERSTATUS_CODES["F"]),
    ).astype(np.float64)

    total_price = np.round(rng.gamma(2.2, 820.0, rows) + 850.0, 2)
    priority = (rng.choice(5, size=rows,
                           p=[0.2, 0.2, 0.2, 0.2, 0.2]) + 1).astype(np.float64)
    ship_priority = np.zeros(rows)

    return Table("orders", {
        "o_orderdate": order_date,
        "o_orderstatus": status,
        "o_totalprice": total_price,
        "o_orderpriority": priority,
        "o_shippriority": ship_priority,
    })
