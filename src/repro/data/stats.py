"""Per-column statistics.

Column statistics serve two distinct consumers in this reproduction:

1. The **featurizers** (Section 3 of the paper) need each attribute's
   ``min``/``max`` to normalise literals and to map values to domain
   partitions.
2. The **Postgres-style baseline estimator** (Section 7, "independence
   assumption") needs equi-depth histograms and most-common-value lists to
   compute per-predicate selectivities, mirroring what ``ANALYZE`` collects.

Statistics are computed once per column and cached on the owning
:class:`~repro.data.column.Column`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ColumnStats", "TableStats", "build_stats",
           "HISTOGRAM_BUCKETS", "MCV_ENTRIES"]

#: Number of equi-depth histogram buckets collected per column (Postgres
#: defaults to 100 via ``default_statistics_target``).
HISTOGRAM_BUCKETS = 100

#: Number of most-common values tracked per column.
MCV_ENTRIES = 20


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics of one column, as a frozen value object."""

    #: Number of rows (including duplicates).
    row_count: int
    #: Minimum value in the column.
    min_value: float
    #: Maximum value in the column.
    max_value: float
    #: Number of distinct values.
    distinct_count: int
    #: Whether every stored value is integral (drives the paper's
    #: "integer attributes" handling of strict comparisons, Section 3.1).
    is_integral: bool
    #: Equi-depth histogram bucket boundaries, length ``buckets + 1``.
    histogram_bounds: tuple[float, ...] = field(default=())
    #: Most common values, most frequent first.
    mcv_values: tuple[float, ...] = field(default=())
    #: Frequencies (fractions of rows) of ``mcv_values``.
    mcv_fractions: tuple[float, ...] = field(default=())

    @property
    def domain_size(self) -> float:
        """Size of the value domain ``max - min + 1`` (paper's Algorithm 1).

        The ``+ 1`` matches the paper's index formula, which treats domains
        as inclusive integer ranges.  For non-integral columns this is an
        approximation, exactly as in the paper.
        """
        return self.max_value - self.min_value + 1.0

    def normalize(self, value: float) -> float:
        """Map ``value`` to ``[0, 1]`` via min-max normalisation.

        This is the literal encoding used by Singular Predicate Encoding
        and Range Predicate Encoding.  Values outside the observed domain
        are clamped, so out-of-range literals stay representable.
        """
        span = self.max_value - self.min_value
        if span <= 0:
            return 0.0
        scaled = (value - self.min_value) / span
        return float(min(max(scaled, 0.0), 1.0))


@dataclass(frozen=True)
class TableStats:
    """A statistics snapshot of a table: everything a QFT needs.

    Featurizers consume only per-column statistics, never row data, so a
    ``TableStats`` is sufficient to reconstruct a fitted featurizer — the
    basis of estimator persistence (:mod:`repro.persistence`).
    """

    #: The table's name.
    name: str
    #: Column name -> statistics, in column order.
    columns: dict[str, ColumnStats]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("table name must be non-empty")
        if not self.columns:
            raise ValueError("a table snapshot needs at least one column")

    @classmethod
    def from_table(cls, table) -> "TableStats":
        """Snapshot a :class:`~repro.data.table.Table`."""
        return cls(name=table.name,
                   columns={c.name: c.stats for c in table.columns})

    @property
    def column_names(self) -> list[str]:
        """Column names in definition order."""
        return list(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self.columns

    def column_stats(self, name: str) -> ColumnStats:
        """Statistics of one column (``KeyError`` if unknown)."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(
                f"snapshot of table {self.name!r} has no column {name!r}; "
                f"available: {self.column_names}"
            ) from None


def build_stats(values: np.ndarray) -> ColumnStats:
    """Compute :class:`ColumnStats` for a numeric numpy array.

    Raises ``ValueError`` on empty input — a table column always has rows
    in this reproduction, and statistics of an empty column would poison
    every downstream selectivity computation silently.
    """
    if values.size == 0:
        raise ValueError("cannot build statistics for an empty column")
    data = np.asarray(values, dtype=np.float64)
    unique, counts = np.unique(data, return_counts=True)

    is_integral = bool(np.all(np.equal(np.mod(data, 1), 0)))

    # Equi-depth histogram over the full data, like Postgres' ANALYZE.
    buckets = min(HISTOGRAM_BUCKETS, unique.size)
    quantiles = np.linspace(0.0, 1.0, buckets + 1)
    bounds = np.quantile(data, quantiles)

    order = np.argsort(counts)[::-1]
    top = order[:MCV_ENTRIES]
    mcv_values = unique[top]
    mcv_fractions = counts[top] / data.size

    return ColumnStats(
        row_count=int(data.size),
        min_value=float(data.min()),
        max_value=float(data.max()),
        distinct_count=int(unique.size),
        is_integral=is_integral,
        histogram_bounds=tuple(float(b) for b in bounds),
        mcv_values=tuple(float(v) for v in mcv_values),
        mcv_fractions=tuple(float(f) for f in mcv_fractions),
    )
