"""CSV import/export for tables and schemas.

The reproduction generates its datasets, but a downstream user will want
to point the estimators at their own data.  These loaders move
:class:`~repro.data.table.Table`/:class:`~repro.data.schema.Schema`
objects to and from plain CSV files — in particular, the original UCI
covertype file (``covtype.data``: 55 comma-separated integers per line,
no header) loads directly via :func:`load_covertype`, replacing the
synthetic forest table with the real one when available.

Only numeric data is supported (categoricals must be dictionary-encoded
first, matching the package's :class:`Column` contract).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro import config
from repro.data.schema import ForeignKey, Schema
from repro.data.table import Table

__all__ = ["save_table_csv", "load_table_csv", "load_covertype",
           "save_schema", "load_schema"]


def save_table_csv(table: Table, path: str | Path) -> None:
    """Write a table to CSV with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    matrix = np.column_stack([c.values for c in table.columns])
    header = ",".join(table.column_names)
    np.savetxt(path, matrix, delimiter=",", header=header, comments="",
               fmt="%.12g")


def load_table_csv(path: str | Path, name: str | None = None) -> Table:
    """Load a headered CSV into a table (name defaults to the file stem)."""
    path = Path(path)
    with open(path, "r", encoding="utf-8") as handle:
        header = handle.readline().strip()
    if not header:
        raise ValueError(f"{path} is empty")
    columns = [c.strip() for c in header.split(",")]
    data = np.loadtxt(path, delimiter=",", skiprows=1, ndmin=2)
    if data.shape[1] != len(columns):
        raise ValueError(
            f"{path}: header names {len(columns)} columns but rows have "
            f"{data.shape[1]} fields"
        )
    return Table(name or path.stem,
                 {col: data[:, i] for i, col in enumerate(columns)})


def load_covertype(path: str | Path,
                   max_rows: int | None = None) -> Table:
    """Load the original UCI covertype file as the forest table.

    ``covtype.data`` has no header: 54 feature columns plus the cover
    type, one row per line.  Columns are named ``A1`` .. ``A55`` exactly
    like the synthetic generator, so the two are drop-in replacements
    for each other.
    """
    data = np.loadtxt(Path(path), delimiter=",", max_rows=max_rows, ndmin=2)
    if data.shape[1] != config.FOREST_ATTRIBUTES:
        raise ValueError(
            f"covertype file must have {config.FOREST_ATTRIBUTES} columns, "
            f"got {data.shape[1]}"
        )
    return Table("forest", {f"A{i + 1}": data[:, i]
                            for i in range(data.shape[1])})


def save_schema(schema: Schema, directory: str | Path) -> None:
    """Write a schema as one CSV per table plus ``schema.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for table in schema.tables:
        save_table_csv(table, directory / f"{table.name}.csv")
    meta = {
        "tables": schema.table_names,
        "foreign_keys": [
            {"child_table": fk.child_table, "child_column": fk.child_column,
             "parent_table": fk.parent_table, "parent_column": fk.parent_column}
            for fk in schema.foreign_keys
        ],
    }
    (directory / "schema.json").write_text(json.dumps(meta, indent=2),
                                           encoding="utf-8")


def load_schema(directory: str | Path) -> Schema:
    """Load a schema saved by :func:`save_schema`."""
    directory = Path(directory)
    meta_path = directory / "schema.json"
    if not meta_path.exists():
        raise FileNotFoundError(f"{meta_path} not found")
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    tables = [load_table_csv(directory / f"{name}.csv", name)
              for name in meta["tables"]]
    foreign_keys = [ForeignKey(**fk) for fk in meta["foreign_keys"]]
    return Schema(tables, foreign_keys)
