"""Query representation.

The central types are:

* :class:`SimplePredicate` — ``attribute op literal`` with
  ``op in {=, <>, <, <=, >, >=}`` (the paper's "simple predicate").
* :class:`And` / :class:`Or` — boolean combinations of predicates.
* :class:`Query` — a ``SELECT count(*)`` query: tables, equi-join
  predicates, a selection expression, and an optional GROUP BY list.

The AST supports arbitrary nesting.  The paper's *Limited Disjunction
Encoding* however only handles **mixed queries** (Definition 3.3): a
conjunction of per-attribute *compound predicates*, where each compound
predicate combines arbitrarily many simple predicates **on one attribute**
with AND/OR.  :func:`Query.compound_form` normalises a query into that
shape — a mapping ``attribute -> disjunction of conjunctions`` — and
raises :class:`UnsupportedQueryError` when the query falls outside the
class, which is exactly the contract the paper's Algorithm 2 assumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Mapping, Union

__all__ = [
    "Op",
    "SimplePredicate",
    "StringPredicate",
    "LikePredicate",
    "LEAF_TYPES",
    "iter_predicates",
    "And",
    "Or",
    "BoolExpr",
    "JoinPredicate",
    "Query",
    "CompoundForm",
    "UnsupportedQueryError",
    "attributes_of",
    "is_conjunctive",
    "iter_simple_predicates",
    "to_compound_form",
]


class UnsupportedQueryError(ValueError):
    """Raised when a query falls outside the class a component supports."""


class Op(enum.Enum):
    """Comparison operators of simple predicates."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    @classmethod
    def from_symbol(cls, symbol: str) -> "Op":
        """Parse an operator symbol, accepting ``!=`` as alias for ``<>``."""
        if symbol == "!=":
            return cls.NE
        for op in cls:
            if op.value == symbol:
                return op
        raise ValueError(f"unknown comparison operator {symbol!r}")

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class SimplePredicate:
    """A comparison of one attribute against one literal."""

    attribute: str
    op: Op
    value: float

    def __post_init__(self) -> None:
        if not self.attribute:
            raise ValueError("predicate attribute must be non-empty")
        if not isinstance(self.op, Op):
            raise TypeError(f"op must be an Op, got {type(self.op).__name__}")

    def to_sql(self) -> str:
        """Render as a SQL fragment, e.g. ``A7 >= 160``."""
        value = self.value
        literal = str(int(value)) if float(value).is_integer() else repr(value)
        return f"{self.attribute} {self.op} {literal}"

    def __str__(self) -> str:
        return self.to_sql()


@dataclass(frozen=True)
class StringPredicate:
    """Equality/inequality of a dictionary-encoded string column.

    String leaves must be *desugared* into numeric code predicates
    (:func:`repro.sql.strings.desugar_strings`) before featurization;
    the executor desugars on the fly since it holds the dictionaries.
    """

    attribute: str
    op: Op
    value: str

    def __post_init__(self) -> None:
        if not self.attribute:
            raise ValueError("predicate attribute must be non-empty")
        if self.op not in (Op.EQ, Op.NE):
            raise ValueError(
                f"string predicates support = and <> only, got {self.op}"
            )
        if "'" in self.value:
            raise ValueError("string literals may not contain quotes")

    def to_sql(self) -> str:
        """Render as a SQL fragment, e.g. ``name = 'spam'``."""
        return f"{self.attribute} {self.op} '{self.value}'"

    def __str__(self) -> str:
        return self.to_sql()


@dataclass(frozen=True)
class LikePredicate:
    """A prefix pattern predicate ``attribute LIKE 'prefix%'``.

    Only prefix patterns are supported — exactly the class the paper's
    Section 6 shows Universal Conjunction Encoding handles naturally
    (the sorted dictionary makes a prefix a contiguous code range).
    """

    attribute: str
    prefix: str

    def __post_init__(self) -> None:
        if not self.attribute:
            raise ValueError("predicate attribute must be non-empty")
        if "%" in self.prefix or "'" in self.prefix:
            raise ValueError(
                "LikePredicate stores the bare prefix (no wildcards/quotes); "
                f"got {self.prefix!r}"
            )

    def to_sql(self) -> str:
        """Render as a SQL fragment, e.g. ``name LIKE 'spa%'``."""
        return f"{self.attribute} LIKE '{self.prefix}%'"

    def __str__(self) -> str:
        return self.to_sql()


@dataclass(frozen=True)
class And:
    """Conjunction of boolean expressions (flattened, at least one child)."""

    children: tuple["BoolExpr", ...]

    def __init__(self, children) -> None:
        flattened: list[BoolExpr] = []
        for child in children:
            if isinstance(child, And):
                flattened.extend(child.children)
            else:
                flattened.append(child)
        if not flattened:
            raise ValueError("And requires at least one child")
        object.__setattr__(self, "children", tuple(flattened))

    def to_sql(self) -> str:
        """Render as SQL, parenthesising nested disjunctions."""
        parts = [f"({c.to_sql()})" if isinstance(c, Or) else c.to_sql()
                 for c in self.children]
        return " AND ".join(parts)

    def __str__(self) -> str:
        return self.to_sql()


@dataclass(frozen=True)
class Or:
    """Disjunction of boolean expressions (flattened, at least one child)."""

    children: tuple["BoolExpr", ...]

    def __init__(self, children) -> None:
        flattened: list[BoolExpr] = []
        for child in children:
            if isinstance(child, Or):
                flattened.extend(child.children)
            else:
                flattened.append(child)
        if not flattened:
            raise ValueError("Or requires at least one child")
        object.__setattr__(self, "children", tuple(flattened))

    def to_sql(self) -> str:
        """Render as SQL (OR binds loosest, so no parentheses needed)."""
        return " OR ".join(c.to_sql() for c in self.children)

    def __str__(self) -> str:
        return self.to_sql()


BoolExpr = Union[SimplePredicate, "StringPredicate", "LikePredicate", And, Or]


#: Leaf node types a boolean expression may contain.
LEAF_TYPES = (SimplePredicate, StringPredicate, LikePredicate)


def iter_predicates(expr: BoolExpr) -> Iterator:
    """Yield every leaf predicate (simple, string, or LIKE) in ``expr``."""
    if isinstance(expr, LEAF_TYPES):
        yield expr
    elif isinstance(expr, (And, Or)):
        for child in expr.children:
            yield from iter_predicates(child)
    else:
        raise TypeError(f"not a boolean expression: {type(expr).__name__}")


def iter_simple_predicates(expr: BoolExpr) -> Iterator[SimplePredicate]:
    """Yield every simple (numeric) predicate in ``expr`` (left-to-right).

    String leaves are rejected: numeric consumers (featurizers, the
    compound-form decomposition used by Algorithm 2) require queries to
    be desugared first via :func:`repro.sql.strings.desugar_strings`.
    """
    for pred in iter_predicates(expr):
        if not isinstance(pred, SimplePredicate):
            raise UnsupportedQueryError(
                f"string predicate {pred.to_sql()!r} must be desugared to "
                "numeric code predicates first (repro.sql.strings."
                "desugar_strings)"
            )
        yield pred


def attributes_of(expr: BoolExpr) -> tuple[str, ...]:
    """Distinct attributes referenced by ``expr``, in first-seen order."""
    seen: dict[str, None] = {}
    for pred in iter_predicates(expr):
        seen.setdefault(pred.attribute, None)
    return tuple(seen)


def is_conjunctive(expr: BoolExpr) -> bool:
    """True iff ``expr`` contains no disjunction."""
    if isinstance(expr, LEAF_TYPES):
        return True
    if isinstance(expr, Or):
        return False
    return all(is_conjunctive(child) for child in expr.children)


#: A compound predicate in disjunctive form: a disjunction (outer tuple) of
#: conjunctions (inner tuples) of simple predicates, all on one attribute.
CompoundForm = Mapping[str, tuple[tuple[SimplePredicate, ...], ...]]


def _single_attribute_dnf(expr: BoolExpr) -> tuple[tuple[SimplePredicate, ...], ...]:
    """Convert a single-attribute boolean tree into DNF.

    Compound predicates in real workloads are tiny (the paper's generator
    uses at most three OR branches), so the exponential worst case of DNF
    conversion is irrelevant here.
    """
    if isinstance(expr, LEAF_TYPES):
        return ((expr,),)
    if isinstance(expr, Or):
        branches: list[tuple[SimplePredicate, ...]] = []
        for child in expr.children:
            branches.extend(_single_attribute_dnf(child))
        return tuple(branches)
    # And: cross product of children's DNFs.
    result: list[tuple[SimplePredicate, ...]] = [()]
    for child in expr.children:
        child_dnf = _single_attribute_dnf(child)
        result = [existing + branch for existing in result for branch in child_dnf]
    return tuple(result)


def to_compound_form(expr: BoolExpr) -> dict[str, tuple[tuple[SimplePredicate, ...], ...]]:
    """Normalise ``expr`` into the paper's mixed-query form (Def. 3.3).

    Returns a mapping from attribute to its compound predicate in
    disjunctive form.  Raises :class:`UnsupportedQueryError` when the
    expression is not a conjunction of single-attribute compounds — e.g.
    when a disjunction spans two different attributes.
    """
    top_level = expr.children if isinstance(expr, And) else (expr,)
    compounds: dict[str, list[BoolExpr]] = {}
    for item in top_level:
        attrs = attributes_of(item)
        if len(attrs) != 1:
            raise UnsupportedQueryError(
                "not a mixed query (Definition 3.3): the term "
                f"{item.to_sql()!r} references attributes {list(attrs)}; "
                "compound predicates must reference exactly one attribute"
            )
        compounds.setdefault(attrs[0], []).append(item)
    return {
        attr: _single_attribute_dnf(And(items) if len(items) > 1 else items[0])
        for attr, items in compounds.items()
    }


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join predicate ``left_table.left_column = right_table.right_column``."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str

    def to_sql(self) -> str:
        """Render as a SQL equi-join fragment."""
        return (f"{self.left_table}.{self.left_column} = "
                f"{self.right_table}.{self.right_column}")

    def __str__(self) -> str:
        return self.to_sql()


@dataclass(frozen=True)
class Query:
    """A ``SELECT count(*)`` query.

    ``tables`` lists the referenced tables; ``joins`` are the equi-join
    predicates among them; ``where`` is the selection expression (``None``
    means no selection); ``group_by`` lists grouping attributes (used only
    by the Section 6 GROUP BY featurization extension).
    """

    tables: tuple[str, ...]
    joins: tuple[JoinPredicate, ...] = ()
    where: BoolExpr | None = None
    group_by: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.tables:
            raise ValueError("a query must reference at least one table")
        if len(set(self.tables)) != len(self.tables):
            raise ValueError(f"duplicate tables in query: {self.tables}")
        referenced = set(self.tables)
        for join in self.joins:
            for table in (join.left_table, join.right_table):
                if table not in referenced:
                    raise ValueError(
                        f"join {join} references table {table!r} missing "
                        f"from the FROM list {self.tables}"
                    )

    @classmethod
    def single_table(cls, table: str, where: BoolExpr | None = None,
                     group_by: tuple[str, ...] = ()) -> "Query":
        """Convenience constructor for single-table queries."""
        return cls(tables=(table,), where=where, group_by=group_by)

    @property
    def predicates(self) -> tuple[SimplePredicate, ...]:
        """All simple predicates in the WHERE clause."""
        if self.where is None:
            return ()
        return tuple(iter_simple_predicates(self.where))

    @property
    def attributes(self) -> tuple[str, ...]:
        """Distinct attributes with at least one predicate."""
        if self.where is None:
            return ()
        return attributes_of(self.where)

    def is_conjunctive(self) -> bool:
        """True iff the WHERE clause contains no OR."""
        return self.where is None or is_conjunctive(self.where)

    def compound_form(self) -> dict[str, tuple[tuple[SimplePredicate, ...], ...]]:
        """Normalise the WHERE clause per Definition 3.3 (see module docs)."""
        if self.where is None:
            return {}
        return to_compound_form(self.where)

    def to_sql(self) -> str:
        """Render the query as SQL text (parseable by :mod:`repro.sql.parser`)."""
        sql = f"SELECT count(*) FROM {', '.join(self.tables)}"
        clauses = [join.to_sql() for join in self.joins]
        if self.where is not None:
            where_sql = self.where.to_sql()
            if clauses and isinstance(self.where, Or):
                where_sql = f"({where_sql})"
            clauses.append(where_sql)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        if self.group_by:
            sql += " GROUP BY " + ", ".join(self.group_by)
        return sql

    def __str__(self) -> str:
        return self.to_sql()
