"""A counting executor: computes exact ``count(*)`` results.

This is the substrate that produces the *true* cardinalities used as
training labels and as ground truth in the evaluation (the paper uses
PostgreSQL for this).  Two paths exist:

* **Single-table queries** — evaluate the selection expression to a
  boolean mask over the table and count.
* **Join queries** — the join graph must be acyclic (JOB-light joins are a
  star around ``title``).  The count is computed by message passing over
  the join tree: every leaf sends its per-join-key count of qualifying
  rows upward, inner nodes multiply incoming messages into their row
  weights, and the root sums.  This yields the exact size of the join
  result without materialising it.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.data.schema import Schema
from repro.data.table import Table
from repro.sql.ast import (
    And,
    BoolExpr,
    LikePredicate,
    Op,
    Or,
    Query,
    SimplePredicate,
    StringPredicate,
    UnsupportedQueryError,
    iter_predicates,
)

__all__ = ["selection_mask", "cardinality", "group_count", "per_table_selections"]


def _resolve_column(table: Table, attribute: str) -> np.ndarray:
    """Resolve ``attribute`` (possibly ``table.column``) within ``table``."""
    return _resolve_column_object(table, attribute).values


def _resolve_column_object(table: Table, attribute: str):
    name = attribute
    prefix, dot, rest = attribute.partition(".")
    if dot:
        if prefix != table.name:
            raise KeyError(
                f"attribute {attribute!r} does not belong to table {table.name!r}"
            )
        name = rest
    return table.column(name)


_OP_FUNCS = {
    Op.EQ: np.equal,
    Op.NE: np.not_equal,
    Op.LT: np.less,
    Op.LE: np.less_equal,
    Op.GT: np.greater,
    Op.GE: np.greater_equal,
}


def selection_mask(expr: BoolExpr | None, table: Table) -> np.ndarray:
    """Evaluate a selection expression to a boolean mask over ``table``.

    ``None`` selects every row.
    """
    if expr is None:
        return np.ones(table.row_count, dtype=bool)
    if isinstance(expr, SimplePredicate):
        column = _resolve_column(table, expr.attribute)
        return _OP_FUNCS[expr.op](column, expr.value)
    if isinstance(expr, (StringPredicate, LikePredicate)):
        # The executor holds the dictionaries, so string predicates are
        # desugared on the fly (featurizers require an explicit
        # repro.sql.strings.desugar_strings pass instead).
        from repro.sql.strings import desugar_expr

        return selection_mask(desugar_expr(expr, table), table)
    if isinstance(expr, And):
        mask = selection_mask(expr.children[0], table)
        for child in expr.children[1:]:
            mask &= selection_mask(child, table)
        return mask
    if isinstance(expr, Or):
        mask = selection_mask(expr.children[0], table)
        for child in expr.children[1:]:
            mask |= selection_mask(child, table)
        return mask
    raise TypeError(f"not a boolean expression: {type(expr).__name__}")


def per_table_selections(query: Query, schema: Schema) -> dict[str, BoolExpr | None]:
    """Split the WHERE clause into per-table selection expressions.

    For join queries every top-level term must reference columns of a
    single table (which holds for all paper workloads).  A term that mixes
    tables would require a theta-join and is rejected.
    """
    selections: dict[str, list[BoolExpr]] = {t: [] for t in query.tables}
    if query.where is not None:
        terms = (query.where.children if isinstance(query.where, And)
                 else (query.where,))
        for term in terms:
            tables = {_owning_table(pred.attribute, query, schema)
                      for pred in _iter_preds(term)}
            if len(tables) != 1:
                raise UnsupportedQueryError(
                    f"selection term {term.to_sql()!r} spans tables {tables}; "
                    "only per-table selections are supported"
                )
            selections[tables.pop()].append(term)
    return {
        table: (And(terms) if len(terms) > 1 else terms[0]) if terms else None
        for table, terms in selections.items()
    }


def _iter_preds(expr: BoolExpr):
    yield from iter_predicates(expr)


def _owning_table(attribute: str, query: Query, schema: Schema) -> str:
    """Determine which of the query's tables owns ``attribute``."""
    prefix, dot, rest = attribute.partition(".")
    if dot:
        if prefix not in query.tables:
            raise KeyError(f"attribute {attribute!r} references a table "
                           f"outside the query's FROM list {query.tables}")
        return prefix
    owners = [t for t in query.tables if attribute in schema.table(t)]
    if len(owners) != 1:
        raise KeyError(
            f"attribute {attribute!r} is ambiguous or unknown among "
            f"tables {query.tables} (owners: {owners}); qualify it"
        )
    return owners[0]


def cardinality(query: Query, data: Table | Schema) -> int:
    """Exact ``count(*)`` of ``query`` over ``data``.

    ``data`` is a single :class:`Table` for single-table queries or a
    :class:`Schema` for join queries.
    """
    if isinstance(data, Table):
        if len(query.tables) != 1:
            raise UnsupportedQueryError(
                f"query joins {query.tables} but only a single table was given"
            )
        return int(selection_mask(query.where, data).sum())
    return _join_cardinality(query, data)


def _join_cardinality(query: Query, schema: Schema) -> int:
    """Count the join result size via message passing on the join tree."""
    if len(query.tables) == 1:
        table = schema.table(query.tables[0])
        return int(selection_mask(query.where, table).sum())

    graph = nx.Graph()
    graph.add_nodes_from(query.tables)
    for join in query.joins:
        graph.add_edge(join.left_table, join.right_table, join=join)
    if (len(query.joins) != len(query.tables) - 1
            or graph.number_of_edges() != len(query.tables) - 1
            or not nx.is_connected(graph)):
        raise UnsupportedQueryError(
            f"join graph over {query.tables} must be a connected tree "
            f"({graph.number_of_edges()} joins given)"
        )

    selections = per_table_selections(query, schema)

    # Per-table qualifying weights: weight[i] == how many join tuples the
    # i-th row contributes from the already-processed subtree below it.
    weights: dict[str, np.ndarray] = {}
    for table_name in query.tables:
        table = schema.table(table_name)
        mask = selection_mask(selections[table_name], table)
        weights[table_name] = mask.astype(np.float64)

    root = query.tables[0]
    # Process children bottom-up (post-order over the tree rooted at root).
    order = list(nx.dfs_postorder_nodes(graph, source=root))
    parent = {child: par for par, child in nx.bfs_edges(graph, source=root)}
    for node in order:
        if node == root:
            continue
        par = parent[node]
        join = graph.edges[node, par]["join"]
        if join.left_table == node:
            child_col, parent_col = join.left_column, join.right_column
        else:
            child_col, parent_col = join.right_column, join.left_column
        child_keys = schema.table(node).column(child_col).values
        parent_keys = schema.table(par).column(parent_col).values
        # Sum child weights per distinct key, then gather for parent rows.
        unique_keys, inverse = np.unique(child_keys, return_inverse=True)
        sums = np.bincount(inverse, weights=weights[node],
                           minlength=unique_keys.size)
        positions = np.searchsorted(unique_keys, parent_keys)
        positions = np.clip(positions, 0, unique_keys.size - 1)
        matched = unique_keys[positions] == parent_keys
        message = np.where(matched, sums[positions], 0.0)
        weights[par] = weights[par] * message

    return int(round(weights[root].sum()))


def group_count(query: Query, table: Table) -> int:
    """Number of groups a GROUP BY query produces on a single table.

    Supports the Section 6 extension experiments: counts the distinct
    combinations of the grouping attributes among qualifying rows.
    """
    if not query.group_by:
        raise ValueError("query has no GROUP BY clause")
    mask = selection_mask(query.where, table)
    if not mask.any():
        return 0
    grouped = np.stack(
        [_resolve_column(table, attr)[mask] for attr in query.group_by], axis=1
    )
    return int(np.unique(grouped, axis=0).shape[0])
