"""A recursive-descent parser for ``SELECT count(*)`` queries.

Grammar (case-insensitive keywords)::

    query      := SELECT COUNT '(' '*' ')' FROM table_list
                  [WHERE or_expr] [GROUP BY column_list]
    table_list := identifier (',' identifier)*
    or_expr    := and_expr (OR and_expr)*
    and_expr   := term (AND term)*
    term       := '(' or_expr ')' | comparison
    comparison := identifier op operand
                | identifier LIKE string
    op         := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='
    operand    := identifier | number | string

A comparison between two identifiers is an equi-join predicate; join
predicates may only appear in the top-level conjunction (like the paper's
queries).  String literals are single-quoted and allowed with ``=``/``<>``
and ``LIKE 'prefix%'`` (dictionary-encoded columns, Section 6); numeric
comparisons cover everything else.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.sql.ast import (
    And,
    BoolExpr,
    JoinPredicate,
    LikePredicate,
    Op,
    Or,
    Query,
    SimplePredicate,
    StringPredicate,
    UnsupportedQueryError,
)

__all__ = ["parse_query", "parse_where", "SqlSyntaxError"]


class SqlSyntaxError(ValueError):
    """Raised for malformed SQL input."""


_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<number>-?\d+(?:\.\d+)?)          # numeric literal
      | (?P<string>'[^']*')                  # single-quoted string literal
      | (?P<ident>[A-Za-z_][\w.]*)           # identifier (possibly qualified)
      | (?P<op><=|>=|<>|!=|=|<|>)            # comparison operator
      | (?P<punct>[(),*])                    # punctuation
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "count", "from", "where", "group", "by", "and", "or",
             "like"}


@dataclass(frozen=True)
class _Token:
    kind: str  # 'number' | 'ident' | 'keyword' | 'op' | 'punct'
    text: str


def _tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            if sql[pos:].strip() == ";":
                break
            if sql[pos].isspace():
                pos += 1
                continue
            raise SqlSyntaxError(f"unexpected character {sql[pos]!r} at offset {pos}")
        pos = match.end()
        kind = match.lastgroup
        text = match.group(kind)
        if kind == "ident" and text.lower() in _KEYWORDS:
            tokens.append(_Token("keyword", text.lower()))
        else:
            tokens.append(_Token(kind, text))
    return tokens


class _Parser:
    """Token-stream cursor with the grammar's productions as methods."""

    def __init__(self, tokens: list[_Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SqlSyntaxError("unexpected end of input")
        self._index += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            expected = text if text is not None else kind
            raise SqlSyntaxError(f"expected {expected!r}, got {token.text!r}")
        return token

    def _accept(self, kind: str, text: str | None = None) -> bool:
        token = self._peek()
        if token is not None and token.kind == kind and (
                text is None or token.text == text):
            self._index += 1
            return True
        return False

    # --- productions -----------------------------------------------------

    def query(self) -> Query:
        self._expect("keyword", "select")
        self._expect("keyword", "count")
        self._expect("punct", "(")
        self._expect("punct", "*")
        self._expect("punct", ")")
        self._expect("keyword", "from")
        tables = [self._expect("ident").text]
        while self._accept("punct", ","):
            tables.append(self._expect("ident").text)

        where: BoolExpr | None = None
        joins: list[JoinPredicate] = []
        if self._accept("keyword", "where"):
            expr = self.or_expr()
            where, joins = _split_joins(expr)

        group_by: list[str] = []
        if self._accept("keyword", "group"):
            self._expect("keyword", "by")
            group_by.append(self._expect("ident").text)
            while self._accept("punct", ","):
                group_by.append(self._expect("ident").text)

        if self._peek() is not None:
            raise SqlSyntaxError(f"trailing input at {self._peek().text!r}")
        return Query(tables=tuple(tables), joins=tuple(joins),
                     where=where, group_by=tuple(group_by))

    def or_expr(self) -> BoolExpr:
        children = [self.and_expr()]
        while self._accept("keyword", "or"):
            children.append(self.and_expr())
        return children[0] if len(children) == 1 else Or(children)

    def and_expr(self) -> BoolExpr:
        children = [self.term()]
        while self._accept("keyword", "and"):
            children.append(self.term())
        return children[0] if len(children) == 1 else And(children)

    def term(self) -> BoolExpr:
        if self._accept("punct", "("):
            expr = self.or_expr()
            self._expect("punct", ")")
            return expr
        return self.comparison()

    def comparison(self) -> BoolExpr:
        left = self._next()
        if left.kind != "ident":
            raise SqlSyntaxError(f"expected attribute, got {left.text!r}")
        if self._accept("keyword", "like"):
            pattern_token = self._next()
            if pattern_token.kind != "string":
                raise SqlSyntaxError(
                    f"LIKE expects a quoted pattern, got {pattern_token.text!r}"
                )
            return _like_predicate(left.text, pattern_token.text[1:-1])
        op_token = self._expect("op")
        right = self._next()
        op = Op.from_symbol(op_token.text)
        if right.kind == "number":
            return SimplePredicate(left.text, op, float(right.text))
        if right.kind == "string":
            if op not in (Op.EQ, Op.NE):
                raise SqlSyntaxError(
                    f"string literals support = and <> only, got "
                    f"{op_token.text!r}"
                )
            return StringPredicate(left.text, op, right.text[1:-1])
        if right.kind == "ident":
            if op is not Op.EQ:
                raise SqlSyntaxError(
                    f"only equi-joins are supported, got {op_token.text!r} "
                    f"between {left.text!r} and {right.text!r}"
                )
            return _JoinMarker(left.text, right.text)
        raise SqlSyntaxError(f"expected literal or attribute, got {right.text!r}")


def _like_predicate(attribute: str, pattern: str) -> BoolExpr:
    """Translate a LIKE pattern into the AST (prefix patterns only).

    ``'abc%'`` becomes a :class:`LikePredicate`; a pattern without any
    wildcard is plain string equality.  Other wildcard placements are
    outside the paper's Section 6 scope and rejected.
    """
    if "%" not in pattern:
        return StringPredicate(attribute, Op.EQ, pattern)
    if pattern.endswith("%") and "%" not in pattern[:-1]:
        return LikePredicate(attribute, pattern[:-1])
    raise UnsupportedQueryError(
        f"only prefix patterns ('abc%') are supported, got {pattern!r}"
    )


@dataclass(frozen=True)
class _JoinMarker:
    """Internal placeholder for a column-to-column equality in the AST."""

    left: str
    right: str

    def to_sql(self) -> str:  # pragma: no cover - debug aid
        return f"{self.left} = {self.right}"


def _qualified(name: str) -> tuple[str, str]:
    table, dot, column = name.partition(".")
    if not dot:
        raise SqlSyntaxError(
            f"join attribute {name!r} must be qualified as table.column"
        )
    return table, column


def _split_joins(expr: BoolExpr) -> tuple[BoolExpr | None, list[JoinPredicate]]:
    """Separate top-level join markers from the selection expression."""
    items = expr.children if isinstance(expr, And) else (expr,)
    joins: list[JoinPredicate] = []
    selections: list[BoolExpr] = []
    for item in items:
        if isinstance(item, _JoinMarker):
            left_table, left_col = _qualified(item.left)
            right_table, right_col = _qualified(item.right)
            joins.append(JoinPredicate(left_table, left_col,
                                       right_table, right_col))
        else:
            for marker in _find_markers(item):
                raise UnsupportedQueryError(
                    f"join predicate {marker.left} = {marker.right} must "
                    "appear in the top-level conjunction"
                )
            selections.append(item)
    if not selections:
        return None, joins
    where = selections[0] if len(selections) == 1 else And(selections)
    return where, joins


def _find_markers(expr: BoolExpr):
    if isinstance(expr, _JoinMarker):
        yield expr
    elif isinstance(expr, (And, Or)):
        for child in expr.children:
            yield from _find_markers(child)


def parse_query(sql: str) -> Query:
    """Parse a full ``SELECT count(*)`` statement into a :class:`Query`."""
    return _Parser(_tokenize(sql)).query()


def parse_where(sql: str) -> BoolExpr:
    """Parse a bare WHERE-clause expression (no joins) into a boolean AST."""
    parser = _Parser(_tokenize(sql))
    expr = parser.or_expr()
    if parser._peek() is not None:
        raise SqlSyntaxError(f"trailing input at {parser._peek().text!r}")
    for marker in _find_markers(expr):
        raise UnsupportedQueryError(
            f"parse_where does not accept join predicates "
            f"({marker.left} = {marker.right})"
        )
    return expr
