"""A recursive-descent parser for ``SELECT count(*)`` queries.

Grammar (case-insensitive keywords)::

    query      := SELECT COUNT '(' '*' ')' FROM table_list
                  [WHERE or_expr] [GROUP BY column_list]
    table_list := identifier (',' identifier)*
    or_expr    := and_expr (OR and_expr)*
    and_expr   := term (AND term)*
    term       := '(' or_expr ')' | comparison
    comparison := identifier op operand
                | identifier LIKE string
    op         := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='
    operand    := identifier | number | string

A comparison between two identifiers is an equi-join predicate; join
predicates may only appear in the top-level conjunction (like the paper's
queries).  String literals are single-quoted and allowed with ``=``/``<>``
and ``LIKE 'prefix%'`` (dictionary-encoded columns, Section 6); numeric
comparisons cover everything else.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace

from repro.sql.ast import (
    And,
    BoolExpr,
    JoinPredicate,
    LikePredicate,
    Op,
    Or,
    Query,
    SimplePredicate,
    StringPredicate,
    UnsupportedQueryError,
)

__all__ = [
    "parse_query", "parse_where", "SqlSyntaxError",
    "fingerprint_sql", "make_template", "bind_template",
]


class SqlSyntaxError(ValueError):
    """Raised for malformed SQL input."""


_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<number>-?\d+(?:\.\d+)?)          # numeric literal
      | (?P<string>'[^']*')                  # single-quoted string literal
      | (?P<ident>[A-Za-z_][\w.]*)           # identifier (possibly qualified)
      | (?P<op><=|>=|<>|!=|=|<|>)            # comparison operator
      | (?P<punct>[(),*])                    # punctuation
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "count", "from", "where", "group", "by", "and", "or",
             "like"}


@dataclass(frozen=True)
class _Token:
    kind: str  # 'number' | 'ident' | 'keyword' | 'op' | 'punct'
    text: str


def _tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            if sql[pos:].strip() == ";":
                break
            if sql[pos].isspace():
                pos += 1
                continue
            raise SqlSyntaxError(f"unexpected character {sql[pos]!r} at offset {pos}")
        pos = match.end()
        kind = match.lastgroup
        text = match.group(kind)
        if kind == "ident" and text.lower() in _KEYWORDS:
            tokens.append(_Token("keyword", text.lower()))
        else:
            tokens.append(_Token(kind, text))
    return tokens


class _Parser:
    """Token-stream cursor with the grammar's productions as methods."""

    def __init__(self, tokens: list[_Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SqlSyntaxError("unexpected end of input")
        self._index += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            expected = text if text is not None else kind
            raise SqlSyntaxError(f"expected {expected!r}, got {token.text!r}")
        return token

    def _accept(self, kind: str, text: str | None = None) -> bool:
        token = self._peek()
        if token is not None and token.kind == kind and (
                text is None or token.text == text):
            self._index += 1
            return True
        return False

    # --- productions -----------------------------------------------------

    def query(self) -> Query:
        self._expect("keyword", "select")
        self._expect("keyword", "count")
        self._expect("punct", "(")
        self._expect("punct", "*")
        self._expect("punct", ")")
        self._expect("keyword", "from")
        tables = [self._expect("ident").text]
        while self._accept("punct", ","):
            tables.append(self._expect("ident").text)

        where: BoolExpr | None = None
        joins: list[JoinPredicate] = []
        if self._accept("keyword", "where"):
            expr = self.or_expr()
            where, joins = _split_joins(expr)

        group_by: list[str] = []
        if self._accept("keyword", "group"):
            self._expect("keyword", "by")
            group_by.append(self._expect("ident").text)
            while self._accept("punct", ","):
                group_by.append(self._expect("ident").text)

        if self._peek() is not None:
            raise SqlSyntaxError(f"trailing input at {self._peek().text!r}")
        return Query(tables=tuple(tables), joins=tuple(joins),
                     where=where, group_by=tuple(group_by))

    def or_expr(self) -> BoolExpr:
        children = [self.and_expr()]
        while self._accept("keyword", "or"):
            children.append(self.and_expr())
        return children[0] if len(children) == 1 else Or(children)

    def and_expr(self) -> BoolExpr:
        children = [self.term()]
        while self._accept("keyword", "and"):
            children.append(self.term())
        return children[0] if len(children) == 1 else And(children)

    def term(self) -> BoolExpr:
        if self._accept("punct", "("):
            expr = self.or_expr()
            self._expect("punct", ")")
            return expr
        return self.comparison()

    def comparison(self) -> BoolExpr:
        left = self._next()
        if left.kind != "ident":
            raise SqlSyntaxError(f"expected attribute, got {left.text!r}")
        if self._accept("keyword", "like"):
            pattern_token = self._next()
            if pattern_token.kind != "string":
                raise SqlSyntaxError(
                    f"LIKE expects a quoted pattern, got {pattern_token.text!r}"
                )
            return _like_predicate(left.text, pattern_token.text[1:-1])
        op_token = self._expect("op")
        right = self._next()
        op = Op.from_symbol(op_token.text)
        if right.kind == "number":
            return SimplePredicate(left.text, op, float(right.text))
        if right.kind == "string":
            if op not in (Op.EQ, Op.NE):
                raise SqlSyntaxError(
                    f"string literals support = and <> only, got "
                    f"{op_token.text!r}"
                )
            return StringPredicate(left.text, op, right.text[1:-1])
        if right.kind == "ident":
            if op is not Op.EQ:
                raise SqlSyntaxError(
                    f"only equi-joins are supported, got {op_token.text!r} "
                    f"between {left.text!r} and {right.text!r}"
                )
            return _JoinMarker(left.text, right.text)
        raise SqlSyntaxError(f"expected literal or attribute, got {right.text!r}")


def _like_predicate(attribute: str, pattern: str) -> BoolExpr:
    """Translate a LIKE pattern into the AST (prefix patterns only).

    ``'abc%'`` becomes a :class:`LikePredicate`; a pattern without any
    wildcard is plain string equality.  Other wildcard placements are
    outside the paper's Section 6 scope and rejected.
    """
    if "%" not in pattern:
        return StringPredicate(attribute, Op.EQ, pattern)
    if pattern.endswith("%") and "%" not in pattern[:-1]:
        return LikePredicate(attribute, pattern[:-1])
    raise UnsupportedQueryError(
        f"only prefix patterns ('abc%') are supported, got {pattern!r}"
    )


@dataclass(frozen=True)
class _JoinMarker:
    """Internal placeholder for a column-to-column equality in the AST."""

    left: str
    right: str

    def to_sql(self) -> str:  # pragma: no cover - debug aid
        return f"{self.left} = {self.right}"


def _qualified(name: str) -> tuple[str, str]:
    table, dot, column = name.partition(".")
    if not dot:
        raise SqlSyntaxError(
            f"join attribute {name!r} must be qualified as table.column"
        )
    return table, column


def _split_joins(expr: BoolExpr) -> tuple[BoolExpr | None, list[JoinPredicate]]:
    """Separate top-level join markers from the selection expression."""
    items = expr.children if isinstance(expr, And) else (expr,)
    joins: list[JoinPredicate] = []
    selections: list[BoolExpr] = []
    for item in items:
        if isinstance(item, _JoinMarker):
            left_table, left_col = _qualified(item.left)
            right_table, right_col = _qualified(item.right)
            joins.append(JoinPredicate(left_table, left_col,
                                       right_table, right_col))
        else:
            for marker in _find_markers(item):
                raise UnsupportedQueryError(
                    f"join predicate {marker.left} = {marker.right} must "
                    "appear in the top-level conjunction"
                )
            selections.append(item)
    if not selections:
        return None, joins
    where = selections[0] if len(selections) == 1 else And(selections)
    return where, joins


def _find_markers(expr: BoolExpr):
    if isinstance(expr, _JoinMarker):
        yield expr
    elif isinstance(expr, (And, Or)):
        for child in expr.children:
            yield from _find_markers(child)


def parse_query(sql: str) -> Query:
    """Parse a full ``SELECT count(*)`` statement into a :class:`Query`."""
    return _Parser(_tokenize(sql)).query()


# ---------------------------------------------------------------------------
# Prepared-statement templates
# ---------------------------------------------------------------------------
#
# Serving traffic is dominated by *parameterized* statements: the same
# SQL text with different numeric literals.  Re-running the full
# tokenizer + recursive descent for every instance wastes most of the
# request budget, so the serve layer caches parses per *fingerprint* —
# the SQL text with numeric literals masked out — and re-binds the
# cached AST with each instance's literals.  This is the textual twin
# of the featurization layer's shape-keyed plan cache.

# Matches string literals (kept verbatim, so numbers inside quotes are
# never masked) or standalone numeric literals.  The lookbehind keeps
# digits inside identifiers like ``attr_3`` or ``t1.col`` intact; in
# this grammar every standalone number is a predicate literal.
_LITERAL_RE = re.compile(r"'[^']*'|(?<![\w.])-?\d+(?:\.\d+)?")
_NUMBER_RE = re.compile(r"(?<![\w.])-?\d+(?:\.\d+)?")


def fingerprint_sql(sql: str) -> tuple[str, tuple[float, ...]]:
    """Mask numeric literals out of ``sql``; return ``(key, literals)``.

    ``key`` is the statement's template fingerprint (literals replaced
    by ``?``, string literals kept — they are part of a query's shape,
    exactly as in :func:`repro.featurize.batch.query_shape`) and
    ``literals`` the masked values in textual order.  Works on any
    string; a malformed statement simply yields a fingerprint no valid
    template will ever be cached under.
    """
    if "'" not in sql:
        # No string literals to protect: constant-replacement sub and
        # findall both run without a per-match python callback.
        return (_NUMBER_RE.sub("?", sql),
                tuple(map(float, _NUMBER_RE.findall(sql))))
    values: list[float] = []

    def _mask(match: "re.Match[str]") -> str:
        text = match.group(0)
        if text.startswith("'"):
            return text
        values.append(float(text))
        return "?"

    return _LITERAL_RE.sub(_mask, sql), tuple(values)


def make_template(query: Query, literals: tuple[float, ...]) -> Query | None:
    """Freeze a parsed query into a re-bindable template, or ``None``.

    The template is ``query`` with every numeric predicate literal
    replaced by its textual index, so :func:`bind_template` can stamp a
    new instance's literals in without re-parsing.  Builds are
    self-checking: re-binding the template with the original
    ``literals`` (as collected by :func:`fingerprint_sql`) must
    reproduce ``query`` exactly, otherwise the statement is declared
    uncacheable and ``None`` is returned — callers then simply parse
    every instance.  The check makes the cache robust by construction:
    a template only exists if rebinding provably round-trips.
    """
    counter = [0]

    def rebuild(node: BoolExpr) -> BoolExpr:
        if isinstance(node, SimplePredicate):
            index = counter[0]
            counter[0] += 1
            return SimplePredicate(node.attribute, node.op, float(index))
        if isinstance(node, And):
            return And([rebuild(c) for c in node.children])
        if isinstance(node, Or):
            return Or([rebuild(c) for c in node.children])
        return node

    if query.where is None:
        template = query
    else:
        template = replace(query, where=rebuild(query.where))
    if counter[0] != len(literals):
        return None
    if bind_template(template, literals) != query:
        return None
    return template


def bind_template(template: Query, literals: tuple[float, ...]) -> Query:
    """Instantiate a :func:`make_template` query with fresh literals.

    This is the per-request leg of the template cache, so nodes are
    rebuilt through ``object.__new__`` instead of their constructors:
    the template's structure already passed construction-time
    validation and ``And``/``Or`` flattening when it was parsed, and
    :func:`make_template`'s round-trip self-check exercises exactly
    this fast path before any template is ever cached.
    """

    def rebuild(node: BoolExpr) -> BoolExpr:
        cls = type(node)
        if cls is SimplePredicate:
            bound = object.__new__(SimplePredicate)
            object.__setattr__(bound, "attribute", node.attribute)
            object.__setattr__(bound, "op", node.op)
            object.__setattr__(bound, "value", literals[int(node.value)])
            return bound
        if cls is And or cls is Or:
            bound = object.__new__(cls)
            object.__setattr__(
                bound, "children",
                tuple(rebuild(child) for child in node.children))
            return bound
        return node

    if template.where is None:
        return template
    return replace(template, where=rebuild(template.where))


def parse_where(sql: str) -> BoolExpr:
    """Parse a bare WHERE-clause expression (no joins) into a boolean AST."""
    parser = _Parser(_tokenize(sql))
    expr = parser.or_expr()
    if parser._peek() is not None:
        raise SqlSyntaxError(f"trailing input at {parser._peek().text!r}")
    for marker in _find_markers(expr):
        raise UnsupportedQueryError(
            f"parse_where does not accept join predicates "
            f"({marker.left} = {marker.right})"
        )
    return expr
