"""A fluent query-builder API.

SQL strings (via :func:`repro.sql.parser.parse_query`) are one way to
construct queries; programs composing queries dynamically are better
served by a typed builder::

    from repro.sql.builder import col, query

    q = (query("forest")
         .where((col("A1") >= 2500) & (col("A1") <= 3100)
                | (col("A1") == 1900))
         .where(col("A3") != 7)
         .group_by("A55")
         .build())

``&`` is AND, ``|`` is OR; chained :meth:`QueryBuilder.where` calls are
AND-connected, mirroring SQL's conjunctive WHERE style.  The result is a
plain :class:`~repro.sql.ast.Query`, interchangeable with parsed ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sql.ast import And, BoolExpr, JoinPredicate, Op, Or, Query, SimplePredicate

__all__ = ["col", "query", "Column", "Expr", "QueryBuilder"]


@dataclass(frozen=True)
class Expr:
    """A boolean expression under construction (supports ``&`` and ``|``)."""

    node: BoolExpr

    def __and__(self, other: "Expr") -> "Expr":
        return Expr(And([self.node, other.node]))

    def __or__(self, other: "Expr") -> "Expr":
        return Expr(Or([self.node, other.node]))

    def to_sql(self) -> str:
        """Render the expression as SQL text."""
        return self.node.to_sql()


class Column:
    """A column reference producing predicates via comparison operators.

    Deliberately *not* hashable and not a dataclass: ``==`` builds a
    predicate instead of comparing, so identity-based use (dict keys,
    sets) would be a bug waiting to happen.
    """

    __hash__ = None

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("column name must be non-empty")
        self.name = name

    def _predicate(self, op: Op, value) -> Expr:
        return Expr(SimplePredicate(self.name, op, float(value)))

    def __eq__(self, value) -> Expr:  # type: ignore[override]
        return self._predicate(Op.EQ, value)

    def __ne__(self, value) -> Expr:  # type: ignore[override]
        return self._predicate(Op.NE, value)

    def __lt__(self, value) -> Expr:
        return self._predicate(Op.LT, value)

    def __le__(self, value) -> Expr:
        return self._predicate(Op.LE, value)

    def __gt__(self, value) -> Expr:
        return self._predicate(Op.GT, value)

    def __ge__(self, value) -> Expr:
        return self._predicate(Op.GE, value)

    def between(self, lo, hi) -> Expr:
        """Closed-range shorthand: ``lo <= column <= hi``."""
        return (self >= lo) & (self <= hi)


def col(name: str) -> Column:
    """A column reference (optionally qualified as ``table.column``)."""
    return Column(name)


class QueryBuilder:
    """Accumulates tables, joins, selections, and grouping into a Query."""

    def __init__(self, *tables: str) -> None:
        if not tables:
            raise ValueError("query() needs at least one table")
        self._tables = tuple(tables)
        self._joins: list[JoinPredicate] = []
        self._conditions: list[BoolExpr] = []
        self._group_by: tuple[str, ...] = ()

    def join(self, child: str, parent: str) -> "QueryBuilder":
        """Add an equi-join; both sides as qualified ``table.column``."""
        child_table, _, child_column = child.partition(".")
        parent_table, _, parent_column = parent.partition(".")
        if not child_column or not parent_column:
            raise ValueError(
                f"join sides must be qualified table.column, got "
                f"{child!r} = {parent!r}"
            )
        self._joins.append(JoinPredicate(child_table, child_column,
                                         parent_table, parent_column))
        return self

    def where(self, condition: Expr) -> "QueryBuilder":
        """Add a condition; multiple calls are AND-connected."""
        if not isinstance(condition, Expr):
            raise TypeError(
                f"where() expects an Expr built from col(), got "
                f"{type(condition).__name__}"
            )
        self._conditions.append(condition.node)
        return self

    def group_by(self, *columns: str) -> "QueryBuilder":
        """Set the grouping columns."""
        self._group_by = tuple(columns)
        return self

    def build(self) -> Query:
        """Produce the immutable :class:`~repro.sql.ast.Query`."""
        where: BoolExpr | None
        if not self._conditions:
            where = None
        elif len(self._conditions) == 1:
            where = self._conditions[0]
        else:
            where = And(self._conditions)
        return Query(tables=self._tables, joins=tuple(self._joins),
                     where=where, group_by=self._group_by)


def query(*tables: str) -> QueryBuilder:
    """Start building a ``SELECT count(*)`` query over ``tables``."""
    return QueryBuilder(*tables)
