"""Desugaring of string predicates into numeric code predicates.

Section 6: "The state-of-the-art approach to support strings is to use a
dictionary encoding.  This approach works for equality predicates.
However, range predicates could only be supported for sorted
dictionaries."  This package's dictionaries *are* sorted
(:meth:`repro.data.column.Column.from_strings`), so:

* ``name = 'spam'``  desugars to an equality on the value's code,
* ``name <> 'spam'`` to the corresponding not-equal,
* ``name LIKE 'spa%'`` to a closed **code range** — prefixed values are
  contiguous in a sorted dictionary.

After :func:`desugar_strings`, a query contains only numeric simple
predicates and every QFT consumes it unchanged — which is precisely the
paper's point that Universal Conjunction Encoding "naturally supports"
such predicates.

Predicates on absent values desugar to the unsatisfiable ``attr = -1``
(codes are non-negative), preserving result equivalence.
"""

from __future__ import annotations

from repro.data.column import Column
from repro.data.schema import Schema
from repro.data.table import Table
from repro.sql.ast import (
    And,
    BoolExpr,
    LikePredicate,
    Op,
    Or,
    Query,
    SimplePredicate,
    StringPredicate,
)

__all__ = ["desugar_strings", "desugar_expr"]


def _resolve_column(attribute: str, data: Table | Schema,
                    query_tables: tuple[str, ...] | None) -> Column:
    """Find the (dictionary-encoded) column an attribute refers to."""
    prefix, dot, rest = attribute.partition(".")
    if isinstance(data, Table):
        name = rest if dot and prefix == data.name else attribute
        return data.column(name)
    if dot:
        return data.table(prefix).column(rest)
    candidates = query_tables if query_tables else tuple(data.table_names)
    owners = [t for t in candidates if attribute in data.table(t)]
    if len(owners) != 1:
        raise KeyError(
            f"attribute {attribute!r} is ambiguous or unknown among "
            f"tables {candidates}; qualify it"
        )
    return data.table(owners[0]).column(attribute)


def _require_dictionary(column: Column, predicate) -> None:
    if column.dictionary is None:
        raise TypeError(
            f"predicate {predicate.to_sql()!r} targets column "
            f"{column.name!r}, which is not dictionary-encoded; use "
            "Column.from_strings for string data"
        )


_IMPOSSIBLE_CODE = -1.0


def _desugar_leaf(predicate, data, query_tables) -> BoolExpr:
    if isinstance(predicate, StringPredicate):
        column = _resolve_column(predicate.attribute, data, query_tables)
        _require_dictionary(column, predicate)
        try:
            code = float(column.encode(predicate.value))
        except KeyError:
            # Absent value: '=' can never match; '<>' always matches.
            code = _IMPOSSIBLE_CODE
        return SimplePredicate(predicate.attribute, predicate.op, code)
    if isinstance(predicate, LikePredicate):
        column = _resolve_column(predicate.attribute, data, query_tables)
        _require_dictionary(column, predicate)
        lo, hi = column.prefix_code_range(predicate.prefix)
        if hi <= lo:
            return SimplePredicate(predicate.attribute, Op.EQ,
                                   _IMPOSSIBLE_CODE)
        if hi - lo == 1:
            return SimplePredicate(predicate.attribute, Op.EQ, float(lo))
        return And([
            SimplePredicate(predicate.attribute, Op.GE, float(lo)),
            SimplePredicate(predicate.attribute, Op.LE, float(hi - 1)),
        ])
    return predicate  # numeric leaves pass through unchanged


def desugar_expr(expr: BoolExpr | None, data: Table | Schema,
                 query_tables: tuple[str, ...] | None = None
                 ) -> BoolExpr | None:
    """Replace string/LIKE leaves of ``expr`` with numeric code predicates."""
    if expr is None:
        return None
    if isinstance(expr, And):
        return And([desugar_expr(c, data, query_tables)
                    for c in expr.children])
    if isinstance(expr, Or):
        return Or([desugar_expr(c, data, query_tables)
                   for c in expr.children])
    return _desugar_leaf(expr, data, query_tables)


def desugar_strings(query: Query, data: Table | Schema) -> Query:
    """Return ``query`` with all string predicates desugared to codes.

    The result has the same result set over ``data`` and is accepted by
    every featurizer and estimator.  Queries without string predicates
    are returned structurally identical (a fresh Query object).
    """
    return Query(
        tables=query.tables,
        joins=query.joins,
        where=desugar_expr(query.where, data, query.tables),
        group_by=query.group_by,
    )
