"""SQL substrate: predicate ASTs, a parser, and a counting executor.

The paper consumes ``SELECT count(*)`` queries with selection predicates
(conjunctions, and per-attribute disjunctions for *mixed queries*) and
key/foreign-key joins.  This subpackage provides:

* :mod:`repro.sql.ast` — the query representation all featurizers and
  estimators consume, including normalisation into the paper's
  Definition 3.3 *mixed query* form.
* :mod:`repro.sql.parser` — a recursive-descent parser from SQL text.
* :mod:`repro.sql.executor` — a vectorised executor that computes *true*
  result cardinalities (the training labels).
"""

from repro.sql.ast import (
    And,
    BoolExpr,
    CompoundForm,
    JoinPredicate,
    Op,
    Or,
    Query,
    SimplePredicate,
    UnsupportedQueryError,
)
from repro.sql.ast import LikePredicate, StringPredicate
from repro.sql.builder import col, query
from repro.sql.executor import cardinality, selection_mask
from repro.sql.strings import desugar_strings
from repro.sql.parser import parse_query, parse_where

__all__ = [
    "And",
    "BoolExpr",
    "CompoundForm",
    "JoinPredicate",
    "Op",
    "Or",
    "Query",
    "SimplePredicate",
    "UnsupportedQueryError",
    "cardinality",
    "selection_mask",
    "parse_query",
    "parse_where",
    "col",
    "query",
    "StringPredicate",
    "LikePredicate",
    "desugar_strings",
]
