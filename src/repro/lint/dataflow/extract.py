"""The dataflow pass: attach concurrency facts to a module's facts.

Runs after base fact extraction (:func:`~repro.lint.semantic.facts.
extract_module_facts`) and before caching, so the per-function lock
summaries ride the same content-hash cache shards as every other fact.
For each function it builds the CFG, solves the lock-state and
reaching-definitions analyses, and distils what the RPR4xx rules need:

* every ``self.<attr>`` write with the must-held lock tokens,
* attribute reads observed under a lock (guard-ownership evidence),
* every lock acquisition with the locks already held (order edges),
* known-blocking calls executed while holding a lock,
* non-atomic check-then-act pairs on ``self`` attributes,
* daemon-thread spawns and ``.join()`` sites,
* held-lock annotations on ordinary call sites (so the project pass
  can propagate acquisition-order edges through the call graph).
"""

from __future__ import annotations

import ast
from dataclasses import replace
from typing import Iterable, Iterator

from repro.lint.dataflow.cfg import CFG, Op, build_cfg
from repro.lint.dataflow.locks import (
    LOCK_CTORS,
    HeldState,
    LockModel,
    LockStateAnalysis,
    classify_blocking,
    held_tokens,
    lock_token,
    op_expressions,
)
from repro.lint.dataflow.solver import ReachingDefinitions, solve
from repro.lint.semantic.facts import (
    AttrWriteFact,
    BlockingCallFact,
    FunctionFacts,
    LazyInitFact,
    LockAcquireFact,
    LockAttrFact,
    LockedReadFact,
    ModuleFacts,
    ThreadSpawnFact,
)

__all__ = ["attach_concurrency_facts"]

#: Method calls that mutate their receiver in place — a call like
#: ``self._entries.pop(key)`` outside the lock races exactly like an
#: assignment would.
_MUTATORS = frozenset({
    "append", "extend", "add", "remove", "discard", "clear", "pop",
    "popitem", "update", "setdefault", "insert", "move_to_end",
})


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _self_attr(node: ast.expr) -> str | None:
    """``X`` for a one-level ``self.X`` attribute access."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _own_body_walk(node: ast.AST) -> Iterator[ast.AST]:
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef, ast.Lambda)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _lock_ctor_kind(value: ast.expr) -> str | None:
    """``"Lock"``/``"RLock"`` when ``value`` constructs one."""
    if not isinstance(value, ast.Call):
        return None
    dotted = _dotted(value.func)
    if dotted is None:
        return None
    tail = dotted.rpartition(".")[2]
    return tail if tail in LOCK_CTORS else None


# ----------------------------------------------------------------------
# Per-function collection
# ----------------------------------------------------------------------


class _Collector:
    """Accumulates concurrency facts while replaying op states."""

    def __init__(self, model: LockModel, blocking_extra: Iterable[str],
                 rd: ReachingDefinitions) -> None:
        self._model = model
        self._blocking_extra = tuple(blocking_extra)
        self._rd = rd
        self.attr_writes: list[AttrWriteFact] = []
        self.lock_acquires: list[LockAcquireFact] = []
        self.blocking_calls: list[BlockingCallFact] = []
        self.locked_reads: set[tuple[str, str]] = set()
        self.held_at_call: dict[tuple[int, int], tuple[str, ...]] = {}
        #: ``(attr, lineno, col, full held state)`` for every write.
        self._writes_full: list[tuple[str, int, int, HeldState]] = []
        #: ``(attr, lineno, col, full held state)`` for every check.
        self._checks: list[tuple[str, int, int, HeldState]] = []

    def visit(self, op: Op, held: HeldState, reaching: frozenset) -> None:
        if op.kind == "enter":
            self._visit_enter(op, held)
            return
        if op.kind == "exit":
            return
        tokens = held_tokens(held)
        for child in op_expressions(op):
            if isinstance(child, ast.Call):
                self._visit_call(child, held, tokens)
            elif (isinstance(child, ast.Attribute)
                  and isinstance(child.ctx, ast.Load)):
                self._visit_read(child, tokens)
        if op.kind == "stmt":
            for attr, node in self._assignment_writes(op.node):
                self._record_write(attr, node, held, tokens)
        if op.kind == "test" and isinstance(op.node, ast.If):
            attr = self._check_attr(op.node.test, reaching)
            if attr is not None:
                self._checks.append((attr, op.node.lineno,
                                     op.node.col_offset + 1, held))

    # -- pieces --------------------------------------------------------

    def _visit_enter(self, op: Op, held: HeldState) -> None:
        interim = held
        for item in op.node.items:
            expr = item.context_expr
            token = lock_token(expr, self._model)
            tokens = held_tokens(interim)
            if token is not None:
                self.lock_acquires.append(LockAcquireFact(
                    lock=token, lineno=expr.lineno,
                    col=expr.col_offset + 1, held=tokens))
                interim = interim | {(token,
                                      (expr.lineno, expr.col_offset))}
            else:
                # Non-lock context expressions still evaluate here —
                # ``with self._lock, open(path):`` blocks under the lock.
                for child in ast.walk(expr):
                    if isinstance(child, ast.Call):
                        self._visit_call(child, interim, tokens)

    def _visit_call(self, call: ast.Call, held: HeldState,
                    tokens: tuple[str, ...]) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            receiver_token = lock_token(func.value, self._model)
            if receiver_token is not None and func.attr == "acquire":
                self.lock_acquires.append(LockAcquireFact(
                    lock=receiver_token, lineno=call.lineno,
                    col=call.col_offset + 1, held=tokens))
                return
            if receiver_token is not None and func.attr == "release":
                return
            attr = _self_attr(func.value)
            if attr is not None and func.attr in _MUTATORS:
                self._record_write(attr, call, held, tokens)
        if tokens:
            blocking = classify_blocking(call, self._blocking_extra)
            if blocking is not None:
                self.blocking_calls.append(BlockingCallFact(
                    callee=blocking, lineno=call.lineno,
                    col=call.col_offset + 1, held=tokens))
            dotted = _dotted(func)
            if dotted is not None:
                self.held_at_call[(call.lineno, call.col_offset + 1)] = \
                    tokens

    def _visit_read(self, node: ast.Attribute,
                    tokens: tuple[str, ...]) -> None:
        attr = _self_attr(node)
        if attr is None or not tokens:
            return
        if self._model.is_lock(f"self.{attr}"):
            return
        for token in tokens:
            self.locked_reads.add((attr, token))

    def _record_write(self, attr: str, node: ast.AST, held: HeldState,
                      tokens: tuple[str, ...]) -> None:
        if self._model.is_lock(f"self.{attr}"):
            return
        lineno = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0) + 1
        self.attr_writes.append(AttrWriteFact(
            attr=attr, lineno=lineno, col=col, held=tokens))
        self._writes_full.append((attr, lineno, col, held))

    @staticmethod
    def _assignment_writes(stmt: ast.stmt
                           ) -> Iterator[tuple[str, ast.AST]]:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            attr = _self_attr(target)
            if attr is None and isinstance(target, ast.Subscript):
                attr = _self_attr(target.value)
            if attr is None and isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    nested = _self_attr(element)
                    if nested is not None:
                        yield nested, element
                continue
            if attr is not None:
                yield attr, target

    def _check_attr(self, test: ast.expr,
                    reaching: frozenset) -> str | None:
        """The ``self`` attribute a guard condition inspects, if any."""
        def attr_of(expr: ast.expr, depth: int = 0) -> str | None:
            direct = _self_attr(expr)
            if direct is not None:
                return direct
            if (isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == "get"):
                return attr_of(expr.func.value, depth)
            if isinstance(expr, ast.Name) and depth == 0:
                value = self._rd.resolve(reaching, expr.id)
                if value is not None:
                    return attr_of(value, depth + 1)
            return None

        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            op = test.ops[0]
            right = test.comparators[0]
            if isinstance(op, (ast.Is, ast.IsNot, ast.Eq, ast.NotEq)) \
                    and isinstance(right, ast.Constant) \
                    and right.value is None:
                return attr_of(test.left)
            if isinstance(op, (ast.In, ast.NotIn)):
                return attr_of(right)
            return None
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return attr_of(test.operand)
        return attr_of(test)

    # -- assembly ------------------------------------------------------

    def lazy_inits(self) -> list[LazyInitFact]:
        """Check-then-act pairs with no shared lock region anywhere.

        Per attribute: if some check shares an acquisition region with
        some write, the function holds the lock continuously across one
        decide-and-act path (single locked region, or the inner check of
        double-checked locking) and the attribute is atomic here.
        Otherwise every decision is stale by the time the write lands.
        """
        found: list[LazyInitFact] = []
        seen: set[str] = set()
        for attr, lineno, col, state in self._checks:
            if attr in seen:
                continue
            seen.add(attr)
            writes = [w for w in self._writes_full if w[0] == attr]
            if not writes:
                continue
            checks = [c for c in self._checks if c[0] == attr]
            if any(check[3] & write[3]
                   for check in checks for write in writes):
                continue
            write = writes[0]
            found.append(LazyInitFact(
                attr=attr, lineno=lineno, col=col,
                write_lineno=write[1], write_col=write[2],
                held=held_tokens(state),
                write_held=held_tokens(write[3])))
        return found


def _scan_threads(fn: ast.FunctionDef | ast.AsyncFunctionDef,
                  ff: FunctionFacts) -> None:
    """Collect thread spawn/start/join structure (flow-insensitive)."""
    spawns: dict[str, ThreadSpawnFact] = {}
    started: set[str] = set()
    joins: list[str] = []
    for child in _own_body_walk(fn):
        if isinstance(child, ast.Assign) and len(child.targets) == 1:
            target = child.targets[0]
            binding = _dotted(target)
            kind = _thread_ctor(child.value)
            if binding is not None and kind is not None:
                spawns[binding] = ThreadSpawnFact(
                    binding=binding, daemon=kind,
                    lineno=child.lineno, col=child.col_offset + 1)
        elif isinstance(child, ast.Call) \
                and isinstance(child.func, ast.Attribute):
            receiver = child.func.value
            if child.func.attr == "start":
                binding = _dotted(receiver)
                if binding is not None:
                    started.add(binding)
                else:
                    kind = _thread_ctor(receiver)
                    if kind is not None:
                        # threading.Thread(...).start() — never joinable.
                        ff.thread_spawns.append(ThreadSpawnFact(
                            binding="", daemon=kind,
                            lineno=child.lineno,
                            col=child.col_offset + 1))
            elif child.func.attr == "join":
                binding = _dotted(receiver)
                if binding is not None:
                    joins.append(binding)
    for binding, fact in spawns.items():
        if binding in started:
            ff.thread_spawns.append(fact)
    ff.thread_joins.extend(sorted(set(joins)))


def _thread_ctor(value: ast.expr) -> bool | None:
    """``daemon`` flag when ``value`` constructs a ``threading.Thread``."""
    if not (isinstance(value, ast.Call)
            and _dotted(value.func) is not None
            and _dotted(value.func).rpartition(".")[2] == "Thread"):
        return None
    for kw in value.keywords:
        if kw.arg == "daemon":
            return (isinstance(kw.value, ast.Constant)
                    and kw.value.value is True)
    return False


def _attach_function(fn: ast.FunctionDef | ast.AsyncFunctionDef,
                     ff: FunctionFacts, model: LockModel,
                     blocking_extra: Iterable[str]) -> None:
    cfg: CFG = build_cfg(fn)
    lock_analysis = LockStateAnalysis(model)
    lock_solution = solve(cfg, lock_analysis)
    rd = ReachingDefinitions(fn)
    rd_solution = solve(cfg, rd)
    collector = _Collector(model, blocking_extra, rd)
    for block_id in cfg.rpo():
        if block_id not in lock_solution.block_in:
            continue
        held = lock_solution.block_in[block_id]
        reaching = rd_solution.block_in.get(block_id, rd.initial())
        for op in cfg.blocks[block_id].ops:
            collector.visit(op, held, reaching)
            held = lock_analysis.transfer(op, held)
            reaching = rd.transfer(op, reaching)
    ff.attr_writes = collector.attr_writes
    ff.locked_reads = [LockedReadFact(attr=a, lock=lk)
                       for a, lk in sorted(collector.locked_reads)]
    ff.lock_acquires = collector.lock_acquires
    ff.blocking_calls = collector.blocking_calls
    ff.lazy_inits = collector.lazy_inits()
    _scan_threads(fn, ff)
    if collector.held_at_call:
        ff.calls = [
            replace(call, held_locks=collector.held_at_call.get(
                (call.lineno, call.col), ()))
            for call in ff.calls]


def _class_lock_attrs(cls: ast.ClassDef) -> list[LockAttrFact]:
    """Locks the class constructs on ``self`` in any of its methods."""
    found: dict[str, str] = {}
    for stmt in cls.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for child in _own_body_walk(stmt):
            if not (isinstance(child, ast.Assign)
                    and len(child.targets) == 1):
                continue
            attr = _self_attr(child.targets[0])
            kind = _lock_ctor_kind(child.value)
            if attr is not None and kind is not None:
                found.setdefault(attr, kind)
    return [LockAttrFact(name=name, kind=kind)
            for name, kind in sorted(found.items())]


def attach_concurrency_facts(facts: ModuleFacts, tree: ast.Module,
                             blocking_extra: Iterable[str] = ()) -> None:
    """Populate ``facts`` with the dataflow-derived concurrency fields.

    Mutates the function/class fact records in place; pairing with the
    AST relies on extraction order (one facts entry per def, in source
    order) and is double-checked by name so a mismatch degrades to
    "no concurrency facts" rather than misattribution.
    """
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            kind = _lock_ctor_kind(stmt.value)
            if kind is not None:
                facts.global_locks.append(LockAttrFact(
                    name=stmt.targets[0].id, kind=kind))
    global_names = {g.name for g in facts.global_locks}
    functions = iter(facts.functions)
    classes = iter(facts.classes)
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            ff = next(functions, None)
            if ff is None or ff.name != stmt.name:
                return
            _attach_function(stmt, ff, LockModel((), global_names),
                             blocking_extra)
        elif isinstance(stmt, ast.ClassDef):
            cf = next(classes, None)
            if cf is None or cf.name != stmt.name:
                return
            cf.lock_attrs = _class_lock_attrs(stmt)
            self_locks = {a.name for a in cf.lock_attrs}
            methods = iter(cf.methods)
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                    mf = next(methods, None)
                    if mf is None or mf.name != sub.name:
                        return
                    _attach_function(sub, mf,
                                     LockModel(self_locks, global_names),
                                     blocking_extra)
