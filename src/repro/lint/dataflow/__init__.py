"""Per-function CFG + dataflow engine backing the RPR4xx/RPR5xx bands.

Layers, bottom up:

* :mod:`~repro.lint.dataflow.cfg` — control-flow graphs from the AST
  (branch/loop/try/with edges, ``with`` desugared to acquire/release);
* :mod:`~repro.lint.dataflow.solver` — the generic forward fixed-point
  solver and the reaching-definitions instance;
* :mod:`~repro.lint.dataflow.locks` — the must-held lock-region
  lattice and the blocking-call catalogue;
* :mod:`~repro.lint.dataflow.extract` — the pass distilling per-
  function concurrency facts for the incremental cache and the
  project-stage concurrency rules;
* :mod:`~repro.lint.dataflow.numeric` — the abstract-interpretation
  pass over a combined dtype/interval/shape lattice feeding the
  numeric facts behind RPR501-505.
"""

from repro.lint.dataflow.cfg import CFG, Block, Op, build_cfg
from repro.lint.dataflow.extract import attach_concurrency_facts
from repro.lint.dataflow.locks import (
    LockModel,
    LockStateAnalysis,
    classify_blocking,
    held_tokens,
)
from repro.lint.dataflow.numeric import (
    NumericAnalysis,
    NumState,
    NumValue,
    attach_numeric_facts,
    dtype_range,
    is_narrowing,
    join_values,
    promote,
)
from repro.lint.dataflow.solver import (
    ForwardAnalysis,
    ReachingDefinitions,
    Solution,
    iter_op_states,
    solve,
)

__all__ = [
    "CFG",
    "Block",
    "Op",
    "build_cfg",
    "ForwardAnalysis",
    "Solution",
    "solve",
    "iter_op_states",
    "ReachingDefinitions",
    "LockModel",
    "LockStateAnalysis",
    "classify_blocking",
    "held_tokens",
    "attach_concurrency_facts",
    "NumericAnalysis",
    "NumState",
    "NumValue",
    "attach_numeric_facts",
    "dtype_range",
    "is_narrowing",
    "join_values",
    "promote",
]
