"""Numeric abstract interpretation: dtype / interval / shape lattice.

This is the analysis layer behind the RPR5xx band.  It runs a forward
fixed-point pass (via :func:`repro.lint.dataflow.solver.solve`) over
each function's CFG with a combined abstract value per local name:

* **dtype** — the normalised numpy element type (``"float32"``,
  ``"uint8"``, ...), or ``None`` when unknown;
* **value interval** — a ``[lo, hi]`` over-approximation of every
  element, used to *prove* narrowing casts in-bounds (``np.zeros`` is
  ``[0, 0]``, a ``uint8`` array is within ``[0, 255]``, ``x % 256`` is
  within ``[0, 255]``);
* **symbolic shape** — a tuple of concrete ints, symbolic dimension
  names, or ``"?"`` per axis (``None`` = rank unknown), used to prove
  broadcasting mismatches and track rank through indexing/reductions;
* **maybe-empty taint** — set by boolean-mask indexing, consumed by the
  empty-reduction check.

Transfer functions cover the numpy surface the hot path actually uses:
constructors (``zeros``/``ones``/``full``/``empty``/``arange``/
``asarray``), ``astype`` casts, elementwise arithmetic with dtype
promotion and broadcast checking, indexing (scalar, slice, boolean
mask, integer gather), reductions (``min``/``max``/``argmin``/
``sum``/``mean``), and ``concatenate``/``stack``.

Interval **widening** keeps loops convergent: after a name's joined
interval changes a few times, its bounds are widened to the full range,
pinning the lattice chain to finite height well under the solver's
pass limit.

The collector replays the solved states and records
:class:`~repro.lint.semantic.facts.NarrowingCastFact` et al. onto the
per-function summaries, and refines ``ReturnFact`` dtype/rank where the
crude syntactic classifier left them unknown — that refinement is what
lets RPR106/RPR107 see through helper functions.  Facts ride the cache
shards (format v3), so the pass is incremental like every other one.
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass, replace

from repro.lint.dataflow.cfg import Op, build_cfg
from repro.lint.dataflow.solver import ForwardAnalysis, solve
from repro.lint.semantic.facts import (
    EmptyReductionFact,
    FunctionFacts,
    MixedPrecisionFact,
    ModuleFacts,
    NarrowingCastFact,
    ShapeMismatchFact,
    SmallIndexFact,
    _normalise_dtype,
)

__all__ = [
    "NumValue",
    "NumState",
    "NumericAnalysis",
    "TOP",
    "attach_numeric_facts",
    "dtype_range",
    "is_narrowing",
    "join_values",
    "promote",
]

# ----------------------------------------------------------------------
# Dtype algebra
# ----------------------------------------------------------------------

#: dtype -> (kind, bits).  Kinds: ``i`` signed, ``u`` unsigned,
#: ``f`` float, ``b`` bool.
_DTYPES: dict[str, tuple[str, int]] = {
    "bool_": ("b", 8),
    "int8": ("i", 8), "int16": ("i", 16),
    "int32": ("i", 32), "int64": ("i", 64),
    "uint8": ("u", 8), "uint16": ("u", 16),
    "uint32": ("u", 32), "uint64": ("u", 64),
    "float16": ("f", 16), "float32": ("f", 32), "float64": ("f", 64),
}

_FULL = (-math.inf, math.inf)


def dtype_range(name: str) -> tuple[float, float]:
    """Representable value range of a dtype (floats get ``±inf``)."""
    kind, bits = _DTYPES[name]
    if kind == "f":
        return _FULL
    if kind == "b":
        return (0.0, 1.0)
    if kind == "u":
        return (0.0, float(2 ** bits - 1))
    return (float(-(2 ** (bits - 1))), float(2 ** (bits - 1) - 1))


def _kind(name: str) -> str:
    return _DTYPES[name][0]


def _bits(name: str) -> int:
    return _DTYPES[name][1]


def promote(left: str | None, right: str | None) -> str | None:
    """Simplified numpy result-dtype promotion for a binary op."""
    if left is None or right is None:
        return None
    if left == right:
        return left
    lk, rk = _kind(left), _kind(right)
    if lk == "b":
        return right
    if rk == "b":
        return left
    if lk == "f" or rk == "f":
        bits = max(b for d, k in ((left, lk), (right, rk))
                   for b in [_bits(d)] if k == "f")
        return f"float{bits}"
    if lk == rk:  # same signedness: wider wins
        return f"{'uint' if lk == 'u' else 'int'}{max(_bits(left), _bits(right))}"
    # Mixed signed/unsigned: need a signed type wide enough for both.
    u_bits = _bits(left if lk == "u" else right)
    i_bits = _bits(left if lk == "i" else right)
    if i_bits > u_bits:
        return f"int{i_bits}"
    if u_bits >= 64:
        return "float64"
    return f"int{min(64, u_bits * 2)}"


def is_narrowing(src: str, dst: str) -> bool:
    """Whether casting ``src`` to ``dst`` can lose or wrap values.

    Integer-to-integer: narrowing when the target range is not a
    superset of the source range (this includes signed/unsigned flips).
    Float-to-float: narrowing when the target mantissa is smaller.
    Float-to-int casts are *excluded* — ``astype(int)`` after ``floor``
    or ``linspace`` is the deliberate-truncation idiom, not a bug
    class; int-to-float is likewise excluded (precision loss there is
    gradual, not a wrap).
    """
    if src not in _DTYPES or dst not in _DTYPES:
        return False
    sk, dk = _kind(src), _kind(dst)
    if sk == "f" and dk == "f":
        return _bits(dst) < _bits(src)
    if sk in "iub" and dk in "iub":
        slo, shi = dtype_range(src)
        dlo, dhi = dtype_range(dst)
        return not (dlo <= slo and shi <= dhi)
    return False


# ----------------------------------------------------------------------
# Interval helpers
# ----------------------------------------------------------------------


def _iv(lo: float, hi: float) -> tuple[float, float]:
    if math.isnan(lo) or math.isnan(hi) or lo > hi:
        return _FULL
    return (lo, hi)


def _iv_add(a, b):
    return _iv(a[0] + b[0], a[1] + b[1])


def _iv_sub(a, b):
    return _iv(a[0] - b[1], a[1] - b[0])


def _iv_mul(a, b):
    products = []
    for x in a:
        for y in b:
            p = x * y
            products.append(0.0 if math.isnan(p) else p)
    return _iv(min(products), max(products))


def _iv_hull(a, b):
    return (min(a[0], b[0]), max(a[1], b[1]))


def _iv_within(iv, bounds) -> bool:
    return (math.isfinite(iv[0]) and math.isfinite(iv[1])
            and bounds[0] <= iv[0] and iv[1] <= bounds[1])


# ----------------------------------------------------------------------
# Abstract values and states
# ----------------------------------------------------------------------

# A shape axis is a concrete int length, a symbolic dimension name,
# or "?" for unknown; a shape is a tuple of axes (None = rank unknown).


@dataclass(frozen=True)
class NumValue:
    """Abstract value of one local binding."""

    #: ``"array"``, ``"scalar"``, or ``"top"`` (unknown/not numeric).
    kind: str = "top"
    dtype: str | None = None
    lo: float = -math.inf
    hi: float = math.inf
    #: Symbolic shape (``None`` = rank unknown).
    shape: tuple | None = None
    #: Whether the leading axis may have length 0 (mask/filter origin).
    maybe_empty: bool = False

    @property
    def rank(self) -> int | None:
        """Array rank when the shape is known."""
        return None if self.shape is None else len(self.shape)

    @property
    def interval(self) -> tuple[float, float]:
        """The ``[lo, hi]`` bounds as a pair."""
        return (self.lo, self.hi)


TOP = NumValue()


def _scalar(dtype: str | None, iv=_FULL) -> NumValue:
    return NumValue(kind="scalar", dtype=dtype, lo=iv[0], hi=iv[1])


def _array(dtype: str | None, iv=_FULL, shape=None,
           maybe_empty: bool = False) -> NumValue:
    return NumValue(kind="array", dtype=dtype, lo=iv[0], hi=iv[1],
                    shape=shape, maybe_empty=maybe_empty)


def join_values(a: NumValue, b: NumValue) -> NumValue:
    """Least upper bound of two abstract values."""
    if a == b:
        return a
    if a.kind != b.kind or a.kind == "top" or b.kind == "top":
        return TOP
    dtype = a.dtype if a.dtype == b.dtype else None
    lo, hi = _iv_hull(a.interval, b.interval)
    if a.shape is not None and b.shape is not None \
            and len(a.shape) == len(b.shape):
        shape = tuple(x if x == y else "?"
                      for x, y in zip(a.shape, b.shape))
    else:
        shape = None
    return NumValue(kind=a.kind, dtype=dtype, lo=lo, hi=hi, shape=shape,
                    maybe_empty=a.maybe_empty or b.maybe_empty)


class NumState:
    """Immutable name -> :class:`NumValue` environment.

    Absent names are implicitly ``TOP``; bindings that join to ``TOP``
    are dropped so structurally-equal states compare equal regardless
    of insertion history.
    """

    __slots__ = ("_items",)

    def __init__(self, items=()) -> None:
        self._items: tuple = tuple(sorted(
            (name, value) for name, value in items if value != TOP))

    def get(self, name: str) -> NumValue:
        """Abstract value of ``name`` (``TOP`` when untracked)."""
        for key, value in self._items:
            if key == name:
                return value
        return TOP

    def set(self, name: str, value: NumValue) -> "NumState":
        """A new state with ``name`` rebound to ``value``."""
        items = [(k, v) for k, v in self._items if k != name]
        if value != TOP:
            items.append((name, value))
        return NumState(items)

    def names(self) -> tuple:
        """All tracked (non-``TOP``) names."""
        return tuple(k for k, _ in self._items)

    def __eq__(self, other) -> bool:
        return isinstance(other, NumState) and self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NumState({dict(self._items)!r})"


#: Joined-interval changes tolerated per name before widening to the
#: full range.  Keeps every lattice chain finite (and far below the
#: solver's pass limit) no matter what a loop accumulates.
_WIDEN_AFTER = 4


# ----------------------------------------------------------------------
# Event sink (collector side-channel)
# ----------------------------------------------------------------------


def _rendered(node: ast.AST) -> str:
    text = ast.unparse(node)
    return text if len(text) <= 60 else text[:57] + "..."


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


class _EventSink:
    """Collects rule-relevant events during the replay pass.

    The evaluator emits into the sink only when one is attached — the
    fixed-point iteration runs with no sink, so events are recorded
    exactly once per reachable expression.
    """

    def __init__(self, bound_guarded: frozenset = frozenset(),
                 size_checked: frozenset = frozenset()) -> None:
        self.bound_guarded = bound_guarded
        self.size_checked = size_checked
        self.narrowing_casts: list[NarrowingCastFact] = []
        self.mixed_precision: list[MixedPrecisionFact] = []
        self.shape_mismatches: list[ShapeMismatchFact] = []
        self.small_indices: list[SmallIndexFact] = []
        self.empty_reductions: list[EmptyReductionFact] = []
        #: ``(lineno, col) -> NumValue`` for every ``return <expr>``.
        self.returns: dict[tuple[int, int], NumValue] = {}
        self._seen: set = set()

    def _once(self, key) -> bool:
        if key in self._seen:
            return False
        self._seen.add(key)
        return True

    def narrowing(self, node: ast.AST, src: str, dst: str,
                  provable: bool) -> None:
        """Record a narrowing cast (int guards consulted here)."""
        guarded = _kind(dst) in "iub" \
            and bool(_names_in(node) & self.bound_guarded)
        key = ("narrow", node.lineno, node.col_offset, src, dst)
        if self._once(key):
            self.narrowing_casts.append(NarrowingCastFact(
                lineno=node.lineno, col=node.col_offset + 1,
                src_dtype=src, dst_dtype=dst, provable=provable,
                guarded=guarded, rendered=_rendered(node)))

    def mixed(self, node: ast.AST, left: str, right: str) -> None:
        """Record a mixed-width float arithmetic op."""
        key = ("mixed", node.lineno, node.col_offset)
        if self._once(key):
            self.mixed_precision.append(MixedPrecisionFact(
                lineno=node.lineno, col=node.col_offset + 1,
                left_dtype=left, right_dtype=right,
                rendered=_rendered(node)))

    def mismatch(self, node: ast.AST, detail: str) -> None:
        """Record a proven broadcast/rank mismatch."""
        key = ("shape", node.lineno, node.col_offset)
        if self._once(key):
            self.shape_mismatches.append(ShapeMismatchFact(
                lineno=node.lineno, col=node.col_offset + 1,
                detail=detail, rendered=_rendered(node)))

    def small_index(self, node: ast.AST, index_dtype: str) -> None:
        """Record a gather through a small-dtype index tensor."""
        key = ("index", node.lineno, node.col_offset)
        if self._once(key):
            self.small_indices.append(SmallIndexFact(
                lineno=node.lineno, col=node.col_offset + 1,
                index_dtype=index_dtype, rendered=_rendered(node)))

    def empty_reduction(self, node: ast.AST, func: str,
                        operand: ast.AST) -> None:
        """Record a min/max-style reduction on a maybe-empty operand."""
        if _names_in(operand) & self.size_checked:
            return
        key = ("empty", node.lineno, node.col_offset)
        if self._once(key):
            self.empty_reductions.append(EmptyReductionFact(
                lineno=node.lineno, col=node.col_offset + 1,
                func=func, operand=_rendered(operand)))


# ----------------------------------------------------------------------
# Expression evaluator
# ----------------------------------------------------------------------

#: Reductions that raise on an empty operand.
_EMPTY_UNSAFE = {"min", "max", "amin", "amax", "argmin", "argmax",
                 "nanargmin", "nanargmax", "ptp"}

_REDUCTIONS = _EMPTY_UNSAFE | {"sum", "mean", "prod", "any", "all",
                               "std", "var", "median"}

_ELEMENTWISE = {"abs", "absolute", "negative", "sqrt", "exp", "log",
                "log2", "log10", "rint", "sign"}


def _call_tail(node: ast.Call) -> str | None:
    """Last attribute component (``np.searchsorted`` -> searchsorted)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _argument(call: ast.Call, position: int,
              keyword: str | None) -> ast.expr | None:
    if keyword is not None:
        for kw in call.keywords:
            if kw.arg == keyword:
                return kw.value
    if position < len(call.args):
        arg = call.args[position]
        if not isinstance(arg, ast.Starred):
            return arg
    return None


def _const_num(node: ast.expr | None) -> float | None:
    if isinstance(node, ast.Constant) \
            and isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool):
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_num(node.operand)
        return None if inner is None else -inner
    return None


class _Evaluator:
    """Evaluates expressions to :class:`NumValue` under a state.

    One instance is shared between the solver's transfer calls (no
    sink) and the collector replay (sink attached).  A per-op node
    cache guarantees each sub-expression is evaluated exactly once per
    transfer, so sink events never duplicate.
    """

    def __init__(self) -> None:
        self.sink: _EventSink | None = None
        self._cache: dict[int, NumValue] = {}

    def begin_op(self) -> None:
        """Reset the per-op memo (state is fixed within one op)."""
        self._cache.clear()

    # -- dispatch ------------------------------------------------------

    def eval(self, node: ast.expr | None, state: NumState) -> NumValue:
        """Abstract value of ``node`` in ``state``."""
        if node is None:
            return TOP
        cached = self._cache.get(id(node))
        if cached is not None:
            return cached
        value = self._eval(node, state)
        self._cache[id(node)] = value
        return value

    def _eval(self, node: ast.expr, state: NumState) -> NumValue:
        if isinstance(node, ast.Constant):
            return self._constant(node.value)
        if isinstance(node, ast.Name):
            return state.get(node.id)
        if isinstance(node, ast.UnaryOp):
            return self._unary(node, state)
        if isinstance(node, ast.BinOp):
            return self._binop(node, state)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.eval(value, state)
            return TOP
        if isinstance(node, ast.Compare):
            return self._compare(node, state)
        if isinstance(node, ast.IfExp):
            self.eval(node.test, state)
            return join_values(self.eval(node.body, state),
                               self.eval(node.orelse, state))
        if isinstance(node, ast.Call):
            return self._call(node, state)
        if isinstance(node, ast.Subscript):
            return self._subscript(node, state)
        if isinstance(node, ast.Attribute):
            return self._attribute(node, state)
        if isinstance(node, (ast.List, ast.Tuple)):
            for element in node.elts:
                if not isinstance(element, ast.Starred):
                    self.eval(element, state)
            return TOP
        return TOP

    # -- leaves --------------------------------------------------------

    @staticmethod
    def _constant(value) -> NumValue:
        if isinstance(value, bool):
            v = float(value)
            return _scalar("bool_", (v, v))
        if isinstance(value, int):
            return _scalar("int64", (float(value), float(value)))
        if isinstance(value, float):
            return _scalar("float64", (value, value))
        return TOP

    def _attribute(self, node: ast.Attribute, state: NumState) -> NumValue:
        base = self.eval(node.value, state)
        if node.attr == "T" and base.kind == "array":
            shape = None if base.shape is None else base.shape[::-1]
            return replace(base, shape=shape)
        if node.attr in ("size", "ndim"):
            return _scalar("int64", (0.0, math.inf))
        if node.attr == "dtype":
            return TOP
        return TOP

    # -- operators -----------------------------------------------------

    def _unary(self, node: ast.UnaryOp, state: NumState) -> NumValue:
        operand = self.eval(node.operand, state)
        if isinstance(node.op, ast.USub):
            return replace(operand, lo=-operand.hi, hi=-operand.lo)
        if isinstance(node.op, ast.UAdd):
            return operand
        if isinstance(node.op, ast.Not):
            return _scalar("bool_", (0.0, 1.0))
        return TOP if operand.kind == "top" \
            else replace(operand, lo=-math.inf, hi=math.inf)

    def _compare(self, node: ast.Compare, state: NumState) -> NumValue:
        values = [self.eval(node.left, state)]
        values += [self.eval(c, state) for c in node.comparators]
        arrays = [v for v in values if v.kind == "array"]
        if arrays:  # elementwise comparison yields a boolean mask
            shape = arrays[0].shape
            return _array("bool_", (0.0, 1.0), shape=shape)
        return _scalar("bool_", (0.0, 1.0))

    def _binop(self, node: ast.BinOp, state: NumState) -> NumValue:
        left = self.eval(node.left, state)
        right = self.eval(node.right, state)
        return self._combine(node, node.op, left, right)

    def _combine(self, node: ast.AST, op: ast.operator,
                 left: NumValue, right: NumValue) -> NumValue:
        # float32 x float64 array arithmetic silently upcasts — flag it
        # (scalar literals are weak in numpy promotion, so arrays only).
        if (self.sink is not None
                and left.kind == "array" and right.kind == "array"
                and left.dtype and right.dtype
                and _kind(left.dtype) == "f" == _kind(right.dtype)
                and _bits(left.dtype) != _bits(right.dtype)):
            self.sink.mixed(node, left.dtype, right.dtype)

        # Scalars broadcast as rank 0, so they never hide a mismatch
        # and never erase the array operand's shape.
        lshape = left.shape if left.kind == "array" else ()
        rshape = right.shape if right.kind == "array" else ()
        shape, mismatch = _broadcast(lshape, rshape)
        if mismatch and left.kind == "array" and right.kind == "array" \
                and self.sink is not None:
            self.sink.mismatch(node, mismatch)

        if left.kind == "top" and right.kind == "top":
            return TOP
        kind = "array" if "array" in (left.kind, right.kind) else (
            "scalar" if left.kind == right.kind == "scalar" else "top")
        if kind == "top":
            return TOP
        dtype = self._result_dtype(left, right)
        iv = self._op_interval(op, left, right, dtype)
        if isinstance(op, (ast.Div,)) and dtype is not None \
                and _kind(dtype) != "f":
            dtype = "float64"  # true division always yields floats
        maybe_empty = (left.maybe_empty and left.kind == "array") \
            or (right.maybe_empty and right.kind == "array")
        if kind == "scalar":
            return _scalar(dtype, iv)
        return _array(dtype, iv, shape=shape if not mismatch else None,
                      maybe_empty=maybe_empty)

    @staticmethod
    def _result_dtype(left: NumValue, right: NumValue) -> str | None:
        """Binary-op result dtype with weak-scalar promotion.

        A bare scalar adopts the array operand's dtype (NEP 50: python
        literals are weak), except a float scalar meeting an integer
        array, which floats the result.  Anything else goes through
        :func:`promote`.
        """
        if left.kind == "array" and right.kind == "scalar":
            arr, sc = left, right
        elif right.kind == "array" and left.kind == "scalar":
            arr, sc = right, left
        else:
            return promote(left.dtype, right.dtype)
        if arr.dtype is None or sc.dtype is None:
            return None
        if _kind(sc.dtype) == "f" and _kind(arr.dtype) in "iub":
            return "float64"
        return arr.dtype

    @staticmethod
    def _op_interval(op: ast.operator, left: NumValue, right: NumValue,
                     dtype: str | None) -> tuple[float, float]:
        a, b = left.interval, right.interval
        if isinstance(op, ast.Add):
            return _iv_add(a, b)
        if isinstance(op, ast.Sub):
            return _iv_sub(a, b)
        if isinstance(op, ast.Mult):
            return _iv_mul(a, b)
        if isinstance(op, ast.Mod):
            # x % c for a positive constant c is within [0, c-1]: the
            # canonical pre-cast wrap guard, so keep it tight.
            if b[0] == b[1] and b[0] > 0 and math.isfinite(b[0]):
                return (0.0, b[1] - 1.0)
            return _FULL
        if isinstance(op, ast.BitAnd):
            # x & mask with a non-negative constant mask bounds x.
            if b[0] == b[1] and b[0] >= 0 and math.isfinite(b[0]):
                return (0.0, b[1])
            if a[0] == a[1] and a[0] >= 0 and math.isfinite(a[0]):
                return (0.0, a[1])
            return _FULL
        if isinstance(op, ast.FloorDiv):
            if b[0] >= 1 and a[0] >= 0:
                return (0.0, a[1])
            return _FULL
        return _FULL

    # -- calls ---------------------------------------------------------

    def _call(self, node: ast.Call, state: NumState) -> NumValue:
        # Evaluate every sub-expression first so sink events fire even
        # inside calls the evaluator does not model.
        receiver = None
        if isinstance(node.func, ast.Attribute):
            receiver = self.eval(node.func.value, state)
        arg_values = [self.eval(a, state) for a in node.args
                      if not isinstance(a, ast.Starred)]
        for kw in node.keywords:
            self.eval(kw.value, state)

        tail = _call_tail(node)
        if tail is None:
            return TOP

        if isinstance(node.func, ast.Name):
            return self._builtin(node, tail, arg_values, state)

        # Method-style calls on an evaluated receiver.
        if tail == "astype":
            dst = _normalise_dtype(_argument(node, 0, "dtype"))
            return self._cast(node, receiver or TOP, dst)
        if tail in ("reshape", "ravel", "flatten"):
            return self._reshape(node, tail, receiver or TOP, state)
        if tail == "copy" and receiver is not None \
                and receiver.kind == "array":
            return receiver
        if tail in _REDUCTIONS and receiver is not None \
                and receiver.kind == "array":
            return self._reduction(node, tail, receiver,
                                   node.func.value, state)

        # Module-style numpy calls (np.zeros, np.searchsorted, ...).
        return self._np_call(node, tail, arg_values, state)

    def _builtin(self, node: ast.Call, tail: str,
                 arg_values: list[NumValue],
                 state: NumState) -> NumValue:
        first = arg_values[0] if arg_values else TOP
        if tail == "len":
            if first.shape and isinstance(first.shape[0], int):
                d = float(first.shape[0])
                return _scalar("int64", (d, d))
            return _scalar("int64", (0.0, math.inf))
        if tail == "int":
            return _scalar("int64", _iv(first.lo - 1, first.hi + 1))
        if tail == "float":
            return _scalar("float64", first.interval)
        if tail == "bool":
            return _scalar("bool_", (0.0, 1.0))
        if tail == "abs":
            return self._abs(first)
        if tail in ("min", "max") and len(arg_values) >= 2:
            iv = arg_values[0].interval
            for v in arg_values[1:]:
                if tail == "min":
                    iv = (min(iv[0], v.lo), min(iv[1], v.hi))
                else:
                    iv = (max(iv[0], v.lo), max(iv[1], v.hi))
            return _scalar(promote(arg_values[0].dtype,
                                   arg_values[1].dtype), iv)
        return self._np_call(node, tail, arg_values, state)

    @staticmethod
    def _abs(value: NumValue) -> NumValue:
        lo, hi = value.interval
        alo = 0.0 if lo <= 0.0 <= hi else min(abs(lo), abs(hi))
        ahi = max(abs(lo), abs(hi))
        if value.kind == "top":
            return TOP
        return replace(value, lo=alo, hi=ahi)

    def _np_call(self, node: ast.Call, tail: str,
                 arg_values: list[NumValue],
                 state: NumState) -> NumValue:
        first = arg_values[0] if arg_values else TOP

        if tail in ("zeros", "ones", "empty", "full"):
            return self._constructor(node, tail, state)
        if tail in ("zeros_like", "ones_like", "empty_like", "full_like"):
            dtype = _normalise_dtype(_argument(
                node, 2 if tail == "full_like" else 1, "dtype")) \
                or first.dtype
            if tail == "zeros_like":
                iv = (0.0, 0.0)
            elif tail == "ones_like":
                iv = (1.0, 1.0)
            elif tail == "full_like":
                c = _const_num(_argument(node, 1, "fill_value"))
                iv = (c, c) if c is not None else _FULL
            else:
                iv = dtype_range(dtype) if dtype in _DTYPES else _FULL
            return _array(dtype, iv, shape=first.shape)
        if tail == "arange":
            return self._arange(node)
        if tail == "linspace":
            start = _const_num(_argument(node, 0, "start"))
            stop = _const_num(_argument(node, 1, "stop"))
            iv = _iv(min(start, stop), max(start, stop)) \
                if start is not None and stop is not None else _FULL
            return _array("float64", iv, shape=("?",))
        if tail in ("asarray", "array", "ascontiguousarray", "asfarray"):
            dst = _normalise_dtype(_argument(node, 1, "dtype"))
            source = self._as_array_value(node, first)
            if dst is not None:
                return self._cast(node, source, dst)
            return source
        if tail in ("concatenate", "stack", "vstack", "hstack",
                    "column_stack"):
            return self._concat(node, tail, state)
        if tail == "where" and len(arg_values) == 3:
            joined = join_values(arg_values[1], arg_values[2])
            if joined.kind == "top":
                return _array(promote(arg_values[1].dtype,
                                      arg_values[2].dtype))
            return replace(joined, kind="array")
        if tail == "clip":
            lo_c = _const_num(_argument(node, 1, "a_min"))
            hi_c = _const_num(_argument(node, 2, "a_max"))
            lo = lo_c if lo_c is not None else first.lo
            hi = hi_c if hi_c is not None else first.hi
            base = first if first.kind != "top" else _array(None)
            return replace(base, lo=min(lo, hi), hi=max(lo, hi))
        if tail in ("minimum", "maximum") and len(arg_values) >= 2:
            a, b = arg_values[0], arg_values[1]
            if tail == "minimum":
                iv = _iv(min(a.lo, b.lo), min(a.hi, b.hi))
            else:
                iv = _iv(max(a.lo, b.lo), max(a.hi, b.hi))
            kind = "array" if "array" in (a.kind, b.kind) else "scalar"
            shape = a.shape if a.kind == "array" else b.shape
            return NumValue(kind=kind, dtype=promote(a.dtype, b.dtype),
                            lo=iv[0], hi=iv[1], shape=shape)
        if tail == "searchsorted":
            target = arg_values[1] if len(arg_values) > 1 else TOP
            return _array("int64", (0.0, math.inf), shape=target.shape)
        if tail in ("floor", "ceil", "round", "trunc"):
            if first.kind == "top":
                return _array("float64")
            return replace(first, lo=first.lo - 1.0, hi=first.hi + 1.0)
        if tail in ("abs", "absolute"):
            return self._abs(first)
        if tail == "sqrt":
            return replace(first, dtype=first.dtype if first.dtype
                           and _kind(first.dtype) == "f" else "float64",
                           lo=0.0, hi=math.inf) \
                if first.kind != "top" else _array("float64", (0.0, math.inf))
        if tail == "exp":
            base = first if first.kind != "top" else _array(None)
            return replace(base, dtype="float64", lo=0.0, hi=math.inf)
        if tail in _ELEMENTWISE:
            if first.kind == "top":
                return TOP
            return replace(first, lo=-math.inf, hi=math.inf)
        if tail == "unique":
            if first.kind == "top":
                return _array(None, shape=("?",))
            return _array(first.dtype, first.interval, shape=("?",),
                          maybe_empty=first.maybe_empty)
        if tail in ("argsort", "nonzero", "flatnonzero"):
            shape = first.shape if tail == "argsort" else ("?",)
            return _array("int64", (0.0, math.inf), shape=shape)
        if tail == "bincount":
            return _array("int64", (0.0, math.inf), shape=("?",))
        if tail == "cumsum":
            if first.kind == "top":
                return _array(None)
            return replace(first, kind="array",
                           lo=-math.inf, hi=math.inf)
        if tail in _REDUCTIONS and arg_values:
            operand_node = _argument(node, 0, "a")
            return self._reduction(node, tail, first, operand_node, state)
        return TOP

    def _as_array_value(self, node: ast.Call, first: NumValue) -> NumValue:
        """``asarray``-family result when no dtype is forced."""
        arg = _argument(node, 0, None)
        literal = self._literal_array(arg)
        if literal is not None:
            return literal
        if first.kind == "scalar":
            return _array(first.dtype, first.interval, shape=())
        if first.kind == "array":
            return first
        return _array(None)

    @staticmethod
    def _literal_array(node: ast.expr | None) -> NumValue | None:
        """Abstract value of a flat numeric list/tuple literal."""
        if not isinstance(node, (ast.List, ast.Tuple)) or not node.elts:
            return None
        values = [_const_num(e) for e in node.elts]
        if any(v is None for v in values):
            return None
        has_float = any(isinstance(e.value, float)
                        for e in node.elts
                        if isinstance(e, ast.Constant))
        return _array("float64" if has_float else "int64",
                      (min(values), max(values)),
                      shape=(len(values),))

    def _constructor(self, node: ast.Call, tail: str,
                     state: NumState) -> NumValue:
        dtype_node = _argument(node, 2 if tail == "full" else 1, "dtype")
        dtype = _normalise_dtype(dtype_node) if dtype_node is not None \
            else "float64"
        shape = _shape_literal(_argument(node, 0, "shape"))
        if tail == "zeros":
            iv = (0.0, 0.0)
        elif tail == "ones":
            iv = (1.0, 1.0)
        elif tail == "full":
            c = _const_num(_argument(node, 1, "fill_value"))
            iv = (c, c) if c is not None else _FULL
        else:  # empty: anything representable in the dtype
            iv = dtype_range(dtype) if dtype in _DTYPES else _FULL
        return _array(dtype, iv, shape=shape)

    def _arange(self, node: ast.Call) -> NumValue:
        args = [a for a in node.args if not isinstance(a, ast.Starred)]
        consts = [_const_num(a) for a in args]
        is_float = any(isinstance(a, ast.Constant)
                       and isinstance(a.value, float) for a in args)
        dtype = _normalise_dtype(_argument(node, 3, "dtype")) \
            or ("float64" if is_float else "int64")
        if len(consts) == 1 and consts[0] is not None:
            iv = _iv(0.0, consts[0])
        elif len(consts) >= 2 and None not in consts[:2]:
            iv = _iv(min(consts[0], consts[1]), max(consts[0], consts[1]))
        elif len(args) <= 1:
            iv = (0.0, math.inf)
        else:
            iv = _FULL
        return _array(dtype, iv, shape=("?",))

    def _cast(self, node: ast.AST, value: NumValue,
              dst: str | None) -> NumValue:
        kind = "array" if value.kind in ("array", "top") else value.kind
        if dst is None or dst not in _DTYPES:
            return NumValue(kind=kind, dtype=None, lo=value.lo,
                            hi=value.hi, shape=value.shape,
                            maybe_empty=value.maybe_empty)
        src = value.dtype
        iv = value.interval
        if src is not None and is_narrowing(src, dst):
            bounds = dtype_range(dst)
            # Float narrowing halves the mantissa: never value-provable.
            provable = _kind(dst) in "iub" and _iv_within(iv, bounds)
            if self.sink is not None:
                self.sink.narrowing(node, src, dst, provable)
            if not provable:
                iv = bounds
        elif src is not None and _kind(src) == "f" \
                and dst in _DTYPES and _kind(dst) in "iu":
            iv = _iv(iv[0] - 1.0, iv[1])  # truncation toward zero
        if dst in _DTYPES:
            bounds = dtype_range(dst)
            iv = _iv(max(iv[0], bounds[0]), min(iv[1], bounds[1]))
        return NumValue(kind=kind, dtype=dst, lo=iv[0], hi=iv[1],
                        shape=value.shape, maybe_empty=value.maybe_empty)

    def _reshape(self, node: ast.Call, tail: str, receiver: NumValue,
                 state: NumState) -> NumValue:
        if receiver.kind == "top":
            return _array(None)
        if tail in ("ravel", "flatten"):
            return replace(receiver, kind="array", shape=("?",))
        if len(node.args) > 1:  # x.reshape(2, 3) splat form
            shape = tuple(_axis_of(a) for a in node.args)
        else:
            shape = _shape_literal(_argument(node, 0, "shape"))
        return replace(receiver, kind="array", shape=shape)

    def _reduction(self, node: ast.Call, tail: str, operand: NumValue,
                   operand_node: ast.expr | None,
                   state: NumState) -> NumValue:
        if tail in _EMPTY_UNSAFE and operand.maybe_empty \
                and self.sink is not None and operand_node is not None:
            self.sink.empty_reduction(node, tail, operand_node)
        has_axis = _argument(node, 99, "axis") is not None
        if tail in ("argmin", "argmax", "nanargmin", "nanargmax"):
            result = _scalar("int64", (0.0, math.inf))
        elif tail in ("min", "max", "amin", "amax"):
            result = _scalar(operand.dtype, operand.interval)
        elif tail == "sum":
            dtype = operand.dtype
            if dtype is not None and _kind(dtype) in "iub":
                dtype = "int64"  # numpy widens integer sums
            iv = (0.0, math.inf) if operand.lo >= 0 else _FULL
            result = _scalar(dtype, iv)
        elif tail == "mean":
            dtype = operand.dtype \
                if operand.dtype and _kind(operand.dtype) == "f" \
                else "float64"
            result = _scalar(dtype, operand.interval)
        elif tail in ("any", "all"):
            result = _scalar("bool_", (0.0, 1.0))
        else:
            result = _scalar(None)
        if has_axis:
            return _array(result.dtype, result.interval)
        return result

    def _concat(self, node: ast.Call, tail: str,
                state: NumState) -> NumValue:
        seq = _argument(node, 0, None)
        if not isinstance(seq, (ast.List, ast.Tuple)):
            return _array(None)
        parts = [self.eval(e, state) for e in seq.elts
                 if not isinstance(e, ast.Starred)]
        arrays = [p for p in parts if p.kind == "array"]
        if tail == "concatenate":
            ranks = {p.rank for p in arrays if p.rank is not None}
            if len(ranks) > 1 and self.sink is not None:
                self.sink.mismatch(node, "concatenate of arrays with "
                                   f"ranks {sorted(ranks)}")
        dtype: str | None = None
        known = [p.dtype for p in parts if p.kind != "top"]
        if known and all(d is not None for d in known) \
            and len(known) == len(parts):
            dtype = known[0]
            for d in known[1:]:
                dtype = promote(dtype, d)
        iv = _FULL
        if parts and all(p.kind != "top" for p in parts):
            iv = parts[0].interval
            for p in parts[1:]:
                iv = _iv_hull(iv, p.interval)
        shape = None
        if tail == "concatenate" and arrays \
                and len(arrays) == len(parts):
            ranks = {p.rank for p in arrays}
            if len(ranks) == 1 and None not in ranks:
                rank = ranks.pop()
                shape = ("?",) * rank
        maybe_empty = bool(parts) and all(p.maybe_empty for p in parts)
        return _array(dtype, iv, shape=shape, maybe_empty=maybe_empty)

    # -- indexing ------------------------------------------------------

    def _subscript(self, node: ast.Subscript, state: NumState) -> NumValue:
        base = self.eval(node.value, state)
        return self._index(node, base, node.slice, state)

    def _index(self, node: ast.AST, base: NumValue, idx: ast.expr,
               state: NumState) -> NumValue:
        if isinstance(idx, ast.Slice):
            for part in (idx.lower, idx.upper, idx.step):
                self.eval(part, state)
            if base.kind != "array":
                return TOP
            shape = None if base.shape is None \
                else ("?",) + base.shape[1:]
            return replace(base, shape=shape)
        if isinstance(idx, ast.Tuple):
            result = base
            for element in idx.elts:
                result = self._index(node, result, element, state)
            return result
        value = self.eval(idx, state)
        if value.kind == "scalar":
            if base.kind != "array":
                return TOP
            if base.shape is not None and len(base.shape) > 1:
                return replace(base, shape=base.shape[1:])
            if base.shape is not None and len(base.shape) == 1:
                return _scalar(base.dtype, base.interval)
            return replace(base, shape=None)
        if value.kind == "array":
            if value.dtype == "bool_":
                # Mask selection: result length is data-dependent and
                # may be zero — the maybe-empty taint RPR505 consumes.
                return _array(base.dtype, base.interval, shape=("?",),
                              maybe_empty=True)
            if value.dtype is not None and _kind(value.dtype) in "iu" \
                    and _bits(value.dtype) <= 32 \
                    and self.sink is not None:
                bound = dtype_range(value.dtype)[1]
                if not (math.isfinite(value.hi) and value.hi < bound):
                    self.sink.small_index(node, value.dtype)
            return _array(base.dtype, base.interval, shape=value.shape,
                          maybe_empty=value.maybe_empty)
        return _array(base.dtype, base.interval) \
            if base.kind == "array" else TOP


def _axis_of(node: ast.expr) -> "int | str":
    c = _const_num(node)
    if c is not None and float(c).is_integer() and c >= 0:
        return int(c)
    if isinstance(node, ast.Name):
        return node.id
    return "?"


def _shape_literal(node: ast.expr | None) -> tuple | None:
    """Symbolic shape from a shape argument, ``None`` if unknowable."""
    if node is None:
        return None
    if isinstance(node, (ast.Tuple, ast.List)):
        return tuple(_axis_of(e) for e in node.elts)
    c = _const_num(node)
    if c is not None and float(c).is_integer() and c >= 0:
        return (int(c),)
    if isinstance(node, ast.Name):
        return (node.id,)
    return None  # e.g. np.zeros(X.shape): rank unknown


def _broadcast(a: tuple | None,
               b: tuple | None) -> tuple[tuple | None, str | None]:
    """Broadcast two symbolic shapes.

    Returns ``(result_shape, mismatch_detail)``.  The detail is set
    only for *proven* mismatches: two concrete, unequal, non-1 lengths
    on the same axis.  Symbolic names never prove a conflict — they
    join to ``"?"`` — so the check errs quiet, not wrong.
    """
    if a is None or b is None:
        return None, None  # unknown rank: nothing provable
    result = []
    for i in range(1, max(len(a), len(b)) + 1):
        da = a[-i] if i <= len(a) else 1
        db = b[-i] if i <= len(b) else 1
        if da == 1:
            result.append(db)
        elif db == 1:
            result.append(da)
        elif da == db:
            result.append(da)
        elif isinstance(da, int) and isinstance(db, int):
            return None, (f"shapes {_fmt_shape(a)} and {_fmt_shape(b)} "
                          f"cannot broadcast (axis -{i}: {da} vs {db})")
        else:
            result.append("?")
    return tuple(reversed(result)), None


def _fmt_shape(shape: tuple) -> str:
    return "(" + ", ".join(str(d) for d in shape) + ")"


# ----------------------------------------------------------------------
# The analysis
# ----------------------------------------------------------------------


class NumericAnalysis(ForwardAnalysis[NumState]):
    """Forward dtype/interval/shape analysis over one function."""

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._fn = fn
        self._ev = _Evaluator()
        self._lo_changes: dict[str, int] = {}
        self._hi_changes: dict[str, int] = {}
        self._last_joined: dict[str, tuple[float, float]] = {}

    @property
    def evaluator(self) -> _Evaluator:
        """The shared expression evaluator (sink attach point)."""
        return self._ev

    def initial(self) -> NumState:
        """Parameters seeded from their annotations (if any)."""
        items = []
        args = self._fn.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is None:
                continue
            try:
                text = ast.unparse(arg.annotation)
            except ValueError:  # pragma: no cover - malformed annotation
                continue
            if "ndarray" in text or "NDArray" in text:
                items.append((arg.arg, _array(None)))
            elif text == "int":
                items.append((arg.arg, _scalar("int64")))
            elif text == "float":
                items.append((arg.arg, _scalar("float64")))
            elif text == "bool":
                items.append((arg.arg, _scalar("bool_", (0.0, 1.0))))
        return NumState(items)

    def join(self, states: list[NumState]) -> NumState:
        """Pointwise join with per-name interval widening."""
        if len(states) == 1:
            return states[0]
        names: set[str] = set()
        for state in states:
            names.update(state.names())
        items = []
        for name in names:
            joined = states[0].get(name)
            for state in states[1:]:
                joined = join_values(joined, state.get(name))
            joined = self._widen(name, joined)
            items.append((name, joined))
        return NumState(items)

    def _widen(self, name: str, value: NumValue) -> NumValue:
        # One-sided: only a bound that keeps moving across joins is
        # widened to infinity; a stable bound (a loop counter's start,
        # say) survives, keeping casts on that side provable.  A
        # widened bound is absorbed by every later hull, so the
        # change counters go quiet and the chain stays finite.
        if value.kind == "top":
            return value
        iv = value.interval
        last = self._last_joined.get(name)
        if last is not None:
            if last[0] != iv[0]:
                self._lo_changes[name] = self._lo_changes.get(name, 0) + 1
            if last[1] != iv[1]:
                self._hi_changes[name] = self._hi_changes.get(name, 0) + 1
        lo, hi = iv
        if self._lo_changes.get(name, 0) > _WIDEN_AFTER:
            lo = -math.inf
        if self._hi_changes.get(name, 0) > _WIDEN_AFTER:
            hi = math.inf
        if (lo, hi) != iv:
            value = replace(value, lo=lo, hi=hi)
        self._last_joined[name] = (lo, hi)
        return value

    def transfer(self, op: Op, state: NumState) -> NumState:
        """Interpret one op abstractly."""
        self._ev.begin_op()
        node = op.node
        if op.kind == "for":
            return self._bind_for(node, state)
        if op.kind == "test":
            self._ev.eval(node.test, state)
            return state
        if op.kind == "enter":
            for item in node.items:
                self._ev.eval(item.context_expr, state)
                if item.optional_vars is not None:
                    for name in _target_names(item.optional_vars):
                        state = state.set(name, TOP)
            return state
        if op.kind != "stmt":
            return state
        if isinstance(node, ast.Assign):
            value = self._ev.eval(node.value, state)
            for target in node.targets:
                state = self._assign(target, value, state)
            return state
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                value = self._ev.eval(node.value, state)
                state = self._assign(node.target, value, state)
            return state
        if isinstance(node, ast.AugAssign):
            current = self._ev.eval(_load_of(node.target), state) \
                if isinstance(node.target, ast.Name) \
                else self._ev.eval(node.target.value, state) \
                if isinstance(node.target, ast.Subscript) else TOP
            delta = self._ev.eval(node.value, state)
            combined = self._ev._combine(node, node.op, current, delta)
            return self._assign(node.target, combined, state)
        if isinstance(node, ast.Return):
            if node.value is not None:
                value = self._ev.eval(node.value, state)
                sink = self._ev.sink
                if sink is not None:
                    key = (node.lineno, node.col_offset + 1)
                    sink.returns[key] = value
            return state
        if isinstance(node, (ast.Expr, ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._ev.eval(child, state)
            return state
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    state = state.set(target.id, TOP)
            return state
        return state

    def _assign(self, target: ast.expr, value: NumValue,
                state: NumState) -> NumState:
        if isinstance(target, ast.Name):
            return state.set(target.id, value)
        if isinstance(target, ast.Subscript):
            return self._store(target, value, state)
        if isinstance(target, (ast.Tuple, ast.List)):
            for name in _target_names(target):
                state = state.set(name, TOP)
            return state
        return state

    def _store(self, target: ast.Subscript, value: NumValue,
               state: NumState) -> NumState:
        """``base[idx] = value``: merge into the base conservatively."""
        self._ev.eval(target.slice, state) \
            if not isinstance(target.slice, ast.Slice) else None
        if not isinstance(target.value, ast.Name):
            return state
        base = state.get(target.value.id)
        if base.kind != "array":
            return state
        # Storing a known-wider value into a narrower array wraps just
        # like an explicit cast — same event, same rule.
        if base.dtype is not None and value.dtype is not None \
                and is_narrowing(value.dtype, base.dtype):
            bounds = dtype_range(base.dtype)
            provable = _kind(base.dtype) in "iub" \
                and _iv_within(value.interval, bounds)
            if self._ev.sink is not None:
                self._ev.sink.narrowing(target, value.dtype,
                                        base.dtype, provable)
        iv = _iv_hull(base.interval, value.interval)
        if base.dtype is not None and base.dtype in _DTYPES:
            bounds = dtype_range(base.dtype)
            iv = _iv(max(iv[0], bounds[0]), min(iv[1], bounds[1]))
        return state.set(target.value.id, replace(
            base, lo=iv[0], hi=iv[1]))

    def _bind_for(self, node: ast.For, state: NumState) -> NumState:
        target, it = node.target, node.iter
        if isinstance(it, ast.Call):
            tail = _call_tail(it)
            if tail == "range":
                value = self._range_value(it)
                for name in _target_names(target):
                    state = state.set(name, value)
                return state
            if tail == "enumerate" and isinstance(target, ast.Tuple) \
                    and len(target.elts) == 2:
                source = self._ev.eval(_argument(it, 0, None), state)
                element = _element_of(source)
                pairs = [(_scalar("int64", (0.0, math.inf))), element]
                for sub, val in zip(target.elts, pairs):
                    for name in _target_names(sub):
                        state = state.set(name, val)
                return state
        value = self._ev.eval(it, state)
        element = _element_of(value)
        if isinstance(target, ast.Name):
            return state.set(target.id, element)
        for name in _target_names(target):
            state = state.set(name, TOP)
        return state

    @staticmethod
    def _range_value(call: ast.Call) -> NumValue:
        args = [a for a in call.args if not isinstance(a, ast.Starred)]
        consts = [_const_num(a) for a in args]
        if len(consts) == 1:
            hi = consts[0] if consts[0] is not None else math.inf
            return _scalar("int64", (0.0, hi))
        if len(consts) >= 2 and None not in consts[:2]:
            return _scalar("int64", _iv(consts[0], consts[1]))
        return _scalar("int64")


def _element_of(value: NumValue) -> NumValue:
    """Abstract value of one element yielded by iterating ``value``."""
    if value.kind != "array":
        return TOP
    if value.shape is not None and len(value.shape) >= 2:
        return _array(value.dtype, value.interval,
                      shape=value.shape[1:])
    return _scalar(value.dtype, value.interval)


def _load_of(name: ast.Name) -> ast.Name:
    """A Load twin of a Store name node (for evaluating augtargets)."""
    twin = ast.Name(id=name.id, ctx=ast.Load())
    return ast.copy_location(twin, name)


def _target_names(target: ast.expr):
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


# ----------------------------------------------------------------------
# Guard prescan (flow-insensitive)
# ----------------------------------------------------------------------

_BOUNDING_CALLS = {"clip", "minimum", "maximum", "mod"}


def _own_body_walk(fn: ast.AST):
    """Walk ``fn``'s body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _collect_guards(fn) -> tuple[frozenset, frozenset]:
    """Names bound-guarded / size-checked anywhere in the body.

    Deliberately flow-insensitive: a bound check *anywhere* in the
    function is taken as evidence the author thought about the range.
    The analysis errs quiet rather than wrong.
    """
    bound: set[str] = set()
    size_checked: set[str] = set()
    for node in _own_body_walk(fn):
        tests = []
        if isinstance(node, (ast.If, ast.While)):
            tests.append(node.test)
        elif isinstance(node, ast.Assert):
            tests.append(node.test)
        for test in tests:
            for child in ast.walk(test):
                if isinstance(child, ast.Compare):
                    exprs = [child.left, *child.comparators]
                    if any(_const_num(e) is not None for e in exprs):
                        for e in exprs:
                            bound |= _names_in(e)
                if isinstance(child, ast.Attribute) \
                        and child.attr in ("size", "shape"):
                    size_checked |= _names_in(child.value)
                if isinstance(child, ast.Call) \
                        and isinstance(child.func, ast.Name) \
                        and child.func.id == "len" and child.args:
                    size_checked |= _names_in(child.args[0])
        if isinstance(node, ast.Call) \
                and _call_tail(node) in _BOUNDING_CALLS:
            for arg in node.args:
                if not isinstance(arg, ast.Starred):
                    bound |= _names_in(arg)
    return frozenset(bound), frozenset(size_checked)


# ----------------------------------------------------------------------
# Module-level attachment
# ----------------------------------------------------------------------


def attach_numeric_facts(facts: ModuleFacts, tree: ast.Module) -> None:
    """Populate the numeric fact fields on every function summary.

    Walks the module top level pairing AST definitions with the
    already-extracted :class:`FunctionFacts` in declaration order
    (the same contract ``attach_concurrency_facts`` relies on); any
    mismatch degrades to attaching nothing rather than misattributing.
    """
    functions = iter(facts.functions)
    classes = iter(facts.classes)
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            ff = next(functions, None)
            if ff is None or ff.name != stmt.name:
                return
            _attach_function(stmt, ff)
        elif isinstance(stmt, ast.ClassDef):
            cf = next(classes, None)
            if cf is None or cf.name != stmt.name:
                return
            methods = iter(cf.methods)
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                    mf = next(methods, None)
                    if mf is None or mf.name != sub.name:
                        return
                    _attach_function(sub, mf)


def _attach_function(fn, ff: FunctionFacts) -> None:
    cfg = build_cfg(fn)
    analysis = NumericAnalysis(fn)
    solution = solve(cfg, analysis)
    sink = _EventSink(*_collect_guards(fn))
    analysis.evaluator.sink = sink
    try:
        for block_id in cfg.rpo():
            if block_id not in solution.block_in:
                continue
            state = solution.block_in[block_id]
            for op in cfg.blocks[block_id].ops:
                state = analysis.transfer(op, state)
    finally:
        analysis.evaluator.sink = None
    ff.narrowing_casts = sink.narrowing_casts
    ff.mixed_precision = sink.mixed_precision
    ff.shape_mismatches = sink.shape_mismatches
    ff.small_indices = sink.small_indices
    ff.empty_reductions = sink.empty_reductions
    _refine_returns(ff, sink)


def _refine_returns(ff: FunctionFacts, sink: _EventSink) -> None:
    """Fill dtype/rank the syntactic return classifier left unknown.

    Only strengthens ``"array"``/``"other"`` returns into arrays with
    dataflow-derived dtype and rank — the facts RPR106/RPR107 chase
    through helpers.  Never overwrites a syntactically-known value.
    """
    for i, ret in enumerate(ff.returns):
        value = sink.returns.get((ret.lineno, ret.col))
        if value is None or value.kind != "array":
            continue
        if ret.kind not in ("array", "other"):
            continue
        dtype = ret.dtype if ret.dtype is not None else value.dtype
        rank = ret.rank if ret.rank is not None else value.rank
        if dtype != ret.dtype or rank != ret.rank:
            ff.returns[i] = replace(ret, kind="array", dtype=dtype,
                                    rank=rank)
