"""Per-function control-flow graphs built from the AST.

A :class:`CFG` is the substrate of the dataflow pass: basic blocks of
linearised :class:`Op` entries connected by branch, loop, exception,
and fall-through edges.  ``build_cfg`` handles ``if``/``for``/``while``/
``try``/``with`` plus ``break``/``continue``/``return``/``raise``; the
remaining statement kinds are opaque single ops.

``with`` statements are desugared into an ``enter`` op (context
expressions evaluated, locks acquired), the body blocks, and an ``exit``
op on the normal fall-through path.  Early exits (``return`` inside a
``with``) jump straight to their target without passing the ``exit``
op — the lock analysis tolerates this because its must-hold join
intersects states at merge points, so an "escaped" acquisition never
survives past a join with a lock-free path.

Exception edges are conservative: every block created inside a ``try``
body gets an edge to the handler-dispatch block, so a handler's entry
state joins every intermediate state of the body.  ``finally`` bodies
run on the joined normal/handler paths (the re-raise path through
``finally`` is approximated away).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["Op", "Block", "CFG", "build_cfg"]


@dataclass(frozen=True)
class Op:
    """One linearised operation inside a basic block.

    ``kind`` is one of:

    * ``"stmt"`` — a simple statement (assignments, expressions,
      ``return``/``raise`` carrying their value expressions, ...);
    * ``"test"`` — the condition of an ``if`` or ``while`` (``node`` is
      the branching statement; only ``node.test`` is evaluated here);
    * ``"for"`` — a ``for`` loop head (``node.iter`` evaluated,
      ``node.target`` bound);
    * ``"enter"`` / ``"exit"`` — a ``with`` statement's context entry
      (acquisition) and normal-path exit (release); ``node`` is the
      ``ast.With``/``ast.AsyncWith``.
    """

    kind: str
    node: ast.AST


@dataclass
class Block:
    """A basic block: straight-line ops plus ordered edge lists."""

    block_id: int
    label: str
    ops: list[Op] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self, blocks: dict[int, Block], entry_id: int,
                 exit_id: int) -> None:
        self.blocks = blocks
        self.entry_id = entry_id
        self.exit_id = exit_id

    def rpo(self) -> list[int]:
        """Block ids in reverse post-order from the entry block.

        The iteration order the fixed-point solver uses: predecessors
        before successors except across back edges.  Blocks unreachable
        from the entry are omitted.
        """
        seen: set[int] = set()
        order: list[int] = []
        stack: list[tuple[int, int]] = [(self.entry_id, 0)]
        seen.add(self.entry_id)
        while stack:
            block_id, edge = stack[-1]
            succs = self.blocks[block_id].succs
            if edge < len(succs):
                stack[-1] = (block_id, edge + 1)
                target = succs[edge]
                if target not in seen:
                    seen.add(target)
                    stack.append((target, 0))
            else:
                stack.pop()
                order.append(block_id)
        order.reverse()
        return order


@dataclass
class _LoopTargets:
    """Where ``break``/``continue``/``return``/``raise`` edges point."""

    break_to: int | None
    continue_to: int | None
    return_to: int
    raise_to: int


class _Builder:
    def __init__(self) -> None:
        self._blocks: dict[int, Block] = {}
        self._next_id = 0

    def new_block(self, label: str) -> Block:
        block = Block(block_id=self._next_id, label=label)
        self._blocks[self._next_id] = block
        self._next_id += 1
        return block

    def edge(self, src: Block, dst_id: int) -> None:
        if dst_id not in src.succs:
            src.succs.append(dst_id)

    def build(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
        entry = self.new_block("entry")
        exit_block = self.new_block("exit")
        targets = _LoopTargets(break_to=None, continue_to=None,
                               return_to=exit_block.block_id,
                               raise_to=exit_block.block_id)
        end = self._stmts(fn.body, entry, targets)
        if end is not None:
            self.edge(end, exit_block.block_id)
        for block in self._blocks.values():
            for succ in block.succs:
                preds = self._blocks[succ].preds
                if block.block_id not in preds:
                    preds.append(block.block_id)
        return CFG(self._blocks, entry.block_id, exit_block.block_id)

    # ------------------------------------------------------------------

    def _stmts(self, stmts: list[ast.stmt], current: Block,
               targets: _LoopTargets) -> Block | None:
        """Append ``stmts`` starting in ``current``; return the block
        control falls out of, or ``None`` when every path terminates."""
        for stmt in stmts:
            if current is None:
                # Dead code after a terminator: invisible to the
                # analyses, exactly like it is to the interpreter.
                return None
            current = self._stmt(stmt, current, targets)
        return current

    def _stmt(self, stmt: ast.stmt, current: Block,
              targets: _LoopTargets) -> Block | None:
        if isinstance(stmt, ast.If):
            return self._if(stmt, current, targets)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, current, targets)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, current, targets)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, current, targets)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current, targets)
        if isinstance(stmt, ast.Return):
            current.ops.append(Op("stmt", stmt))
            self.edge(current, targets.return_to)
            return None
        if isinstance(stmt, ast.Raise):
            current.ops.append(Op("stmt", stmt))
            self.edge(current, targets.raise_to)
            return None
        if isinstance(stmt, ast.Break):
            if targets.break_to is not None:
                self.edge(current, targets.break_to)
            return None
        if isinstance(stmt, ast.Continue):
            if targets.continue_to is not None:
                self.edge(current, targets.continue_to)
            return None
        # Everything else — assignments, expression statements, nested
        # def/class (opaque), imports, asserts, match — is one op.
        current.ops.append(Op("stmt", stmt))
        return current

    def _if(self, stmt: ast.If, current: Block,
            targets: _LoopTargets) -> Block | None:
        current.ops.append(Op("test", stmt))
        then_block = self.new_block("if.then")
        self.edge(current, then_block.block_id)
        then_end = self._stmts(stmt.body, then_block, targets)
        if stmt.orelse:
            else_block = self.new_block("if.else")
            self.edge(current, else_block.block_id)
            else_end = self._stmts(stmt.orelse, else_block, targets)
        else:
            else_end = current
        if then_end is None and else_end is None:
            return None
        join = self.new_block("if.join")
        for end in (then_end, else_end):
            if end is not None:
                self.edge(end, join.block_id)
        return join

    def _while(self, stmt: ast.While, current: Block,
               targets: _LoopTargets) -> Block | None:
        head = self.new_block("while.head")
        self.edge(current, head.block_id)
        head.ops.append(Op("test", stmt))
        after = self.new_block("while.after")
        body = self.new_block("while.body")
        self.edge(head, body.block_id)
        self.edge(head, after.block_id)
        loop_targets = _LoopTargets(break_to=after.block_id,
                                    continue_to=head.block_id,
                                    return_to=targets.return_to,
                                    raise_to=targets.raise_to)
        body_end = self._stmts(stmt.body, body, loop_targets)
        if body_end is not None:
            self.edge(body_end, head.block_id)
        return self._stmts(stmt.orelse, after, targets)

    def _for(self, stmt: ast.For | ast.AsyncFor, current: Block,
             targets: _LoopTargets) -> Block | None:
        head = self.new_block("for.head")
        self.edge(current, head.block_id)
        head.ops.append(Op("for", stmt))
        after = self.new_block("for.after")
        body = self.new_block("for.body")
        self.edge(head, body.block_id)
        self.edge(head, after.block_id)
        loop_targets = _LoopTargets(break_to=after.block_id,
                                    continue_to=head.block_id,
                                    return_to=targets.return_to,
                                    raise_to=targets.raise_to)
        body_end = self._stmts(stmt.body, body, loop_targets)
        if body_end is not None:
            self.edge(body_end, head.block_id)
        return self._stmts(stmt.orelse, after, targets)

    def _with(self, stmt: ast.With | ast.AsyncWith, current: Block,
              targets: _LoopTargets) -> Block | None:
        current.ops.append(Op("enter", stmt))
        body = self.new_block("with.body")
        self.edge(current, body.block_id)
        body_end = self._stmts(stmt.body, body, targets)
        if body_end is None:
            return None
        body_end.ops.append(Op("exit", stmt))
        return body_end

    def _try(self, stmt: ast.Try, current: Block,
             targets: _LoopTargets) -> Block | None:
        dispatch = self.new_block("try.dispatch")
        body = self.new_block("try.body")
        self.edge(current, body.block_id)
        inner_targets = _LoopTargets(break_to=targets.break_to,
                                     continue_to=targets.continue_to,
                                     return_to=targets.return_to,
                                     raise_to=dispatch.block_id)
        first_body_id = body.block_id
        body_end = self._stmts(stmt.body, body, inner_targets)
        # Conservative exception edges: a raise can interrupt the body
        # at any point, so every block materialised for it reaches the
        # handler dispatch.
        for block_id in range(first_body_id, self._next_id):
            if block_id != dispatch.block_id:
                self.edge(self._blocks[block_id], dispatch.block_id)
        if body_end is not None and stmt.orelse:
            body_end = self._stmts(stmt.orelse, body_end, inner_targets)
        ends = [body_end]
        for handler in stmt.handlers:
            handler_block = self.new_block("except")
            self.edge(dispatch, handler_block.block_id)
            ends.append(self._stmts(handler.body, handler_block, targets))
        if not stmt.handlers:
            # try/finally: the exception propagates past this statement.
            self.edge(dispatch, targets.raise_to)
        live = [end for end in ends if end is not None]
        if stmt.finalbody:
            final = self.new_block("finally")
            for end in live:
                self.edge(end, final.block_id)
            if not stmt.handlers:
                # The finally body also runs on the propagation path.
                self.edge(dispatch, final.block_id)
            return self._stmts(stmt.finalbody, final, targets)
        if not live:
            return None
        join = self.new_block("try.join")
        for end in live:
            self.edge(end, join.block_id)
        return join


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the control-flow graph of one function definition."""
    return _Builder().build(fn)
