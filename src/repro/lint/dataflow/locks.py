"""The lock-state lattice: which locks are *must-held* at each point.

The state is a frozenset of ``(lock_token, region)`` pairs — the lock
expression as written (``"self._lock"``, ``"_REGISTRY_LOCK"``) plus the
source position of the acquisition that opened the current region.
Carrying the region, not just the token, is what lets the lazy-init
rule distinguish "checked and written under *one* continuous lock
region" from "checked under the lock, released, re-acquired, written" —
the latter is the classic non-atomic check-then-act.

The join is set intersection: a lock is held at a merge point only if
it is held on *every* incoming path (must-analysis).  That also makes
the ``with``-desugaring approximation in :mod:`~repro.lint.dataflow.
cfg` safe — an acquisition that escapes a ``with`` body through an
early ``return`` edge dies at the first join with a lock-free path.

Lock recognition combines declared knowledge (attributes assigned
``threading.Lock()``/``RLock()`` in the class, module globals bound to
lock constructors) with a naming heuristic (the final path segment
contains ``lock``), so test fixtures and factory-created locks behave
without declarations.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.dataflow.cfg import Op

__all__ = ["LockModel", "LockStateAnalysis", "HeldState", "Region",
           "LOCK_CTORS", "held_tokens", "lock_token", "op_expressions",
           "classify_blocking"]

#: Source position of the acquisition opening a lock region.
Region = tuple[int, int]

#: The lattice element: must-held ``(token, region)`` pairs.
HeldState = frozenset

#: Constructor tails recognised as lock factories.
LOCK_CTORS = frozenset({"Lock", "RLock"})

#: Method tails that block regardless of receiver.
_BLOCKING_ANY = frozenset({"sleep", "urlopen", "result", "wait",
                           "read_text", "write_text", "read_bytes",
                           "write_bytes"})

#: Bare-name calls that block (I/O).
_BLOCKING_BARE = frozenset({"open", "urlopen", "sleep"})

#: Receiver substrings marking ``.join()`` as a thread join (and not
#: ``str.join``/``os.path.join``).
_THREADY = ("thread", "worker", "proc", "pool")


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class LockModel:
    """Decides which expressions denote locks in one function's scope."""

    def __init__(self, self_locks: Iterable[str] = (),
                 global_locks: Iterable[str] = ()) -> None:
        #: ``self.<attr>`` tokens of declared class-owned locks.
        self.self_tokens = {f"self.{name}" for name in self_locks}
        #: Module-global lock binding names.
        self.global_names = set(global_locks)

    def is_lock(self, token: str) -> bool:
        """Whether a dotted token denotes a lock object."""
        if token in self.self_tokens or token in self.global_names:
            return True
        tail = token.rpartition(".")[2]
        return "lock" in tail.lower()


def lock_token(node: ast.expr, model: LockModel) -> str | None:
    """The lock token of an expression, or ``None`` if it is not one."""
    dotted = _dotted(node)
    if dotted is not None and model.is_lock(dotted):
        return dotted
    return None


def held_tokens(state: HeldState) -> tuple[str, ...]:
    """The sorted lock tokens of a held-state (regions dropped)."""
    return tuple(sorted({token for token, _ in state}))


def _own_expr_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk an expression/statement without entering nested defs."""
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef, ast.Lambda)):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


def op_expressions(op: Op) -> Iterator[ast.AST]:
    """The AST region an op evaluates (what transfer functions scan)."""
    node = op.node
    if op.kind == "stmt":
        yield from _own_expr_walk(node)
    elif op.kind == "test":
        yield from _own_expr_walk(node.test)
    elif op.kind == "for":
        yield from _own_expr_walk(node.iter)
    # "enter"/"exit" context expressions are handled structurally.


class LockStateAnalysis:
    """Forward must-analysis over the lock-region lattice."""

    def __init__(self, model: LockModel) -> None:
        self.model = model

    def initial(self) -> HeldState:
        """Nothing is held at function entry."""
        return frozenset()

    def join(self, states: list[HeldState]) -> HeldState:
        """Intersect: a lock is held only if held on *every* path."""
        result = states[0]
        for state in states[1:]:
            result = result & state
        return result

    def transfer(self, op: Op, state: HeldState) -> HeldState:
        """Apply ``op``'s acquire/release effects to ``state``."""
        if op.kind == "enter":
            for item in op.node.items:
                token = lock_token(item.context_expr, self.model)
                if token is not None:
                    expr = item.context_expr
                    state = state | {(token,
                                      (expr.lineno, expr.col_offset))}
            return state
        if op.kind == "exit":
            released = {lock_token(item.context_expr, self.model)
                        for item in op.node.items}
            released.discard(None)
            return frozenset(pair for pair in state
                             if pair[0] not in released)
        for child in op_expressions(op):
            if not (isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)):
                continue
            token = lock_token(child.func.value, self.model)
            if token is None:
                continue
            if child.func.attr == "acquire":
                state = state | {(token,
                                  (child.lineno, child.col_offset))}
            elif child.func.attr == "release":
                state = frozenset(pair for pair in state
                                  if pair[0] != token)
        return state


def classify_blocking(call: ast.Call,
                      extra: Iterable[str] = ()) -> str | None:
    """Rendered callee when ``call`` is a known blocking operation.

    The catalogue is deliberately narrow — sleeps, future/thread waits,
    queue gets, file and HTTP I/O — because a false "blocking" tag on a
    cheap call makes every held-lock region noisy.  Projects extend it
    through the ``blocking-calls`` config key (``extra`` here).
    """
    extra_set = set(extra)
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in _BLOCKING_BARE or func.id in extra_set:
            return func.id
        return None
    if not isinstance(func, ast.Attribute):
        return None
    dotted = _dotted(func)
    rendered = dotted if dotted is not None else f"<expr>.{func.attr}"
    tail = func.attr
    if tail in extra_set or (dotted is not None and dotted in extra_set):
        return rendered
    if tail in _BLOCKING_ANY:
        return rendered
    receiver = _dotted(func.value)
    receiver_lower = (receiver or "").lower()
    if tail == "get" and "queue" in receiver_lower:
        return rendered
    if tail == "join" and any(k in receiver_lower for k in _THREADY):
        return rendered
    return None
