"""Generic forward dataflow solving over a :class:`~repro.lint.dataflow.
cfg.CFG`, plus the reaching-definitions instance.

An analysis supplies an initial state, a join over predecessor states,
and a per-op transfer function; :func:`solve` iterates the blocks in
reverse post-order until the fixed point.  States must be immutable
values with structural equality (frozensets here) so convergence is
detected by comparison.

:class:`ReachingDefinitions` is the classic may-analysis over local
names: at each op, which assignments may have produced the current
value of each name.  The concurrency rules use it to trace a guard
check like ``if handle is not None:`` back to the guarded attribute the
local was loaded from.
"""

from __future__ import annotations

import ast
from typing import Generic, Hashable, Iterator, TypeVar

from repro.lint.dataflow.cfg import CFG, Op

__all__ = ["ForwardAnalysis", "Solution", "State", "solve",
           "iter_op_states", "ReachingDefinitions", "DefSite"]

State = TypeVar("State", bound=Hashable)

#: Iteration safety valve; real functions converge in a handful of
#: passes (lattice heights here are tiny).
_MAX_PASSES = 64


class ForwardAnalysis(Generic[State]):
    """Interface a forward dataflow analysis implements."""

    def initial(self) -> State:
        """State on entry to the function."""
        raise NotImplementedError

    def join(self, states: list[State]) -> State:
        """Merge predecessor out-states at a block boundary."""
        raise NotImplementedError

    def transfer(self, op: Op, state: State) -> State:
        """State after executing ``op`` in ``state``."""
        raise NotImplementedError


class Solution(Generic[State]):
    """Fixed-point result: in/out state per reachable block."""

    def __init__(self, block_in: dict[int, State],
                 block_out: dict[int, State]) -> None:
        self.block_in = block_in
        self.block_out = block_out


def solve(cfg: CFG, analysis: ForwardAnalysis[State]) -> Solution[State]:
    """Iterate ``analysis`` over ``cfg`` to its forward fixed point.

    Blocks unreachable from the entry stay absent from the solution
    (optimistic treatment: they contribute nothing to joins).
    """
    order = cfg.rpo()
    block_in: dict[int, State] = {}
    block_out: dict[int, State] = {}
    for _ in range(_MAX_PASSES):
        changed = False
        for block_id in order:
            block = cfg.blocks[block_id]
            if block_id == cfg.entry_id:
                in_state = analysis.initial()
            else:
                pred_states = [block_out[p] for p in block.preds
                               if p in block_out]
                if not pred_states:
                    continue
                in_state = analysis.join(pred_states)
            out_state = in_state
            for op in block.ops:
                out_state = analysis.transfer(op, out_state)
            if (block_in.get(block_id) != in_state
                    or block_out.get(block_id) != out_state):
                block_in[block_id] = in_state
                block_out[block_id] = out_state
                changed = True
        if not changed:
            break
    return Solution(block_in, block_out)


def iter_op_states(cfg: CFG, analysis: ForwardAnalysis[State],
                   solution: Solution[State]
                   ) -> Iterator[tuple[Op, State]]:
    """Yield every reachable op with the state *before* it executes."""
    for block_id in cfg.rpo():
        if block_id not in solution.block_in:
            continue
        state = solution.block_in[block_id]
        for op in cfg.blocks[block_id].ops:
            yield op, state
            state = analysis.transfer(op, state)


# ----------------------------------------------------------------------
# Reaching definitions
# ----------------------------------------------------------------------

#: One definition site of a local name: ``(name, lineno, col)``.
DefSite = tuple[str, int, int]


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


class ReachingDefinitions(ForwardAnalysis[frozenset]):
    """May-analysis: which definitions reach each program point.

    The state is a frozenset of :data:`DefSite`; the join is union.
    Parameters count as definitions at line 0.  ``values_of`` maps a
    def site back to the assigned value expression (``None`` for
    parameters and non-``Assign`` bindings), which is what lets a rule
    chase ``handle = self._handles.get(key)`` from a later read.
    """

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._params = frozenset(
            (arg.arg, 0, 0) for arg in [
                *fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs,
                *([fn.args.vararg] if fn.args.vararg else []),
                *([fn.args.kwarg] if fn.args.kwarg else []),
            ])
        #: def site -> assigned value expression (``None`` if unknown).
        self.values_of: dict[DefSite, ast.expr | None] = {
            site: None for site in self._params}

    def initial(self) -> frozenset:
        """Every parameter reaches the entry (def site line 0)."""
        return self._params

    def join(self, states: list[frozenset]) -> frozenset:
        """Union: a definition reaches if it reaches on *any* path."""
        return frozenset().union(*states)

    def transfer(self, op: Op, state: frozenset) -> frozenset:
        """Kill same-name definitions, generate ``op``'s own."""
        for name, value in self._definitions(op):
            site = (name, op.node.lineno, op.node.col_offset)
            self.values_of[site] = value
            state = frozenset(s for s in state if s[0] != name) | {site}
        return state

    def _definitions(self, op: Op) -> Iterator[tuple[str,
                                                     ast.expr | None]]:
        node = op.node
        if op.kind == "stmt":
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    single = isinstance(target, ast.Name) \
                        and len(node.targets) == 1
                    for name in _target_names(target):
                        yield name, node.value if single else None
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                for name in _target_names(node.target):
                    yield name, node.value
            elif isinstance(node, ast.AugAssign):
                for name in _target_names(node.target):
                    yield name, None
        elif op.kind == "for":
            for name in _target_names(node.target):
                yield name, None
        elif op.kind == "enter":
            for item in node.items:
                if item.optional_vars is not None:
                    for name in _target_names(item.optional_vars):
                        yield name, None
        # Walrus bindings can hide anywhere an expression can.
        scan: ast.AST | None
        if op.kind == "test":
            scan = node.test
        elif op.kind == "for":
            scan = node.iter
        elif op.kind in ("enter", "exit"):
            scan = None
        else:
            scan = node
        if scan is not None:
            for child in ast.walk(scan):
                if isinstance(child, ast.NamedExpr):
                    for name in _target_names(child.target):
                        yield name, child.value

    def resolve(self, state: frozenset, name: str) -> ast.expr | None:
        """The unique reaching value of ``name``, or ``None``.

        Returns the assigned expression only when exactly one definition
        reaches and its value is known — ambiguity stays invisible,
        keeping downstream rules quiet rather than wrong.
        """
        sites = [site for site in state if site[0] == name]
        if len(sites) != 1:
            return None
        return self.values_of.get(sites[0])
