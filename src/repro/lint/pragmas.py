"""Inline suppression pragmas.

A finding is suppressed by a comment on the same physical line::

    qualifying = np.nonzero(entries == 1.0)[0]  # repro: ignore[RPR102]

Several codes may be listed, separated by commas or whitespace
(``# repro: ignore[RPR102,RPR302]`` and ``# repro: ignore[RPR102
RPR302]`` are equivalent); the bare form ``# repro: ignore`` suppresses
every rule on that line.  The pragma must sit on the line the finding
is reported at (the node's ``lineno``), mirroring how ``# noqa``
behaves — with one ergonomic exception: a pragma on a decorator line
also covers the decorated ``def``/``class`` statement, because findings
for a decorated function anchor at the ``def`` line while the natural
place to write the comment is often the decorator above it
(:func:`decorator_pragmas`).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize

__all__ = ["ALL_CODES", "parse_pragmas", "decorator_pragmas",
           "is_suppressed"]

#: Sentinel entry meaning "every code" (the bare ``# repro: ignore``).
ALL_CODES = "*"

_PRAGMA = re.compile(
    r"#\s*repro:\s*ignore"
    r"(?:\[(?P<codes>[A-Z0-9,\s]+)\])?")


def parse_pragmas(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> suppressed codes for every pragma in ``source``.

    Comments are found with :mod:`tokenize` so pragmas inside string
    literals are not misread.  Unreadable sources yield no pragmas (the
    engine reports the parse failure separately).
    """
    pragmas: dict[int, frozenset[str]] = {}
    readline = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(readline))
    except (tokenize.TokenError, SyntaxError, ValueError):
        return pragmas
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA.search(token.string)
        if match is None:
            continue
        raw = match.group("codes")
        if raw is None:
            codes = frozenset({ALL_CODES})
        else:
            codes = frozenset(
                part for part in re.split(r"[,\s]+", raw) if part)
            if not codes:
                codes = frozenset({ALL_CODES})
        line = token.start[0]
        pragmas[line] = pragmas.get(line, frozenset()) | codes
    return pragmas


def decorator_pragmas(tree: ast.AST,
                      pragmas: dict[int, frozenset[str]]
                      ) -> dict[int, frozenset[str]]:
    """Extend ``pragmas`` so decorator-line pragmas cover their target.

    Findings for a decorated function or class anchor at the ``def`` /
    ``class`` line (the node's ``lineno``), but a suppression comment is
    often most readable on the decorator above it.  For every decorated
    definition, codes from any of its decorator lines are merged into
    the definition line's entry.  The input mapping is not mutated.
    """
    merged = dict(pragmas)
    for node in ast.walk(tree):
        decorators = getattr(node, "decorator_list", None)
        if not decorators:
            continue
        target_line = node.lineno
        for decorator in decorators:
            for line in range(decorator.lineno,
                              (decorator.end_lineno or decorator.lineno)
                              + 1):
                codes = pragmas.get(line)
                if codes:
                    merged[target_line] = \
                        merged.get(target_line, frozenset()) | codes
    return merged


def is_suppressed(pragmas: dict[int, frozenset[str]],
                  line: int, code: str) -> bool:
    """True iff a pragma on ``line`` suppresses ``code``."""
    codes = pragmas.get(line)
    return codes is not None and (code in codes or ALL_CODES in codes)
