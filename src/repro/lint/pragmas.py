"""Inline suppression pragmas.

A finding is suppressed by a comment on the same physical line::

    qualifying = np.nonzero(entries == 1.0)[0]  # repro: ignore[RPR102]

Several codes may be listed (``# repro: ignore[RPR102,RPR302]``); the
bare form ``# repro: ignore`` suppresses every rule on that line.  The
pragma must sit on the line the finding is reported at (the node's
``lineno``), mirroring how ``# noqa`` behaves.
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["ALL_CODES", "parse_pragmas", "is_suppressed"]

#: Sentinel entry meaning "every code" (the bare ``# repro: ignore``).
ALL_CODES = "*"

_PRAGMA = re.compile(
    r"#\s*repro:\s*ignore"
    r"(?:\[(?P<codes>[A-Z0-9,\s]+)\])?")


def parse_pragmas(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> suppressed codes for every pragma in ``source``.

    Comments are found with :mod:`tokenize` so pragmas inside string
    literals are not misread.  Unreadable sources yield no pragmas (the
    engine reports the parse failure separately).
    """
    pragmas: dict[int, frozenset[str]] = {}
    readline = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(readline))
    except (tokenize.TokenError, SyntaxError, ValueError):
        return pragmas
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA.search(token.string)
        if match is None:
            continue
        raw = match.group("codes")
        if raw is None:
            codes = frozenset({ALL_CODES})
        else:
            codes = frozenset(
                part.strip() for part in raw.split(",") if part.strip())
            if not codes:
                codes = frozenset({ALL_CODES})
        line = token.start[0]
        pragmas[line] = pragmas.get(line, frozenset()) | codes
    return pragmas


def is_suppressed(pragmas: dict[int, frozenset[str]],
                  line: int, code: str) -> bool:
    """True iff a pragma on ``line`` suppresses ``code``."""
    codes = pragmas.get(line)
    return codes is not None and (code in codes or ALL_CODES in codes)
