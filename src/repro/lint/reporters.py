"""Finding reporters: human-readable text and machine-readable JSON.

Reporters write to a caller-supplied stream; they never touch
``sys.stdout`` themselves, which keeps the library layer silent (the
same contract rule RPR302 enforces on the rest of the codebase).
"""

from __future__ import annotations

import json
from typing import IO, Sequence

from repro.lint.findings import Finding

__all__ = ["Report", "render_text", "render_json", "render"]


class Report:
    """Everything one lint run produced, ready for rendering."""

    def __init__(self, *, new: Sequence[Finding],
                 baselined: Sequence[Finding] = (),
                 suppressed: Sequence[Finding] = (),
                 files_scanned: int = 0) -> None:
        self.new = list(new)
        self.baselined = list(baselined)
        self.suppressed = list(suppressed)
        self.files_scanned = files_scanned

    @property
    def exit_code(self) -> int:
        """0 when no non-baselined finding remains, else 1."""
        return 1 if self.new else 0


def render_text(report: Report, stream: IO[str]) -> None:
    """One ``path:line:col: CODE message`` line per finding + summary."""
    for finding in report.new:
        stream.write(finding.render() + "\n")
    summary = (
        f"{len(report.new)} finding(s) in {report.files_scanned} file(s)")
    extras = []
    if report.baselined:
        extras.append(f"{len(report.baselined)} baselined")
    if report.suppressed:
        extras.append(f"{len(report.suppressed)} pragma-suppressed")
    if extras:
        summary += f" ({', '.join(extras)})"
    stream.write(summary + "\n")


def render_json(report: Report, stream: IO[str]) -> None:
    """Single JSON object: findings plus run summary."""
    payload = {
        "version": 1,
        "findings": [f.to_dict() for f in report.new],
        "summary": {
            "files_scanned": report.files_scanned,
            "new": len(report.new),
            "baselined": len(report.baselined),
            "suppressed": len(report.suppressed),
            "exit_code": report.exit_code,
        },
    }
    stream.write(json.dumps(payload, indent=2) + "\n")


def render(report: Report, stream: IO[str], fmt: str = "text") -> None:
    """Dispatch to the named reporter (``text`` or ``json``)."""
    if fmt == "json":
        render_json(report, stream)
    elif fmt == "text":
        render_text(report, stream)
    else:
        raise ValueError(f"unknown report format {fmt!r}")
