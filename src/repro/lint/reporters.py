"""Finding reporters: text, JSON, and SARIF 2.1.0 output.

Reporters write to a caller-supplied stream; they never touch
``sys.stdout`` themselves, which keeps the library layer silent (the
same contract rule RPR302 enforces on the rest of the codebase).

The SARIF reporter emits the subset of `SARIF 2.1.0
<https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
that code-scanning UIs consume: one run with the full rule catalogue in
``tool.driver.rules`` and one ``result`` per new finding, carrying the
rule id/index, level, message, and physical location.
"""

from __future__ import annotations

import json
from typing import IO, Sequence

from repro.lint.findings import Finding

__all__ = ["Report", "render_text", "render_json", "render_sarif",
           "render", "SARIF_SCHEMA_URI", "SARIF_VERSION"]

SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")
SARIF_VERSION = "2.1.0"


class Report:
    """Everything one lint run produced, ready for rendering."""

    def __init__(self, *, new: Sequence[Finding],
                 baselined: Sequence[Finding] = (),
                 suppressed: Sequence[Finding] = (),
                 files_scanned: int = 0) -> None:
        self.new = list(new)
        self.baselined = list(baselined)
        self.suppressed = list(suppressed)
        self.files_scanned = files_scanned

    @property
    def exit_code(self) -> int:
        """0 when no non-baselined finding remains, else 1."""
        return 1 if self.new else 0


def render_text(report: Report, stream: IO[str]) -> None:
    """One ``path:line:col: CODE message`` line per finding + summary."""
    for finding in report.new:
        stream.write(finding.render() + "\n")
    summary = (
        f"{len(report.new)} finding(s) in {report.files_scanned} file(s)")
    extras = []
    if report.baselined:
        extras.append(f"{len(report.baselined)} baselined")
    if report.suppressed:
        extras.append(f"{len(report.suppressed)} pragma-suppressed")
    if extras:
        summary += f" ({', '.join(extras)})"
    stream.write(summary + "\n")


def render_json(report: Report, stream: IO[str]) -> None:
    """Single JSON object: findings plus run summary."""
    payload = {
        "version": 1,
        "findings": [f.to_dict() for f in report.new],
        "summary": {
            "files_scanned": report.files_scanned,
            "new": len(report.new),
            "baselined": len(report.baselined),
            "suppressed": len(report.suppressed),
            "exit_code": report.exit_code,
        },
    }
    stream.write(json.dumps(payload, indent=2) + "\n")


def render_sarif(report: Report, stream: IO[str]) -> None:
    """SARIF 2.1.0 log with one result per new finding.

    Baselined and pragma-suppressed findings are omitted — SARIF
    consumers treat every ``result`` as actionable, matching the text
    reporter's notion of "new".  Rules are listed in code order so
    ``ruleIndex`` is deterministic.
    """
    from repro.lint.registry import all_rule_classes

    rule_classes = sorted(all_rule_classes(), key=lambda cls: cls.code)
    rule_index = {cls.code: i for i, cls in enumerate(rule_classes)}
    rules = []
    for cls in rule_classes:
        entry = {
            "id": cls.code,
            "name": cls.name,
            "shortDescription": {"text": cls.summary},
            "helpUri": cls.help_uri(),
        }
        rationale = cls.rationale()
        if rationale:
            entry["fullDescription"] = {"text": rationale}
        rules.append(entry)
    results = []
    for finding in report.new:
        result = {
            "ruleId": finding.code,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                },
            }],
        }
        if finding.code in rule_index:
            result["ruleIndex"] = rule_index[finding.code]
        results.append(result)
    payload = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
    stream.write(json.dumps(payload, indent=2) + "\n")


def render(report: Report, stream: IO[str], fmt: str = "text") -> None:
    """Dispatch to the named reporter (``text``, ``json``, ``sarif``)."""
    if fmt == "json":
        render_json(report, stream)
    elif fmt == "sarif":
        render_sarif(report, stream)
    elif fmt == "text":
        render_text(report, stream)
    else:
        raise ValueError(f"unknown report format {fmt!r}")
