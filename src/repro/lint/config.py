"""Lint configuration, read from ``[tool.repro.lint]`` in pyproject.toml.

Recognised keys::

    [tool.repro.lint]
    select = ["RPR101", ...]        # only these rules (default: all)
    ignore = ["RPR302"]             # disable these rules project-wide
    print-allowed = ["repro.cli"]   # modules where RPR302 does not apply
    baseline = "lint-baseline.json" # default baseline path
    cache = ".repro-lint-cache.json"  # incremental cache location
    blocking-calls = ["redis.get"]  # extra dotted names RPR403 treats
                                    # as blocking (suffix-matched)

    [tool.repro.lint.layering]      # RPR301: layer -> forbidden imports
    "repro.featurize" = ["repro.models", ...]

Every key has a default grounded in this repository, so the linter also
works on a bare tree with no configuration at all.
"""

from __future__ import annotations

import json
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

__all__ = ["LintConfig", "load_config", "find_pyproject",
           "DEFAULT_LAYERING", "DEFAULT_PRINT_ALLOWED", "DEFAULT_BASELINE",
           "DEFAULT_CACHE"]

#: Strict layering: lower layers never import upward.  The featurization,
#: SQL, and data substrates must stay reusable without dragging in the
#: model / estimator / experiment stack (ROADMAP: independent scaling).
DEFAULT_LAYERING: Mapping[str, tuple[str, ...]] = {
    "repro.featurize": ("repro.models", "repro.estimators",
                        "repro.experiments"),
    "repro.sql": ("repro.models", "repro.estimators", "repro.experiments"),
    "repro.data": ("repro.models", "repro.estimators", "repro.experiments"),
}

#: Command-line entry points legitimately talk to stdout.
DEFAULT_PRINT_ALLOWED: tuple[str, ...] = (
    "repro.cli",
    "repro.experiments.runner",
)

DEFAULT_BASELINE = "lint-baseline.json"

DEFAULT_CACHE = ".repro-lint-cache.json"


@dataclass(frozen=True)
class LintConfig:
    """Resolved lint configuration."""

    #: Codes to run exclusively (``None`` = every registered rule).
    select: frozenset[str] | None = None
    #: Codes disabled project-wide.
    ignore: frozenset[str] = frozenset()
    #: Modules (or package prefixes) where ``print()`` is legitimate.
    print_allowed: tuple[str, ...] = DEFAULT_PRINT_ALLOWED
    #: RPR301 layer map: module prefix -> forbidden import prefixes.
    layering: Mapping[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_LAYERING))
    #: Default baseline file path, relative to the pyproject directory.
    baseline: str = DEFAULT_BASELINE
    #: Incremental-cache file path, relative to the pyproject directory.
    cache: str = DEFAULT_CACHE
    #: Extra dotted call names the dataflow pass classifies as blocking
    #: for RPR403, matched against the call expression's dotted tail.
    blocking_calls: tuple[str, ...] = ()
    #: Directory the configuration was loaded from (resolves baseline).
    root: Path = field(default_factory=Path.cwd)

    def is_enabled(self, code: str) -> bool:
        """Whether the rule with ``code`` participates in this run."""
        if code in self.ignore:
            return False
        return self.select is None or code in self.select

    def baseline_path(self) -> Path:
        """Absolute path of the configured baseline file."""
        return (self.root / self.baseline).resolve()

    def cache_path(self) -> Path:
        """Absolute path of the configured incremental-cache file."""
        return (self.root / self.cache).resolve()

    def fingerprint(self) -> str:
        """Deterministic string identifying the behavioural settings.

        Feeds the cache meta key: any configuration change that could
        alter findings must change this value.
        """
        return json.dumps({
            "select": sorted(self.select) if self.select is not None
            else None,
            "ignore": sorted(self.ignore),
            "print_allowed": list(self.print_allowed),
            "layering": {layer: list(forbidden) for layer, forbidden
                         in sorted(self.layering.items())},
            "blocking_calls": sorted(self.blocking_calls),
        }, sort_keys=True)


def find_pyproject(start: Path) -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for directory in (current, *current.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def load_config(start: Path | None = None) -> LintConfig:
    """Load the configuration governing a scan rooted at ``start``."""
    pyproject = find_pyproject(start if start is not None else Path.cwd())
    if pyproject is None:
        return LintConfig()
    try:
        data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    except (tomllib.TOMLDecodeError, OSError):
        return LintConfig(root=pyproject.parent)
    section = data.get("tool", {}).get("repro", {}).get("lint", {})
    if not isinstance(section, dict):
        section = {}
    layering_section = section.get("layering")
    if isinstance(layering_section, dict) and layering_section:
        layering = {str(layer): tuple(str(m) for m in forbidden)
                    for layer, forbidden in layering_section.items()}
    else:
        layering = dict(DEFAULT_LAYERING)
    select = section.get("select")
    return LintConfig(
        select=(frozenset(str(c) for c in select)
                if select is not None else None),
        ignore=frozenset(str(c) for c in section.get("ignore", ())),
        print_allowed=tuple(
            str(m) for m in section.get("print-allowed",
                                        DEFAULT_PRINT_ALLOWED)),
        layering=layering,
        baseline=str(section.get("baseline", DEFAULT_BASELINE)),
        cache=str(section.get("cache", DEFAULT_CACHE)),
        blocking_calls=tuple(
            str(name) for name in section.get("blocking-calls", ())),
        root=pyproject.parent,
    )
