"""Command-line front end: ``python -m repro.lint`` / ``repro lint``.

Exit codes: 0 = clean (no non-baselined finding), 1 = findings,
2 = usage or configuration error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO

from repro.lint import baseline as baseline_mod
from repro.lint import engine
from repro.lint.config import load_config
from repro.lint.registry import PARSE_ERROR_CODE, all_rule_classes, \
    get_rule_class
from repro.lint.reporters import Report, render

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the lint front end."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Static analysis enforcing the repro featurization, "
                    "determinism, layering, concurrency, and numeric "
                    "contracts (rules RPR1xx-5xx).",
    )
    parser.add_argument("paths", nargs="*", default=["src"], type=Path,
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text", dest="fmt",
                        help="report format (default: text)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file of grandfathered findings "
                             "(default: from [tool.repro.lint])")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record current findings as the new baseline "
                             "and exit 0")
    parser.add_argument("--update-baseline", action="store_true",
                        help="drop baseline entries no longer produced "
                             "(never adds new ones) and exit 0")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parse-stage worker processes "
                             "(1 = serial, 0 = auto; default: 1)")
    parser.add_argument("--cache", type=Path, default=None,
                        help="incremental cache file (default: from "
                             "[tool.repro.lint])")
    parser.add_argument("--no-cache", action="store_true",
                        help="analyse everything from scratch, "
                             "read/write no cache")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--explain", metavar="CODE", default=None,
                        help="print one rule's description, rationale, "
                             "and a good/bad example, then exit")
    return parser


def _list_rules(stream: IO[str]) -> int:
    for cls in all_rule_classes():
        stream.write(f"{cls.code}  {cls.name}: {cls.summary}\n")
    return 0


def _indent(text: str, prefix: str = "    ") -> str:
    return "\n".join(prefix + line if line else line
                     for line in text.splitlines())


def _explain(code: str, stream: IO[str]) -> int:
    """Print one rule's registry metadata; exit 2 on unknown codes."""
    code = code.upper()
    if code == PARSE_ERROR_CODE:
        stream.write(
            f"{PARSE_ERROR_CODE}  parse-error\n"
            "  Engine-reserved code: the file failed to parse, so no\n"
            "  rule ran on it.  Fix the syntax error it reports.\n")
        return 0
    try:
        cls = get_rule_class(code)
    except KeyError:
        stream.write(f"error: unknown rule code {code!r} "
                     "(try --list-rules)\n")
        return 2
    stream.write(f"{cls.code}  {cls.name}\n")
    stream.write(f"  {cls.summary}\n\n")
    rationale = cls.rationale()
    if rationale:
        stream.write(_indent(rationale, "  ") + "\n\n")
    stream.write("  Bad:\n")
    stream.write(_indent(cls.example_bad) + "\n\n")
    stream.write("  Good:\n")
    stream.write(_indent(cls.example_good) + "\n\n")
    stream.write(f"  Docs: {cls.help_uri()}\n")
    return 0


def main(argv: list[str] | None = None,
         stream: IO[str] | None = None) -> int:
    """Run the linter; returns the process exit code."""
    out = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules(out)
    if args.explain is not None:
        return _explain(args.explain, out)

    missing = [p for p in args.paths if not p.exists()]
    if missing:
        out.write(f"error: path does not exist: {missing[0]}\n")
        return 2
    config = load_config(args.paths[0])
    if args.no_cache:
        cache_path = None
    elif args.cache is not None:
        cache_path = args.cache
    else:
        cache_path = config.cache_path()
    result = engine.run(args.paths, config, jobs=args.jobs,
                        cache_path=cache_path)

    baseline_path = (args.baseline if args.baseline is not None
                     else config.baseline_path())
    if args.write_baseline:
        baseline_mod.write_baseline(result.findings, baseline_path)
        out.write(f"wrote {len(result.findings)} finding(s) to "
                  f"{baseline_path}\n")
        return 0
    if args.update_baseline:
        removed = baseline_mod.update_baseline(
            result.findings, baseline_path, root=Path.cwd())
        out.write(f"removed {removed} stale baseline entr(y/ies) from "
                  f"{baseline_path}\n")
        return 0
    if args.no_baseline:
        known = baseline_mod.load_baseline(Path("/nonexistent"))
    else:
        try:
            known = baseline_mod.load_baseline(baseline_path,
                                               root=Path.cwd())
        except baseline_mod.BaselineError as error:
            out.write(f"error: {error}\n")
            return 2
    new, matched = baseline_mod.apply_baseline(result.findings, known)
    report = Report(new=new, baselined=matched,
                    suppressed=result.suppressed,
                    files_scanned=result.files_scanned)
    render(report, out, args.fmt)
    return report.exit_code
