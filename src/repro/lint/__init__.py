"""Domain-specific static analysis for the repro codebase.

The paper's losslessness claim (Definition 3.1, Lemma 3.2) rests on
contracts python's type system cannot express: featurization must be a
deterministic function of the query (Equation 4), every stochastic
component must thread a seeded ``np.random.Generator``, feature vectors
must keep a fixed shape, and the featurize/sql/data substrates must stay
independent of the model stack.  This package makes those contracts
machine-checked:

* :mod:`repro.lint.engine` — AST parsing, visitor dispatch, module and
  project hooks, incremental caching, parse-stage fan-out.
* :mod:`repro.lint.rules` — the built-in rules (``RPR1xx`` correctness,
  ``RPR2xx`` determinism, ``RPR3xx`` layering/API hygiene).
* :mod:`repro.lint.semantic` — the project index (module graph, class
  hierarchy, call graph) and the interprocedural rules that run on it.
* :mod:`repro.lint.cache` — content-hash-keyed per-file result cache.
* :mod:`repro.lint.pragmas` — ``# repro: ignore[RPRnnn]`` suppression.
* :mod:`repro.lint.baseline` — committed grandfathered findings.
* :mod:`repro.lint.reporters` — text, JSON, and SARIF 2.1.0 output.
* :mod:`repro.lint.cli` — ``repro lint`` / ``python -m repro.lint``.

Run programmatically::

    from pathlib import Path
    from repro.lint import lint_paths

    result = lint_paths([Path("src")])
    assert not result.findings

The rule catalogue is documented in ``docs/lint_rules.md``.
"""

from pathlib import Path
from typing import Sequence

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import LintResult, lint_text, run
from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rule_classes, register

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "all_rule_classes",
    "register",
    "load_config",
    "lint_text",
    "run",
    "lint_paths",
]


def lint_paths(paths: Sequence[Path],
               config: LintConfig | None = None) -> LintResult:
    """Lint ``paths`` with the configuration discovered from the first.

    Convenience wrapper over :func:`repro.lint.engine.run` that loads
    ``[tool.repro.lint]`` the same way the CLI does.
    """
    if config is None:
        config = load_config(Path(paths[0]) if paths else None)
    return run(paths, config)
