"""Rule base class and the registry of stable rule codes.

Rules register themselves with :func:`register`; the engine instantiates
every enabled rule once per run.  Codes are stable and banded:

* ``RPR1xx`` — correctness (bugs waiting to happen),
* ``RPR2xx`` — determinism (the paper's Equation-4 contract),
* ``RPR3xx`` — layering and API hygiene,
* ``RPR4xx`` — concurrency (races, deadlocks, and stalls in the
  threaded serving stack, driven by the CFG/dataflow pass),
* ``RPR5xx`` — numeric correctness (dtype narrowing, precision drift,
  shape contracts, index-dtype capacity, and empty reductions in the
  tensor hot path, driven by the abstract-interpretation pass).

``RPR001`` is reserved by the engine for files that fail to parse.
"""

from __future__ import annotations

import inspect
import re
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.lint.config import LintConfig
    from repro.lint.engine import ModuleContext, ProjectContext

__all__ = ["Rule", "register", "all_rule_classes", "get_rule_class",
           "DOCS_URI", "PARSE_ERROR_CODE"]

#: Engine-reserved code for unparseable files (not a registered rule).
PARSE_ERROR_CODE = "RPR001"

#: Repo-relative documentation file the per-rule help links anchor into.
DOCS_URI = "docs/lint_rules.md"

_CODE_PATTERN = re.compile(r"^RPR[1-9]\d{2}$")

_REGISTRY: dict[str, type["Rule"]] = {}


class Rule:
    """Base class of all lint rules.

    Subclasses set the class attributes below and implement any of the
    optional hooks.  ``visit_<NodeType>`` methods (e.g. ``visit_Call``)
    are discovered by name and dispatched by the engine for every AST
    node of that type, in source order.

    Optional hooks:

    * ``begin_module(module)`` — called before the AST walk of a module
      (e.g. to prescan import aliases).
    * ``finish_module(module)`` — called after the walk of a module
      (for whole-module invariants such as ``__all__`` consistency).
    * ``finish_project(project)`` — called once after every module has
      been walked (for cross-module invariants such as class hierarchy
      checks).
    """

    #: Stable code, e.g. ``"RPR101"``.
    code: str = ""
    #: Short kebab-case identifier, e.g. ``"mutable-default-argument"``.
    name: str = ""
    #: One-line summary shown by ``--list-rules`` and the docs table.
    summary: str = ""
    #: Minimal violating snippet, shown by ``repro lint --explain``.
    example_bad: str = ""
    #: Minimal compliant rewrite of :attr:`example_bad`.
    example_good: str = ""

    def __init__(self, config: "LintConfig") -> None:
        self.config = config

    def report(self, module: "ModuleContext", node, message: str) -> None:
        """Record a violation of this rule at ``node``."""
        module.report(self.code, node, message)

    @classmethod
    def rationale(cls) -> str:
        """Why the rule exists: the class docstring, dedented."""
        return inspect.cleandoc(cls.__doc__ or "")

    @classmethod
    def help_uri(cls) -> str:
        """Repo-relative documentation anchor for this rule."""
        return f"{DOCS_URI}#{cls.code.lower()}"


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding ``cls`` to the rule registry."""
    if not _CODE_PATTERN.match(cls.code):
        raise ValueError(
            f"rule {cls.__name__} has invalid code {cls.code!r} "
            "(expected RPRnnn with nnn in 100..999)")
    if not cls.name or not cls.summary:
        raise ValueError(f"rule {cls.__name__} needs a name and a summary")
    if not cls.example_bad or not cls.example_good:
        raise ValueError(
            f"rule {cls.__name__} needs example_bad and example_good "
            "snippets (shown by --explain)")
    existing = _REGISTRY.get(cls.code)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"rule code {cls.code} already registered by "
            f"{existing.__name__}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rule_classes() -> tuple[type[Rule], ...]:
    """Every registered rule class, ordered by code."""
    # Importing the rules package populates the registry on first use.
    import repro.lint.rules  # noqa: F401  (registration side effect)
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def get_rule_class(code: str) -> type[Rule]:
    """Registered rule class for ``code`` (``KeyError`` if unknown)."""
    import repro.lint.rules  # noqa: F401  (registration side effect)
    return _REGISTRY[code]
