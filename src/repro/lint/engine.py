"""The visitor-driven rule engine.

One run parses every target file once, walks each AST in source order,
and dispatches node events to every enabled rule (``visit_Call``,
``visit_Compare``, ...).  Module- and project-level hooks run after the
walks.  Findings are collected centrally, pragma-suppressed, and sorted;
baseline filtering happens in :mod:`repro.lint.baseline` on top of the
result.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.pragmas import is_suppressed, parse_pragmas
from repro.lint.registry import PARSE_ERROR_CODE, Rule, all_rule_classes

__all__ = ["ModuleContext", "ProjectContext", "LintResult",
           "discover_files", "module_name_for", "run", "lint_text"]


class ModuleContext:
    """Everything a rule may inspect about one source file."""

    def __init__(self, *, path: str, module_name: str, source: str,
                 tree: ast.Module, pragmas: dict[int, frozenset[str]]) -> None:
        #: Scan-root-relative posix path (what findings carry).
        self.path = path
        #: Dotted module name, e.g. ``"repro.featurize.base"``.
        self.module_name = module_name
        self.source = source
        self.tree = tree
        #: line -> suppressed codes (see :mod:`repro.lint.pragmas`).
        self.pragmas = pragmas
        self.findings: list[Finding] = []
        self.suppressed: list[Finding] = []

    @property
    def is_package_init(self) -> bool:
        """Whether this file is a package ``__init__.py``."""
        return self.path.rsplit("/", 1)[-1] == "__init__.py"

    def report(self, code: str, node, message: str) -> None:
        """Record a finding at ``node``, honouring same-line pragmas."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        finding = Finding(path=self.path, line=line, col=col,
                          code=code, message=message)
        if is_suppressed(self.pragmas, line, code):
            self.suppressed.append(finding)
        else:
            self.findings.append(finding)


class ProjectContext:
    """Cross-module state for ``finish_project`` hooks."""

    def __init__(self) -> None:
        self.modules: list[ModuleContext] = []

    def iter_classes(self) -> Iterable[tuple[ModuleContext, ast.ClassDef]]:
        """Every class definition in the project, with its module."""
        for module in self.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    yield module, node


@dataclass(frozen=True)
class LintResult:
    """Outcome of one engine run (before baseline filtering)."""

    findings: tuple[Finding, ...]
    suppressed: tuple[Finding, ...] = ()
    files_scanned: int = 0
    rules_run: tuple[str, ...] = field(default_factory=tuple)


def discover_files(paths: Sequence[Path]) -> list[Path]:
    """Expand ``paths`` (files or directories) into sorted ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(p for p in path.rglob("*.py")
                         if not any(part.startswith(".")
                                    for part in p.parts))
        elif path.suffix == ".py":
            files.add(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(files)


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, found by ascending package dirs.

    Walks up while an ``__init__.py`` sibling exists, so
    ``src/repro/featurize/base.py`` resolves to
    ``repro.featurize.base`` regardless of the scan root.
    """
    path = path.resolve()
    parts = [path.stem]
    directory = path.parent
    while (directory / "__init__.py").is_file():
        parts.append(directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    parts.reverse()
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _enabled_rules(config: LintConfig) -> list[Rule]:
    return [cls(config) for cls in all_rule_classes()
            if config.is_enabled(cls.code)]


def _dispatch_table(rules: Sequence[Rule]) -> dict[str, list]:
    """Node-type name -> bound ``visit_*`` handlers, in rule-code order."""
    table: dict[str, list] = {}
    for rule in rules:
        for attr in dir(rule):
            if attr.startswith("visit_"):
                table.setdefault(attr[len("visit_"):], []).append(
                    getattr(rule, attr))
    return table


def _walk_module(module: ModuleContext, rules: Sequence[Rule],
                 table: dict[str, list]) -> None:
    for rule in rules:
        hook = getattr(rule, "begin_module", None)
        if hook is not None:
            hook(module)
    for node in ast.walk(module.tree):
        for handler in table.get(type(node).__name__, ()):
            handler(node, module)
    for rule in rules:
        hook = getattr(rule, "finish_module", None)
        if hook is not None:
            hook(module)


def _build_module(source: str, *, path: str, module_name: str,
                  sink: list[Finding]) -> ModuleContext | None:
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError) as error:
        line = getattr(error, "lineno", 1) or 1
        sink.append(Finding(
            path=path, line=line, col=1, code=PARSE_ERROR_CODE,
            message=f"file does not parse: {error.msg if isinstance(error, SyntaxError) else error}"))
        return None
    return ModuleContext(path=path, module_name=module_name, source=source,
                         tree=tree, pragmas=parse_pragmas(source))


def _finish(project: ProjectContext, rules: Sequence[Rule],
            parse_errors: list[Finding], files_scanned: int) -> LintResult:
    for rule in rules:
        hook = getattr(rule, "finish_project", None)
        if hook is not None:
            hook(project)
    findings = list(parse_errors)
    suppressed: list[Finding] = []
    for module in project.modules:
        findings.extend(module.findings)
        suppressed.extend(module.suppressed)
    return LintResult(
        findings=tuple(sorted(findings)),
        suppressed=tuple(sorted(suppressed)),
        files_scanned=files_scanned,
        rules_run=tuple(rule.code for rule in rules),
    )


def run(paths: Sequence[Path], config: LintConfig | None = None) -> LintResult:
    """Lint every python file under ``paths`` with the enabled rules."""
    if config is None:
        config = LintConfig()
    rules = _enabled_rules(config)
    table = _dispatch_table(rules)
    files = discover_files([Path(p) for p in paths])
    project = ProjectContext()
    parse_errors: list[Finding] = []
    root = Path.cwd()
    for file in files:
        try:
            relative = file.resolve().relative_to(root.resolve())
            display = relative.as_posix()
        except ValueError:
            display = file.as_posix()
        source = file.read_text(encoding="utf-8")
        module = _build_module(source, path=display,
                               module_name=module_name_for(file),
                               sink=parse_errors)
        if module is None:
            continue
        project.modules.append(module)
        _walk_module(module, rules, table)
    return _finish(project, rules, parse_errors, len(files))


def lint_text(source: str, *, module_name: str = "snippet",
              path: str = "snippet.py",
              config: LintConfig | None = None) -> LintResult:
    """Lint a source string (the unit-test entry point)."""
    if config is None:
        config = LintConfig()
    rules = _enabled_rules(config)
    table = _dispatch_table(rules)
    project = ProjectContext()
    parse_errors: list[Finding] = []
    module = _build_module(source, path=path, module_name=module_name,
                           sink=parse_errors)
    if module is not None:
        project.modules.append(module)
        _walk_module(module, rules, table)
    return _finish(project, rules, parse_errors, 1)
