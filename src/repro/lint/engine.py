"""The visitor-driven rule engine.

One run analyses every target file in two stages.  The **per-file
stage** parses each source, walks its AST in source order dispatching
node events to every enabled rule (``visit_Call``, ``visit_Compare``,
...), and extracts the semantic fact summary; it is embarrassingly
parallel and fans out over a process pool for large cold runs.  The
**project stage** builds the :class:`~repro.lint.semantic.index.
ProjectIndex` from the fact summaries and runs every rule's
``finish_project`` hook — the interprocedural pass.

Both stages are incremental: with a :class:`~repro.lint.cache.
LintCache`, unchanged files (by content hash) skip parsing entirely,
and the project pass recomputes findings only for changed files plus
their transitive importers, reusing cached results elsewhere.

Findings are collected centrally, pragma-suppressed, and sorted;
baseline filtering happens in :mod:`repro.lint.baseline` on top of the
result.
"""

from __future__ import annotations

import ast
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro import obs
from repro.lint.cache import CacheEntry, LintCache, cache_meta_key, \
    file_digest
from repro.lint.config import LintConfig
from repro.lint.dataflow import attach_concurrency_facts, \
    attach_numeric_facts
from repro.lint.findings import Finding
from repro.lint.pragmas import decorator_pragmas, is_suppressed, \
    parse_pragmas
from repro.lint.registry import PARSE_ERROR_CODE, Rule, all_rule_classes
from repro.lint.semantic.facts import ModuleFacts, extract_module_facts
from repro.lint.semantic.index import ProjectIndex

__all__ = ["ModuleContext", "ProjectContext", "FileAnalysis", "LintResult",
           "discover_files", "module_name_for", "analyze_source",
           "run", "lint_text"]

#: Below this many changed files a process pool costs more than it saves.
_MIN_FILES_FOR_POOL = 12


class ModuleContext:
    """Everything a rule may inspect about one source file."""

    def __init__(self, *, path: str, module_name: str, source: str,
                 tree: ast.Module, pragmas: dict[int, frozenset[str]]) -> None:
        #: Scan-root-relative posix path (what findings carry).
        self.path = path
        #: Dotted module name, e.g. ``"repro.featurize.base"``.
        self.module_name = module_name
        self.source = source
        self.tree = tree
        #: line -> suppressed codes (see :mod:`repro.lint.pragmas`).
        self.pragmas = pragmas
        self.findings: list[Finding] = []
        self.suppressed: list[Finding] = []

    @property
    def is_package_init(self) -> bool:
        """Whether this file is a package ``__init__.py``."""
        return self.path.rsplit("/", 1)[-1] == "__init__.py"

    def report(self, code: str, node, message: str) -> None:
        """Record a finding at ``node``, honouring same-line pragmas."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        finding = Finding(path=self.path, line=line, col=col,
                          code=code, message=message)
        if is_suppressed(self.pragmas, line, code):
            self.suppressed.append(finding)
        else:
            self.findings.append(finding)


class ProjectContext:
    """Cross-module state handed to ``finish_project`` hooks.

    Project rules see the whole program through :attr:`index` and report
    through :meth:`report`; pragma suppression uses the per-file pragma
    tables carried by the cached fact shards, so the hooks work without
    any AST for unchanged files.
    """

    def __init__(self, index: ProjectIndex,
                 pragmas_by_path: Mapping[str, Mapping[int, Iterable[str]]]
                 ) -> None:
        #: The project index built for this run.
        self.index = index
        self._pragmas = {
            path: {line: frozenset(codes)
                   for line, codes in table.items()}
            for path, table in pragmas_by_path.items()}
        #: path -> fresh semantic findings reported this pass.
        self.findings_by_path: dict[str, list[Finding]] = {}
        #: path -> pragma-suppressed semantic findings.
        self.suppressed_by_path: dict[str, list[Finding]] = {}

    def report(self, code: str, path: str, line: int, col: int,
               message: str) -> None:
        """Record a project-level finding, honouring same-line pragmas."""
        finding = Finding(path=path, line=line, col=col, code=code,
                          message=message)
        if is_suppressed(self._pragmas.get(path, {}), line, code):
            self.suppressed_by_path.setdefault(path, []).append(finding)
        else:
            self.findings_by_path.setdefault(path, []).append(finding)


@dataclass
class FileAnalysis:
    """Per-file stage outcome: findings plus the semantic fact shard."""

    path: str
    module_name: str
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    #: ``None`` when the file failed to parse.
    facts: ModuleFacts | None = None
    #: Wall-clock seconds per per-file pass (``syntactic`` = parse +
    #: rule walk, ``facts`` = fact extraction, ``dataflow`` = CFG +
    #: fixed-point lock/reaching solves, ``numeric`` = the dtype/
    #: interval/shape abstract interpretation).  Empty for cache hits —
    #: warm runs spend nothing here, which is what the bench reports.
    stage_seconds: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class LintResult:
    """Outcome of one engine run (before baseline filtering)."""

    findings: tuple[Finding, ...]
    suppressed: tuple[Finding, ...] = ()
    files_scanned: int = 0
    rules_run: tuple[str, ...] = field(default_factory=tuple)
    #: Files analysed fresh this run: re-parsed files plus those whose
    #: semantic findings were recomputed (changed files and their
    #: transitive importers).  Everything when uncached; empty on a
    #: fully warm run.
    files_reanalyzed: tuple[str, ...] = field(default_factory=tuple)
    #: Wall-clock seconds per engine pass for this run: ``syntactic``
    #: (parse + AST rule walk), ``dataflow`` (CFG + fixed-point lock/
    #: reaching solves), ``numeric`` (the dtype/interval/shape abstract
    #: interpretation), and ``semantic`` (fact extraction + index build
    #: + project rules).  Only fresh work is counted, so a warm run's
    #: figures collapse towards zero.
    pass_seconds: Mapping[str, float] = field(default_factory=dict)


def discover_files(paths: Sequence[Path]) -> list[Path]:
    """Expand ``paths`` (files or directories) into sorted ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(p for p in path.rglob("*.py")
                         if not any(part.startswith(".")
                                    for part in p.parts))
        elif path.suffix == ".py":
            files.add(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(files)


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, found by ascending package dirs.

    Walks up while an ``__init__.py`` sibling exists, so
    ``src/repro/featurize/base.py`` resolves to
    ``repro.featurize.base`` regardless of the scan root.
    """
    path = path.resolve()
    parts = [path.stem]
    directory = path.parent
    while (directory / "__init__.py").is_file():
        parts.append(directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    parts.reverse()
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _enabled_rules(config: LintConfig) -> list[Rule]:
    return [cls(config) for cls in all_rule_classes()
            if config.is_enabled(cls.code)]


def _project_rules(rules: Sequence[Rule]) -> list[Rule]:
    return [rule for rule in rules
            if getattr(rule, "finish_project", None) is not None]


def _dispatch_table(rules: Sequence[Rule]) -> dict[str, list]:
    """Node-type name -> bound ``visit_*`` handlers, in rule-code order."""
    table: dict[str, list] = {}
    for rule in rules:
        for attr in dir(rule):
            if attr.startswith("visit_"):
                table.setdefault(attr[len("visit_"):], []).append(
                    getattr(rule, attr))
    return table


def _walk_module(module: ModuleContext, rules: Sequence[Rule],
                 table: dict[str, list]) -> None:
    for rule in rules:
        hook = getattr(rule, "begin_module", None)
        if hook is not None:
            hook(module)
    for node in ast.walk(module.tree):
        for handler in table.get(type(node).__name__, ()):
            handler(node, module)
    for rule in rules:
        hook = getattr(rule, "finish_module", None)
        if hook is not None:
            hook(module)


def analyze_source(source: str, *, path: str, module_name: str,
                   config: LintConfig) -> FileAnalysis:
    """Run the per-file stage on one source string.

    Parses, walks every enabled rule's visit and module hooks, and
    extracts the semantic fact shard.  Pure function of its arguments —
    the unit the process pool distributes and the cache stores.
    """
    analysis = FileAnalysis(path=path, module_name=module_name)
    # The per-file stage runs inside pool workers where obs spans are
    # invisible to the parent, so it reads the clock directly and ships
    # the figures home on the analysis record.
    started = time.perf_counter()  # repro: ignore[RPR108]
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError) as error:
        line = getattr(error, "lineno", 1) or 1
        message = (error.msg if isinstance(error, SyntaxError) else
                   str(error))
        analysis.findings.append(Finding(
            path=path, line=line, col=1, code=PARSE_ERROR_CODE,
            message=f"file does not parse: {message}"))
        return analysis
    pragmas = decorator_pragmas(tree, parse_pragmas(source))
    module = ModuleContext(path=path, module_name=module_name,
                           source=source, tree=tree, pragmas=pragmas)
    rules = _enabled_rules(config)
    _walk_module(module, rules, _dispatch_table(rules))
    analysis.findings.extend(module.findings)
    analysis.suppressed.extend(module.suppressed)
    syntactic_done = time.perf_counter()  # repro: ignore[RPR108]
    analysis.facts = extract_module_facts(tree, path=path,
                                          module_name=module_name,
                                          pragmas=pragmas)
    facts_done = time.perf_counter()  # repro: ignore[RPR108]
    attach_concurrency_facts(analysis.facts, tree,
                             blocking_extra=config.blocking_calls)
    dataflow_done = time.perf_counter()  # repro: ignore[RPR108]
    attach_numeric_facts(analysis.facts, tree)
    numeric_done = time.perf_counter()  # repro: ignore[RPR108]
    analysis.stage_seconds = {
        "syntactic": syntactic_done - started,
        "facts": facts_done - syntactic_done,
        "dataflow": dataflow_done - facts_done,
        "numeric": numeric_done - dataflow_done,
    }
    return analysis


def _analyze_file_task(item: tuple[str, str, str, LintConfig]
                       ) -> FileAnalysis:
    """Process-pool task: read and analyse one file."""
    file_str, display, module_name, config = item
    source = Path(file_str).read_text(encoding="utf-8")
    return analyze_source(source, path=display, module_name=module_name,
                          config=config)


def _effective_jobs(jobs: int, n_files: int) -> int:
    if jobs == 1 or n_files < _MIN_FILES_FOR_POOL:
        return 1
    if jobs <= 0:
        return min(8, os.cpu_count() or 1)
    return jobs


def _run_file_stage(items: Sequence[tuple[str, str, str, LintConfig]],
                    jobs: int) -> list[FileAnalysis]:
    effective = _effective_jobs(jobs, len(items))
    if effective <= 1:
        return [_analyze_file_task(item) for item in items]
    import multiprocessing

    # fork keeps the imported rule registry; spawn would re-import it in
    # each worker, which also works but pays start-up cost per process.
    context = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else None)
    with context.Pool(processes=effective) as pool:
        return pool.map(_analyze_file_task, items, chunksize=4)


def _display_path(file: Path, root: Path) -> str:
    try:
        return file.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return file.as_posix()


def _semantic_pass(analyses: Sequence[FileAnalysis],
                   project_rules: Sequence[Rule]) -> ProjectContext:
    """Build the index and run every ``finish_project`` hook."""
    facts = [a.facts for a in analyses if a.facts is not None]
    with obs.span("lint.index", n_modules=len(facts)):
        index = ProjectIndex(facts)
        project = ProjectContext(index, {f.path: f.pragmas for f in facts})
    with obs.span("lint.rules", n_rules=len(project_rules)):
        for rule in project_rules:
            rule.finish_project(project)
    return project


def _assemble(analyses: Sequence[FileAnalysis],
              semantic_findings: Mapping[str, Sequence[Finding]],
              semantic_suppressed: Mapping[str, Sequence[Finding]],
              rules: Sequence[Rule], files_scanned: int,
              reanalyzed: Iterable[str],
              pass_seconds: Mapping[str, float] | None = None
              ) -> LintResult:
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    for analysis in analyses:
        findings.extend(analysis.findings)
        suppressed.extend(analysis.suppressed)
        findings.extend(semantic_findings.get(analysis.path, ()))
        suppressed.extend(semantic_suppressed.get(analysis.path, ()))
    return LintResult(
        findings=tuple(sorted(findings)),
        suppressed=tuple(sorted(suppressed)),
        files_scanned=files_scanned,
        rules_run=tuple(rule.code for rule in rules),
        files_reanalyzed=tuple(sorted(set(reanalyzed))),
        pass_seconds=dict(pass_seconds or {}),
    )


def run(paths: Sequence[Path], config: LintConfig | None = None, *,
        jobs: int = 1, cache_path: Path | None = None) -> LintResult:
    """Lint every python file under ``paths`` with the enabled rules.

    ``jobs`` controls the per-file stage fan-out (1 = serial, 0 = one
    process per core up to 8, N = exactly N workers).  ``cache_path``
    enables the incremental cache at that location; ``None`` (the
    library default) analyses everything from scratch.
    """
    if config is None:
        config = LintConfig()
    rules = _enabled_rules(config)
    project_rules = _project_rules(rules)
    files = discover_files([Path(p) for p in paths])
    root = Path.cwd()

    cache: LintCache | None = None
    if cache_path is not None:
        with obs.span("lint.cache.load"):
            meta = cache_meta_key(config.fingerprint(),
                                  [rule.code for rule in rules])
            cache = LintCache.load(Path(cache_path), meta)

    analyses: dict[str, FileAnalysis] = {}
    cached_semantic: dict[str, tuple[list[Finding], list[Finding]]] = {}
    changed_items: list[tuple[str, str, str, LintConfig]] = []
    displays: list[str] = []
    hashes: dict[str, str] = {}
    for file in files:
        display = _display_path(file, root)
        displays.append(display)
        digest = None
        entry = None
        if cache is not None:
            try:
                digest = file_digest(file.read_bytes())
            except OSError:
                digest = None
            if digest is not None:
                entry = cache.lookup(display, digest)
        hashes[display] = digest or ""
        if entry is not None:
            # Cache hits reuse the stored module name: module_name_for
            # stats the package tree, so skipping it keeps the warm
            # path at one hash per file.
            analyses[display] = FileAnalysis(
                path=display, module_name=entry.module_name,
                findings=list(entry.findings),
                suppressed=list(entry.suppressed),
                facts=entry.facts)
            if entry.semantic_findings is not None \
                    and entry.semantic_suppressed is not None:
                cached_semantic[display] = (
                    list(entry.semantic_findings),
                    list(entry.semantic_suppressed))
        else:
            changed_items.append((str(file), display,
                                  module_name_for(file), config))

    with obs.span("lint.parse", n_files=len(changed_items)):
        for analysis in _run_file_stage(changed_items, jobs):
            analyses[analysis.path] = analysis
    ordered = [analyses[display] for display in displays]

    changed_displays = {item[1] for item in changed_items}
    missing_semantic = {display for display in displays
                        if display not in cached_semantic}
    pass_seconds = {"syntactic": 0.0, "dataflow": 0.0, "numeric": 0.0,
                    "semantic": 0.0}
    for analysis in ordered:
        stage = analysis.stage_seconds
        pass_seconds["syntactic"] += stage.get("syntactic", 0.0)
        pass_seconds["dataflow"] += stage.get("dataflow", 0.0)
        pass_seconds["numeric"] += stage.get("numeric", 0.0)
        pass_seconds["semantic"] += stage.get("facts", 0.0)
    semantic_findings: dict[str, Sequence[Finding]] = {}
    semantic_suppressed: dict[str, Sequence[Finding]] = {}
    if project_rules and (changed_displays or missing_semantic):
        project_started = time.perf_counter()  # repro: ignore[RPR108]
        project = _semantic_pass(ordered, project_rules)
        pass_seconds["semantic"] += (
            time.perf_counter() - project_started)  # repro: ignore[RPR108]
        dirty = set(changed_displays) | missing_semantic
        dirty |= project.index.dependent_paths(changed_displays)
        dirty &= set(displays)
        for display in displays:
            if display in dirty:
                semantic_findings[display] = \
                    project.findings_by_path.get(display, [])
                semantic_suppressed[display] = \
                    project.suppressed_by_path.get(display, [])
            else:
                cached_f, cached_s = cached_semantic[display]
                semantic_findings[display] = cached_f
                semantic_suppressed[display] = cached_s
        reanalyzed: Iterable[str] = dirty | changed_displays
    else:
        for display, (cached_f, cached_s) in cached_semantic.items():
            semantic_findings[display] = cached_f
            semantic_suppressed[display] = cached_s
        reanalyzed = changed_displays

    if cache is not None:
        with obs.span("lint.cache.save", n_files=len(displays)):
            for display in displays:
                analysis = analyses[display]
                cache.put(display, CacheEntry(
                    file_hash=hashes[display],
                    module_name=analysis.module_name,
                    findings=list(analysis.findings),
                    suppressed=list(analysis.suppressed),
                    semantic_findings=list(
                        semantic_findings.get(display, [])),
                    semantic_suppressed=list(
                        semantic_suppressed.get(display, [])),
                    facts=analysis.facts))
            cache.prune(displays)
            cache.save()

    return _assemble(ordered, semantic_findings, semantic_suppressed,
                     rules, len(files), reanalyzed, pass_seconds)


def lint_text(source: str, *, module_name: str = "snippet",
              path: str = "snippet.py",
              config: LintConfig | None = None) -> LintResult:
    """Lint a source string (the unit-test entry point)."""
    if config is None:
        config = LintConfig()
    rules = _enabled_rules(config)
    analysis = analyze_source(source, path=path, module_name=module_name,
                              config=config)
    project = _semantic_pass([analysis], _project_rules(rules))
    return _assemble(
        [analysis],
        {path: project.findings_by_path.get(path, [])},
        {path: project.suppressed_by_path.get(path, [])},
        rules, 1, [path])
