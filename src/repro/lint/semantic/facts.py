"""Per-file semantic fact extraction.

One pass over a module's AST produces a :class:`ModuleFacts` summary:
resolved imports, class shapes, and per-function records of parameters,
call sites, return values, and iteration sites.  Facts are plain
dataclasses with a lossless ``to_dict``/``from_dict`` round trip, so the
incremental cache can store them per content hash and the project index
can be rebuilt without re-parsing unchanged files.

The extraction is deliberately approximate — flow-insensitive, one
level of local-assignment lookup — because the downstream analyses only
need enough signal to flag *likely* contract violations; precision is
recovered by the pragma mechanism on the rare false positive.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = [
    "AttrWriteFact",
    "BlockingCallFact",
    "CallFact",
    "ClassFacts",
    "EmptyReductionFact",
    "FunctionFacts",
    "ImportFact",
    "IterationFact",
    "LazyInitFact",
    "LockAcquireFact",
    "LockAttrFact",
    "LockedReadFact",
    "MixedPrecisionFact",
    "ModuleFacts",
    "NarrowingCastFact",
    "ParamFact",
    "ReturnFact",
    "ShapeMismatchFact",
    "SmallIndexFact",
    "ThreadSpawnFact",
    "extract_module_facts",
    "is_generator_param",
]

#: Parameter names conventionally bound to ``np.random.Generator`` values
#: throughout this codebase (see ``models/neural_net.py``).
_GENERATOR_NAMES = frozenset({"rng", "generator"})

#: numpy array constructors whose default dtype is float64.
_FLOAT64_CTORS = frozenset({"zeros", "ones", "empty", "full"})

#: numpy array constructors that take their dtype from the input.
_ARRAY_CTORS = frozenset({"asarray", "array", "ascontiguousarray"})

#: Rank-preserving / rank-erasing numpy combinators (kind stays "array").
_ARRAY_COMBINATORS = frozenset({
    "stack", "concatenate", "vstack", "hstack", "column_stack", "where",
})

#: Set-returning methods regardless of receiver type.
_SET_METHODS = frozenset({
    "intersection", "union", "difference", "symmetric_difference",
})

#: dtype spellings normalised to numpy canonical names.
_DTYPE_ALIASES = {
    "float": "float64", "double": "float64", "single": "float32",
    "half": "float16", "int": "int64", "bool": "bool_",
}


@dataclass(frozen=True)
class ParamFact:
    """One parameter of a function: name, annotation text, default flag."""

    name: str
    annotation: str | None
    has_default: bool


@dataclass(frozen=True)
class ImportFact:
    """One imported binding, with relative imports already resolved."""

    #: Absolute dotted module the binding comes from.
    module: str
    #: Imported symbol name, ``None`` for ``import m``, ``"*"`` for star.
    name: str | None
    #: Local binding name the module scope sees.
    alias: str


@dataclass(frozen=True)
class CallFact:
    """One call site inside a function body."""

    #: Dotted callee as written (``"helper"``, ``"mod.f"``, ``"self.m"``).
    callee: str
    lineno: int
    col: int
    #: Whether any argument looks like an ``np.random.Generator`` value.
    passes_generator: bool
    #: Lock tokens must-held at the call site (dataflow pass; empty when
    #: no lock is provably held).
    held_locks: tuple[str, ...] = ()


@dataclass(frozen=True)
class LockAttrFact:
    """One lock binding: a ``threading.Lock``/``RLock`` construction."""

    #: Attribute name (``"_lock"``) or module-global binding name.
    name: str
    #: ``"Lock"`` or ``"RLock"`` — RLocks may be re-acquired reentrantly.
    kind: str


@dataclass(frozen=True)
class AttrWriteFact:
    """One write to ``self.<attr>`` (assignment, del, or mutator call)."""

    attr: str
    lineno: int
    col: int
    #: Lock tokens must-held at the write.
    held: tuple[str, ...] = ()


@dataclass(frozen=True)
class LockedReadFact:
    """A read of ``self.<attr>`` observed under a held lock.

    Guard-ownership evidence: reading an attribute inside a lock region
    declares it lock-protected just as writing it there does — the
    admission-check pattern (read ``self._closed`` under the lock,
    write it elsewhere) is exactly the race RPR401 exists to catch.
    """

    attr: str
    lock: str


@dataclass(frozen=True)
class LockAcquireFact:
    """One lock acquisition (``with lock:`` entry or ``.acquire()``)."""

    lock: str
    lineno: int
    col: int
    #: Lock tokens already must-held when this one is taken — the
    #: intra-function edges of the acquisition-order graph.
    held: tuple[str, ...] = ()


@dataclass(frozen=True)
class BlockingCallFact:
    """A known-blocking call executed while at least one lock is held."""

    callee: str
    lineno: int
    col: int
    held: tuple[str, ...] = ()


@dataclass(frozen=True)
class LazyInitFact:
    """A non-atomic check-then-act on ``self.<attr>``.

    Recorded only when no check of the attribute shares a lock *region*
    with any write to it in the function — i.e. the lock (if any) was
    released between deciding and acting.
    """

    attr: str
    #: Check (``if``) site.
    lineno: int
    col: int
    #: Representative write site.
    write_lineno: int
    write_col: int
    #: Lock tokens held at the check / at the write.
    held: tuple[str, ...] = ()
    write_held: tuple[str, ...] = ()


@dataclass(frozen=True)
class ThreadSpawnFact:
    """A ``threading.Thread`` constructed and started in a function."""

    #: Rendered binding (``"self._worker"``, a local name, or ``""``
    #: when started without ever being bound).
    binding: str
    daemon: bool
    lineno: int
    col: int


@dataclass(frozen=True)
class ReturnFact:
    """Classification of one ``return`` expression."""

    lineno: int
    col: int
    #: ``"array"``, ``"set"``, ``"call"``, or ``"other"``.
    kind: str
    #: Normalised numpy dtype when statically known (``"float32"``, ...).
    dtype: str | None = None
    #: Array rank when statically known (tuple-literal shapes).
    rank: int | None = None
    #: Dotted callee when ``kind == "call"``.
    callee: str | None = None


@dataclass(frozen=True)
class NarrowingCastFact:
    """A dtype cast that cannot represent every value of its source.

    Recorded for explicit casts (``astype``, ``asarray(..., dtype=)``)
    and for stores into a known-narrower array.  ``provable`` means the
    tracked value interval fits the target dtype; ``guarded`` means a
    bound guard (comparison against a numeric constant, ``np.clip``,
    mask, or modulo) mentions a contributing name somewhere in the
    function body.  RPR501 only fires when neither holds.
    """

    lineno: int
    col: int
    src_dtype: str
    dst_dtype: str
    provable: bool
    guarded: bool
    #: Rendered cast expression, for the finding message.
    rendered: str


@dataclass(frozen=True)
class MixedPrecisionFact:
    """An arithmetic op combining float arrays of different widths."""

    lineno: int
    col: int
    left_dtype: str
    right_dtype: str
    rendered: str


@dataclass(frozen=True)
class ShapeMismatchFact:
    """A provable broadcasting or rank mismatch in array algebra."""

    lineno: int
    col: int
    #: Human-readable mismatch description (shapes involved).
    detail: str
    rendered: str


@dataclass(frozen=True)
class SmallIndexFact:
    """A gather through an int32-or-smaller index tensor whose values
    are bounded only by the index dtype itself."""

    lineno: int
    col: int
    index_dtype: str
    rendered: str


@dataclass(frozen=True)
class EmptyReductionFact:
    """A min/max-style reduction over a possibly-empty array.

    ``maybe_empty`` taint originates from boolean-mask indexing; the
    fact is suppressed when the function checks the operand's size
    (``.size``, ``len()``, ``.shape``) anywhere in a test or assert.
    """

    lineno: int
    col: int
    #: Reduction name (``"min"``, ``"argmax"``, ...).
    func: str
    #: Rendered operand expression.
    operand: str


@dataclass(frozen=True)
class IterationFact:
    """One iteration site whose order may be hash-seed dependent."""

    lineno: int
    col: int
    #: ``"set"`` for syntactically set-valued, ``"call"`` for a call whose
    #: return kind must be resolved through the index.
    kind: str
    #: Dotted callee when ``kind == "call"``.
    callee: str | None
    #: Rendered iterable expression, for the finding message.
    rendered: str


@dataclass
class FunctionFacts:
    """Summary of one function or method."""

    name: str
    #: ``"Class.method"`` for methods, the bare name for functions.
    qualname: str
    lineno: int
    col: int
    params: list[ParamFact] = field(default_factory=list)
    #: Parameter names carrying an ``np.random.Generator``.
    generator_params: list[str] = field(default_factory=list)
    #: Whether some generator parameter has no default value.
    generator_required: bool = False
    #: Whether the body draws randomness from a generator value.
    draws_generator: bool = False
    calls: list[CallFact] = field(default_factory=list)
    returns: list[ReturnFact] = field(default_factory=list)
    iterations: list[IterationFact] = field(default_factory=list)
    # -- concurrency facts (populated by the dataflow pass) ------------
    attr_writes: list[AttrWriteFact] = field(default_factory=list)
    locked_reads: list[LockedReadFact] = field(default_factory=list)
    lock_acquires: list[LockAcquireFact] = field(default_factory=list)
    blocking_calls: list[BlockingCallFact] = field(default_factory=list)
    lazy_inits: list[LazyInitFact] = field(default_factory=list)
    thread_spawns: list[ThreadSpawnFact] = field(default_factory=list)
    #: Rendered receivers of ``.join()`` calls in the body.
    thread_joins: list[str] = field(default_factory=list)
    # -- numeric facts (populated by the numeric dataflow pass) --------
    narrowing_casts: list[NarrowingCastFact] = field(default_factory=list)
    mixed_precision: list[MixedPrecisionFact] = field(default_factory=list)
    shape_mismatches: list[ShapeMismatchFact] = field(default_factory=list)
    small_indices: list[SmallIndexFact] = field(default_factory=list)
    empty_reductions: list[EmptyReductionFact] = field(default_factory=list)


@dataclass
class ClassFacts:
    """Summary of one class definition."""

    name: str
    lineno: int
    col: int
    #: Base classes as written (dotted names; subscripts unwrapped).
    bases: list[str] = field(default_factory=list)
    methods: list[FunctionFacts] = field(default_factory=list)
    #: Method names declared ``@abstractmethod``/``@abstractproperty``.
    abstract_names: list[str] = field(default_factory=list)
    #: Names bound by class-level assignments.
    assigned_names: list[str] = field(default_factory=list)
    #: Locks this class constructs on ``self`` (the class *owns* them).
    lock_attrs: list[LockAttrFact] = field(default_factory=list)


@dataclass
class ModuleFacts:
    """Everything the project index needs to know about one module."""

    path: str
    module_name: str
    imports: list[ImportFact] = field(default_factory=list)
    functions: list[FunctionFacts] = field(default_factory=list)
    classes: list[ClassFacts] = field(default_factory=list)
    #: Module-global lock bindings (``_LOCK = threading.Lock()``).
    global_locks: list[LockAttrFact] = field(default_factory=list)
    #: line -> suppressed pragma codes, carried so the semantic pass can
    #: honour pragmas without re-reading the source.
    pragmas: dict[int, list[str]] = field(default_factory=dict)

    def all_functions(self) -> Iterable[FunctionFacts]:
        """Every function and method in the module, methods included."""
        yield from self.functions
        for cls in self.classes:
            yield from cls.methods

    def to_dict(self) -> dict:
        """JSON-serialisable representation (cache shard format)."""
        from dataclasses import asdict
        payload = asdict(self)
        payload["pragmas"] = {str(k): v for k, v in self.pragmas.items()}
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ModuleFacts":
        """Rebuild facts from :meth:`to_dict` output."""
        def call(c: Mapping) -> CallFact:
            return CallFact(
                callee=c["callee"], lineno=c["lineno"], col=c["col"],
                passes_generator=c["passes_generator"],
                held_locks=tuple(c.get("held_locks", ())))

        def function(d: Mapping) -> FunctionFacts:
            return FunctionFacts(
                name=d["name"], qualname=d["qualname"],
                lineno=d["lineno"], col=d["col"],
                params=[ParamFact(**p) for p in d["params"]],
                generator_params=list(d["generator_params"]),
                generator_required=d["generator_required"],
                draws_generator=d["draws_generator"],
                calls=[call(c) for c in d["calls"]],
                returns=[ReturnFact(**r) for r in d["returns"]],
                iterations=[IterationFact(**i) for i in d["iterations"]],
                attr_writes=[AttrWriteFact(
                    attr=w["attr"], lineno=w["lineno"], col=w["col"],
                    held=tuple(w["held"]))
                    for w in d.get("attr_writes", ())],
                locked_reads=[LockedReadFact(**r)
                              for r in d.get("locked_reads", ())],
                lock_acquires=[LockAcquireFact(
                    lock=a["lock"], lineno=a["lineno"], col=a["col"],
                    held=tuple(a["held"]))
                    for a in d.get("lock_acquires", ())],
                blocking_calls=[BlockingCallFact(
                    callee=b["callee"], lineno=b["lineno"], col=b["col"],
                    held=tuple(b["held"]))
                    for b in d.get("blocking_calls", ())],
                lazy_inits=[LazyInitFact(
                    attr=z["attr"], lineno=z["lineno"], col=z["col"],
                    write_lineno=z["write_lineno"],
                    write_col=z["write_col"], held=tuple(z["held"]),
                    write_held=tuple(z["write_held"]))
                    for z in d.get("lazy_inits", ())],
                thread_spawns=[ThreadSpawnFact(**s)
                               for s in d.get("thread_spawns", ())],
                thread_joins=list(d.get("thread_joins", ())),
                narrowing_casts=[NarrowingCastFact(**n)
                                 for n in d.get("narrowing_casts", ())],
                mixed_precision=[MixedPrecisionFact(**m)
                                 for m in d.get("mixed_precision", ())],
                shape_mismatches=[ShapeMismatchFact(**s)
                                  for s in d.get("shape_mismatches", ())],
                small_indices=[SmallIndexFact(**s)
                               for s in d.get("small_indices", ())],
                empty_reductions=[EmptyReductionFact(**e)
                                  for e in d.get("empty_reductions", ())],
            )

        return cls(
            path=payload["path"],
            module_name=payload["module_name"],
            imports=[ImportFact(**i) for i in payload["imports"]],
            functions=[function(f) for f in payload["functions"]],
            classes=[ClassFacts(
                name=c["name"], lineno=c["lineno"], col=c["col"],
                bases=list(c["bases"]),
                methods=[function(m) for m in c["methods"]],
                abstract_names=list(c["abstract_names"]),
                assigned_names=list(c["assigned_names"]),
                lock_attrs=[LockAttrFact(**a)
                            for a in c.get("lock_attrs", ())],
            ) for c in payload["classes"]],
            global_locks=[LockAttrFact(**g)
                          for g in payload.get("global_locks", ())],
            pragmas={int(k): list(v)
                     for k, v in payload["pragmas"].items()},
        )


def is_generator_param(name: str, annotation: str | None) -> bool:
    """Whether a parameter is, by convention or annotation, a Generator."""
    if annotation is not None and "Generator" in annotation:
        return True
    return name in _GENERATOR_NAMES or name.endswith("_rng")


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _normalise_dtype(node: ast.expr | None) -> str | None:
    """Canonical dtype name for a ``dtype=`` argument, if recognisable."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value
    else:
        dotted = _dotted(node)
        if dotted is None:
            return None
        name = dotted.rpartition(".")[2]
    return _DTYPE_ALIASES.get(name, name)


def _shape_rank(node: ast.expr) -> int | None:
    """Array rank implied by a shape argument (tuple length or scalar)."""
    if isinstance(node, ast.Tuple):
        return len(node.elts)
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return 1
    return None


def _argument(call: ast.Call, position: int, keyword: str) -> ast.expr | None:
    """Positional-or-keyword argument lookup on a call node."""
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    if len(call.args) > position:
        return call.args[position]
    return None


class _GeneratorScope:
    """Names and attribute patterns that hold generator values locally."""

    def __init__(self, gen_params: Iterable[str]) -> None:
        self.names = set(gen_params)

    def note_assignment(self, target: str, value: ast.expr) -> None:
        """Record ``target = np.random.default_rng(...)`` style bindings."""
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func)
            if dotted is not None and dotted.rpartition(".")[2] == "default_rng":
                self.names.add(target)

    def holds_generator(self, node: ast.expr) -> bool:
        """Whether an expression syntactically carries a generator."""
        if isinstance(node, ast.Name):
            return (node.id in self.names
                    or is_generator_param(node.id, None))
        if isinstance(node, ast.Attribute):
            attr = node.attr.lstrip("_")
            return ("rng" in attr or attr == "generator"
                    or attr.endswith("generator"))
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            return (dotted is not None
                    and dotted.rpartition(".")[2] == "default_rng"
                    and bool(node.args or node.keywords))
        return False


def _classify_value(node: ast.expr,
                    locals_map: Mapping[str, ast.expr],
                    depth: int = 0) -> tuple[str, str | None, int | None,
                                             str | None]:
    """``(kind, dtype, rank, callee)`` classification of an expression."""
    if isinstance(node, ast.Name) and depth < 2:
        assigned = locals_map.get(node.id)
        if assigned is not None:
            return _classify_value(assigned, locals_map, depth + 1)
        return "other", None, None, None
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set", None, None, None
    if not isinstance(node, ast.Call):
        return "other", None, None, None

    func = node.func
    if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
        return "set", None, None, None
    if isinstance(func, ast.Attribute):
        if func.attr in _SET_METHODS:
            return "set", None, None, None
        if func.attr == "astype":
            return "array", _normalise_dtype(_argument(node, 0, "dtype")), \
                None, None
    dotted = _dotted(func)
    if dotted is None:
        return "other", None, None, None
    tail = dotted.rpartition(".")[2]
    if tail in _FLOAT64_CTORS:
        shape = _argument(node, 0, "shape")
        position = 2 if tail == "full" else 1
        dtype_node = _argument(node, position, "dtype")
        dtype = _normalise_dtype(dtype_node) if dtype_node is not None \
            else "float64"
        rank = _shape_rank(shape) if shape is not None else None
        return "array", dtype, rank, None
    if tail in _ARRAY_CTORS:
        return "array", _normalise_dtype(_argument(node, 1, "dtype")), \
            None, None
    if tail in _ARRAY_COMBINATORS:
        return "array", None, None, None
    return "call", None, None, dotted


def _unwrap_iterable(node: ast.expr) -> ast.expr | None:
    """Strip order-neutral wrappers; ``None`` when order is made safe."""
    while isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        name = node.func.id
        if name in ("sorted", "min", "max", "sum", "len", "frozenset",
                    "set", "any", "all"):
            # sorted() fixes the order; the aggregations are orderless.
            # set()/frozenset() of an iterable is flagged at *its* own
            # iteration site, not here.
            return None
        if name in ("list", "tuple", "enumerate", "reversed", "iter"):
            if not node.args:
                return None
            node = node.args[0]
            continue
        break
    return node


def _own_body_walk(node: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _extract_function(node: ast.FunctionDef | ast.AsyncFunctionDef,
                      qualname: str) -> FunctionFacts:
    args = node.args
    params: list[ParamFact] = []
    positional = [*args.posonlyargs, *args.args]
    n_without_default = len(positional) - len(args.defaults)
    for position, arg in enumerate(positional):
        annotation = (ast.unparse(arg.annotation)
                      if arg.annotation is not None else None)
        params.append(ParamFact(name=arg.arg, annotation=annotation,
                                has_default=position >= n_without_default))
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        annotation = (ast.unparse(arg.annotation)
                      if arg.annotation is not None else None)
        params.append(ParamFact(name=arg.arg, annotation=annotation,
                                has_default=default is not None))

    generator_params = [p.name for p in params
                        if is_generator_param(p.name, p.annotation)
                        and p.name not in ("self", "cls")]
    generator_required = any(
        not p.has_default for p in params if p.name in generator_params)

    scope = _GeneratorScope(generator_params)
    locals_map: dict[str, ast.expr] = {}
    conflicting: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Assign) and len(child.targets) == 1:
            target = child.targets[0]
            if isinstance(target, ast.Name):
                scope.note_assignment(target.id, child.value)
                if target.id in locals_map:
                    conflicting.add(target.id)
                else:
                    locals_map[target.id] = child.value
    for name in conflicting:
        locals_map.pop(name, None)

    facts = FunctionFacts(name=node.name, qualname=qualname,
                          lineno=node.lineno, col=node.col_offset + 1,
                          params=params,
                          generator_params=generator_params,
                          generator_required=generator_required)

    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        func = child.func
        if (isinstance(func, ast.Attribute)
                and scope.holds_generator(func.value)):
            facts.draws_generator = True
            continue
        dotted = _dotted(func)
        if dotted is None:
            continue
        passes = any(scope.holds_generator(arg) for arg in child.args)
        passes = passes or any(scope.holds_generator(kw.value)
                               for kw in child.keywords)
        facts.calls.append(CallFact(callee=dotted, lineno=child.lineno,
                                    col=child.col_offset + 1,
                                    passes_generator=passes))

    for child in _own_body_walk(node):
        if isinstance(child, ast.Return) and child.value is not None:
            kind, dtype, rank, callee = _classify_value(child.value,
                                                        locals_map)
            facts.returns.append(ReturnFact(
                lineno=child.lineno, col=child.col_offset + 1,
                kind=kind, dtype=dtype, rank=rank, callee=callee))
        iterables: list[ast.expr] = []
        if isinstance(child, (ast.For, ast.AsyncFor)):
            iterables.append(child.iter)
        elif isinstance(child, (ast.ListComp, ast.SetComp, ast.DictComp,
                                ast.GeneratorExp)):
            iterables.extend(gen.iter for gen in child.generators)
        for iterable in iterables:
            unwrapped = _unwrap_iterable(iterable)
            if unwrapped is None:
                continue
            kind, _, _, callee = _classify_value(unwrapped, locals_map)
            if kind == "set":
                facts.iterations.append(IterationFact(
                    lineno=iterable.lineno, col=iterable.col_offset + 1,
                    kind="set", callee=None,
                    rendered=ast.unparse(unwrapped)))
            elif kind == "call" and callee is not None:
                facts.iterations.append(IterationFact(
                    lineno=iterable.lineno, col=iterable.col_offset + 1,
                    kind="call", callee=callee,
                    rendered=ast.unparse(unwrapped)))
    return facts


def _base_name(node: ast.expr) -> str | None:
    while isinstance(node, ast.Subscript):  # Generic[...] and friends
        node = node.value
    return _dotted(node)


def _decorator_label(node: ast.expr) -> str | None:
    if isinstance(node, ast.Call):
        node = node.func
    dotted = _dotted(node)
    return dotted.rpartition(".")[2] if dotted else None


def _extract_class(node: ast.ClassDef) -> ClassFacts:
    facts = ClassFacts(name=node.name, lineno=node.lineno,
                       col=node.col_offset + 1,
                       bases=[b for b in (_base_name(base)
                                          for base in node.bases)
                              if b is not None])
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            labels = {_decorator_label(d) for d in stmt.decorator_list}
            if labels & {"abstractmethod", "abstractproperty"}:
                facts.abstract_names.append(stmt.name)
            facts.methods.append(
                _extract_function(stmt, f"{node.name}.{stmt.name}"))
        elif isinstance(stmt, ast.Assign):
            facts.assigned_names.extend(
                t.id for t in stmt.targets if isinstance(t, ast.Name))
        elif (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.value is not None):
            facts.assigned_names.append(stmt.target.id)
    return facts


def _resolve_relative(module_name: str, is_package_init: bool,
                      node: ast.ImportFrom) -> str | None:
    """Absolute module an import-from targets (mirrors RPR301's logic)."""
    if node.level == 0:
        return node.module
    parts = module_name.split(".")
    cut = node.level - 1 if is_package_init else node.level
    if cut >= len(parts):
        return node.module
    base = parts[:len(parts) - cut]
    if node.module:
        base.append(node.module)
    return ".".join(base)


def extract_module_facts(tree: ast.Module, *, path: str, module_name: str,
                         pragmas: Mapping[int, Iterable[str]] | None = None
                         ) -> ModuleFacts:
    """Extract the semantic fact summary of one parsed module."""
    is_package_init = path.rsplit("/", 1)[-1] == "__init__.py"
    facts = ModuleFacts(path=path, module_name=module_name,
                        pragmas={line: sorted(codes)
                                 for line, codes in (pragmas or {}).items()})
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            facts.functions.append(_extract_function(stmt, stmt.name))
        elif isinstance(stmt, ast.ClassDef):
            facts.classes.append(_extract_class(stmt))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                facts.imports.append(ImportFact(
                    module=alias.name, name=None, alias=local))
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_relative(module_name, is_package_init, node)
            if target is None:
                continue
            for alias in node.names:
                facts.imports.append(ImportFact(
                    module=target, name=alias.name,
                    alias=alias.asname or alias.name))
    return facts
