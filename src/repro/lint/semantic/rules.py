"""Interprocedural rules running on the project index.

These rules implement only the ``finish_project`` hook: the engine
hands them a :class:`~repro.lint.engine.ProjectContext` carrying the
:class:`~repro.lint.semantic.index.ProjectIndex`, and they report
through it (pragmas and baseline apply exactly as for syntactic rules).

Every finding is attributed to a file whose *import closure* determines
it — the call site, the surface method's return, the iteration site —
never to a file merely reached through the graph.  That invariant is
what makes transitive cache invalidation along the import graph sound.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.lint.registry import Rule, register
from repro.lint.semantic.facts import (
    FunctionFacts,
    ModuleFacts,
    ReturnFact,
)
from repro.lint.semantic.index import ProjectIndex

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lint.engine import ProjectContext

__all__ = [
    "FeatureDtypeDriftRule",
    "FeatureShapeContractRule",
    "GeneratorThreadingRule",
    "UnorderedIterationRule",
]

#: ``(module facts, enclosing class name or None, function facts)``.
_FunctionSite = tuple[ModuleFacts, "str | None", FunctionFacts]


def _function_sites(index: ProjectIndex) -> Iterable[_FunctionSite]:
    """Every function in the index with its module and enclosing class."""
    for mf in index.modules.values():
        for fn in mf.functions:
            yield mf, None, fn
        for cls in mf.classes:
            for method in cls.methods:
                yield mf, cls.name, method


def _module_in(module_name: str, prefixes: Iterable[str]) -> bool:
    return any(module_name == p or module_name.startswith(p + ".")
               for p in prefixes)


def _function_key(mf: ModuleFacts, fn: FunctionFacts) -> tuple[str, str]:
    return (mf.module_name, fn.qualname)


@register
class GeneratorThreadingRule(Rule):
    """A seeded ``np.random.Generator`` must thread intact through the
    call graph: any call that reaches a stochastic project function must
    pass a generator explicitly.  This is the cross-file completion of
    RPR201/RPR202 — those catch the draw site, this catches the caller
    that silently drops the seed at a module boundary.
    """

    code = "RPR203"
    name = "generator-threading"
    summary = "Calls reaching stochastic code must pass a Generator"
    example_bad = 'def fit(self, data):\n    train(data)  # train() draws randomness internally'
    example_good = 'def fit(self, data, rng):\n    train(data, rng=rng)'

    def finish_project(self, project: "ProjectContext") -> None:
        """Flag call sites into generator-requiring functions."""
        index = project.index
        requiring = self._requiring_functions(index)
        if not requiring:
            return
        for mf, class_name, fn in _function_sites(index):
            for call in fn.calls:
                if call.passes_generator:
                    continue
                resolved = index.resolve_call(mf.module_name, call.callee,
                                              enclosing_class=class_name)
                if resolved is None:
                    continue
                target_key = _function_key(resolved[0], resolved[1])
                if target_key in requiring:
                    project.report(
                        self.code, mf.path, call.lineno, call.col,
                        f"call to `{call.callee}` reaches stochastic "
                        f"`{resolved[0].module_name}."
                        f"{resolved[1].qualname}` without an explicit "
                        "np.random.Generator argument; thread a seeded "
                        "Generator through this call")

    @staticmethod
    def _requiring_functions(index: ProjectIndex) -> set[tuple[str, str]]:
        """Fixed point: functions whose determinism needs a caller's rng.

        Base case: a required (no-default) generator parameter and a
        direct draw from a generator value.  Propagation: a required
        generator parameter forwarded into another requiring function.
        """
        sites = list(_function_sites(index))
        requiring: set[tuple[str, str]] = {
            _function_key(mf, fn) for mf, _, fn in sites
            if fn.generator_required and fn.draws_generator}
        changed = True
        while changed:
            changed = False
            for mf, class_name, fn in sites:
                key = _function_key(mf, fn)
                if key in requiring or not fn.generator_required:
                    continue
                for call in fn.calls:
                    if not call.passes_generator:
                        continue
                    resolved = index.resolve_call(
                        mf.module_name, call.callee,
                        enclosing_class=class_name)
                    if resolved is not None and \
                            _function_key(*resolved) in requiring:
                        requiring.add(key)
                        changed = True
                        break
        return requiring


class _SurfaceReturnsRule(Rule):
    """Shared traversal: transitive returns of featurize surfaces.

    Subclasses check the resolved :class:`ReturnFact` leaves of every
    featurize-surface method.  Findings always anchor at the surface's
    *own* return statement, so they live in a file that imports
    everything the verdict depends on.
    """

    #: Module prefixes owning the feature-emission surface.
    module_prefixes = ("repro.featurize",)
    #: Surface method name -> expected emitted array rank.
    surface_ranks = {"featurize": 1, "_featurize_expr": 1,
                     "_featurize_compiled": 2, "featurize_batch": 2}

    def _surface_sites(self, index: ProjectIndex) -> Iterable[
            tuple[ModuleFacts, "str | None", FunctionFacts, int]]:
        for mf, class_name, fn in _function_sites(index):
            if not _module_in(mf.module_name, self.module_prefixes):
                continue
            expected = self.surface_ranks.get(fn.name)
            if expected is not None:
                yield mf, class_name, fn, expected

    def _resolved_leaves(self, index: ProjectIndex, mf: ModuleFacts,
                         class_name: "str | None", fn: FunctionFacts,
                         ) -> Iterable[tuple[ReturnFact, ReturnFact, str]]:
        """``(surface return, leaf return, via)`` triples for a surface.

        ``leaf`` is the transitively-resolved classification the surface
        return ultimately produces; ``via`` names the callee chain for
        the message (empty for direct returns).
        """
        for surface_return in fn.returns:
            for leaf, via in self._chase(index, mf, class_name,
                                         surface_return, frozenset(), ""):
                yield surface_return, leaf, via

    def _chase(self, index: ProjectIndex, mf: ModuleFacts,
               class_name: "str | None", ret: ReturnFact,
               seen: frozenset, via: str) -> Iterable[tuple[ReturnFact,
                                                            str]]:
        if ret.kind != "call" or ret.callee is None:
            yield ret, via
            return
        resolved = index.resolve_call(mf.module_name, ret.callee,
                                      enclosing_class=class_name)
        if resolved is None:
            yield ret, via
            return
        target_mf, target_fn = resolved
        key = (target_mf.module_name, target_fn.qualname)
        if key in seen or len(seen) >= 8:
            return
        hop = f"{via} -> {ret.callee}()" if via else f"via {ret.callee}()"
        target_class = target_fn.qualname.rpartition(".")[0] or None
        for inner in target_fn.returns:
            yield from self._chase(index, target_mf, target_class, inner,
                                   seen | {key}, hop)


@register
class FeatureDtypeDriftRule(_SurfaceReturnsRule):
    """Feature matrices decode exactly (Definition 3.1) only at float64;
    a helper two modules away returning float32 silently halves the
    mantissa of every encoded bound.  This rule propagates numpy dtype
    facts through the call graph and flags any featurize surface whose
    emitted dtype drifts below float64.
    """

    code = "RPR106"
    name = "feature-dtype-drift"
    summary = "Featurize surfaces must emit float64 feature matrices"
    example_bad = 'def featurize(self, query):\n    return np.zeros(8, dtype=np.float32)'
    example_good = 'def featurize(self, query):\n    return np.zeros(8)  # numpy defaults to float64'

    _NARROW = frozenset({"float32", "float16"})

    def finish_project(self, project: "ProjectContext") -> None:
        """Flag featurize surfaces that transitively emit narrow floats."""
        index = project.index
        for mf, class_name, fn, _ in self._surface_sites(index):
            for surface_return, leaf, via in self._resolved_leaves(
                    index, mf, class_name, fn):
                if leaf.dtype in self._NARROW:
                    suffix = f" ({via})" if via else ""
                    project.report(
                        self.code, mf.path, surface_return.lineno,
                        surface_return.col,
                        f"{fn.qualname}() emits {leaf.dtype}{suffix}; "
                        "feature matrices must stay float64 for exact "
                        "decoding (Def. 3.1)")


@register
class FeatureShapeContractRule(_SurfaceReturnsRule):
    """Scalar featurize surfaces emit ``(feature_length,)`` vectors and
    batch kernels emit ``(n, feature_length)`` matrices; a rank mismatch
    means the kernel's output cannot line up with ``feature_length`` at
    all.  Rank facts propagate through the call graph like dtypes.
    """

    code = "RPR107"
    name = "feature-shape-contract"
    summary = "Featurize surfaces must emit the contracted array rank"
    example_bad = 'def featurize_batch(self, queries):\n    return np.zeros(8)  # rank 1; the batch contract is rank 2'
    example_good = 'def featurize_batch(self, queries):\n    return np.zeros((len(queries), 8))'

    def finish_project(self, project: "ProjectContext") -> None:
        """Flag featurize surfaces returning the wrong array rank."""
        index = project.index
        for mf, class_name, fn, expected in self._surface_sites(index):
            for surface_return, leaf, via in self._resolved_leaves(
                    index, mf, class_name, fn):
                if leaf.rank is not None and leaf.rank != expected:
                    contract = ("(feature_length,) vector" if expected == 1
                                else "(n, feature_length) matrix")
                    suffix = f" ({via})" if via else ""
                    project.report(
                        self.code, mf.path, surface_return.lineno,
                        surface_return.col,
                        f"{fn.qualname}() emits a rank-{leaf.rank} "
                        f"array{suffix} but the batch contract requires "
                        f"a {contract}")


@register
class UnorderedIterationRule(Rule):
    """Iterating a ``set`` decides feature-emission order by string-hash
    seed: two processes emit differently-ordered features for the same
    query, which breaks Equation 4 bitwise.  The cross-file case — a
    helper in another module returning a set that a featurize loop
    consumes — is invisible to per-file rules, so this one resolves
    iteration sources through the call graph.
    """

    code = "RPR204"
    name = "unordered-iteration"
    summary = "No set-ordered iteration in feature-emission code"
    example_bad = 'for name in {c.name for c in columns}:\n    emit(name)'
    example_good = 'for name in sorted({c.name for c in columns}):\n    emit(name)'

    #: Packages whose iteration order reaches feature emission.
    module_prefixes = ("repro.featurize", "repro.workloads")

    def finish_project(self, project: "ProjectContext") -> None:
        """Flag hash-ordered iteration inside feature-emission modules."""
        index = project.index
        set_returners = self._set_returning(index)
        for mf, class_name, fn in _function_sites(index):
            if not _module_in(mf.module_name, self.module_prefixes):
                continue
            for iteration in fn.iterations:
                reason = None
                if iteration.kind == "set":
                    reason = "is a set"
                elif iteration.kind == "call" and iteration.callee:
                    resolved = index.resolve_call(
                        mf.module_name, iteration.callee,
                        enclosing_class=class_name)
                    if resolved is not None and \
                            _function_key(*resolved) in set_returners:
                        reason = (f"calls `{resolved[0].module_name}."
                                  f"{resolved[1].qualname}` which "
                                  "returns a set")
                if reason is not None:
                    project.report(
                        self.code, mf.path, iteration.lineno,
                        iteration.col,
                        f"iteration over `{iteration.rendered}` {reason}; "
                        "set order is hash-seed dependent and flows into "
                        "feature-emission order — sort first")

    @staticmethod
    def _set_returning(index: ProjectIndex) -> set[tuple[str, str]]:
        """Fixed point of functions that (transitively) return a set."""
        sites = list(_function_sites(index))
        returning: set[tuple[str, str]] = {
            _function_key(mf, fn) for mf, _, fn in sites
            if any(r.kind == "set" for r in fn.returns)}
        changed = True
        while changed:
            changed = False
            for mf, class_name, fn in sites:
                key = _function_key(mf, fn)
                if key in returning:
                    continue
                for ret in fn.returns:
                    if ret.kind != "call" or ret.callee is None:
                        continue
                    resolved = index.resolve_call(
                        mf.module_name, ret.callee,
                        enclosing_class=class_name)
                    if resolved is not None and \
                            _function_key(*resolved) in returning:
                        returning.add(key)
                        changed = True
                        break
        return returning
