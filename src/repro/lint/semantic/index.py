"""The project index: module graph, symbol resolution, call graph.

Built once per run from the per-file :class:`~repro.lint.semantic.facts.
ModuleFacts` summaries (cached per content hash), the index answers the
cross-module questions the interprocedural rules ask:

* *import graph* — which project modules does a module import, and,
  transitively, which files must be re-analysed when one file changes
  (:meth:`ProjectIndex.dependent_paths`);
* *symbol resolution* — what does a name in a module refer to,
  following ``from x import y`` chains and package re-exports;
* *class hierarchy* — ``Featurizer`` (or any root) subclass closure
  with inherited-member lookup;
* *call graph* — approximate resolution of call sites to project
  functions, including ``self.method`` dispatch and constructor calls.

Resolution is best-effort: anything the index cannot resolve (builtins,
third-party calls, dynamic dispatch) is simply invisible to the
analyses, which keeps them quiet rather than wrong.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.lint.semantic.facts import ClassFacts, FunctionFacts, ModuleFacts

__all__ = ["ProjectIndex", "ResolvedSymbol", "LockOrderGraph"]

#: Maximum re-export chain length followed during symbol resolution.
_MAX_CHASE = 16


class ResolvedSymbol:
    """What a name in a module resolves to within the project."""

    #: ``"function"``, ``"class"``, or ``"module"``.
    kind: str

    def __init__(self, kind: str, module: ModuleFacts | None,
                 function: FunctionFacts | None = None,
                 cls: ClassFacts | None = None) -> None:
        self.kind = kind
        #: Module the symbol is defined in (the target for ``module``).
        self.module = module
        #: Function facts when ``kind == "function"``.
        self.function = function
        #: Class facts when ``kind == "class"``.
        self.cls = cls


class ProjectIndex:
    """Cross-module resolution structures built from module facts."""

    def __init__(self, facts: Iterable[ModuleFacts]) -> None:
        #: Module facts keyed by dotted module name.
        self.modules: dict[str, ModuleFacts] = {}
        #: Module facts keyed by scan-relative path.
        self.by_path: dict[str, ModuleFacts] = {}
        for mf in facts:
            self.modules[mf.module_name] = mf
            self.by_path[mf.path] = mf
        #: module name -> project modules it imports (direct edges).
        self.imports_of: dict[str, set[str]] = {}
        #: module name -> project modules importing it (reverse edges).
        self.importers_of: dict[str, set[str]] = {
            name: set() for name in self.modules}
        for name, mf in self.modules.items():
            edges: set[str] = set()
            for imp in mf.imports:
                target = self._project_module(imp.module)
                if target is not None and target != name:
                    edges.add(target)
                # ``from pkg import submodule`` depends on the submodule
                # itself, not just the package __init__ — without this
                # edge an edit to the submodule would never invalidate
                # the importer's cached semantic findings.
                if imp.name is not None and imp.name != "*":
                    submodule = f"{imp.module}.{imp.name}"
                    if submodule in self.modules and submodule != name:
                        edges.add(submodule)
            self.imports_of[name] = edges
            for target in edges:
                self.importers_of[target].add(name)
        #: bare class name -> [(module facts, class facts)] definitions.
        self.classes_by_name: dict[str, list[tuple[ModuleFacts,
                                                   ClassFacts]]] = {}
        for mf in self.modules.values():
            for cls in mf.classes:
                self.classes_by_name.setdefault(cls.name, []).append(
                    (mf, cls))

    # ------------------------------------------------------------------
    # import graph

    def _project_module(self, dotted: str) -> str | None:
        """Longest known project module matching ``dotted`` (or prefix)."""
        name = dotted
        while name:
            if name in self.modules:
                return name
            name = name.rpartition(".")[0]
        return None

    def dependent_paths(self, paths: Iterable[str]) -> set[str]:
        """Transitive importers (by path) of the given changed paths.

        This is the cache-invalidation frontier: every semantic finding
        is attributed to a file whose import closure determines it, so a
        change can only affect the changed files and their transitive
        importers.
        """
        queue = [self.by_path[p].module_name
                 for p in paths if p in self.by_path]
        seen: set[str] = set(queue)
        while queue:
            current = queue.pop()
            for importer in self.importers_of.get(current, ()):
                if importer not in seen:
                    seen.add(importer)
                    queue.append(importer)
        return {self.modules[name].path for name in seen}

    # ------------------------------------------------------------------
    # symbol resolution

    def resolve_symbol(self, module_name: str,
                       name: str) -> ResolvedSymbol | None:
        """Resolve a (possibly dotted) name in a module's global scope."""
        head, _, rest = name.partition(".")
        symbol = self._resolve_binding(module_name, head)
        while symbol is not None and rest:
            head, _, rest = rest.partition(".")
            if symbol.kind == "module" and symbol.module is not None:
                symbol = self._resolve_binding(
                    symbol.module.module_name, head)
            elif symbol.kind == "class" and symbol.cls is not None:
                method = self._find_method(symbol.module, symbol.cls, head)
                if method is None or rest:
                    return None
                return ResolvedSymbol("function", symbol.module,
                                      function=method)
            else:
                return None
        return symbol

    def _resolve_binding(self, module_name: str, name: str,
                         _depth: int = 0) -> ResolvedSymbol | None:
        if _depth > _MAX_CHASE:
            return None
        mf = self.modules.get(module_name)
        if mf is None:
            return None
        for function in mf.functions:
            if function.name == name:
                return ResolvedSymbol("function", mf, function=function)
        for cls in mf.classes:
            if cls.name == name:
                return ResolvedSymbol("class", mf, cls=cls)
        star_targets: list[str] = []
        for imp in mf.imports:
            if imp.name == "*":
                star_targets.append(imp.module)
                continue
            if imp.alias != name:
                continue
            if imp.name is None:
                target = self._project_module(imp.module)
                if target is not None:
                    return ResolvedSymbol("module", self.modules[target])
                return None
            target = self._project_module(imp.module)
            if target is None:
                return None
            return self._resolve_binding(target, imp.name, _depth + 1)
        for target_module in star_targets:
            target = self._project_module(target_module)
            if target is not None:
                symbol = self._resolve_binding(target, name, _depth + 1)
                if symbol is not None:
                    return symbol
        submodule = f"{module_name}.{name}"
        if submodule in self.modules:
            return ResolvedSymbol("module", self.modules[submodule])
        return None

    # ------------------------------------------------------------------
    # class hierarchy

    def resolve_base(self, module: ModuleFacts,
                     base: str) -> tuple[ModuleFacts, ClassFacts] | None:
        """Resolve a base-class name as written in a class statement.

        Import-based resolution first; when that fails, fall back to a
        unique bare-name match across the project (mirroring the
        pre-index behaviour of the Featurizer-surface rule).
        """
        symbol = self.resolve_symbol(module.module_name, base)
        if symbol is not None and symbol.kind == "class" \
                and symbol.cls is not None and symbol.module is not None:
            return symbol.module, symbol.cls
        bare = base.rpartition(".")[2]
        candidates = self.classes_by_name.get(bare, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def iter_ancestry(self, module: ModuleFacts, cls: ClassFacts
                      ) -> Iterator[tuple[ModuleFacts, ClassFacts]]:
        """The class and its project ancestors, nearest first."""
        queue: list[tuple[ModuleFacts, ClassFacts]] = [(module, cls)]
        seen: set[tuple[str, str]] = set()
        while queue:
            mf, current = queue.pop(0)
            key = (mf.module_name, current.name)
            if key in seen:
                continue
            seen.add(key)
            yield mf, current
            for base in current.bases:
                resolved = self.resolve_base(mf, base)
                if resolved is not None:
                    queue.append(resolved)

    def subclasses_of(self, root_name: str
                      ) -> list[tuple[ModuleFacts, ClassFacts]]:
        """Transitive project subclasses of the class named ``root_name``.

        Matching follows resolved bases where possible and bare base
        names otherwise, so single-file trees (unit tests) and the real
        multi-module hierarchy both resolve.
        """
        known: set[tuple[str, str]] = {
            (mf.module_name, cls.name)
            for mf, cls in self.classes_by_name.get(root_name, [])}
        if not known:
            return []
        result: list[tuple[ModuleFacts, ClassFacts]] = []
        changed = True
        members = [(mf, cls) for mf in self.modules.values()
                   for cls in mf.classes]
        while changed:
            changed = False
            for mf, cls in members:
                key = (mf.module_name, cls.name)
                if key in known:
                    continue
                for base in cls.bases:
                    resolved = self.resolve_base(mf, base)
                    if resolved is not None:
                        base_key = (resolved[0].module_name,
                                    resolved[1].name)
                    else:
                        base_key = None
                    bare = base.rpartition(".")[2]
                    if (base_key in known
                            or any(k[1] == bare for k in known)):
                        known.add(key)
                        result.append((mf, cls))
                        changed = True
                        break
        return result

    # ------------------------------------------------------------------
    # call graph

    def _find_method(self, module: ModuleFacts | None, cls: ClassFacts,
                     name: str) -> FunctionFacts | None:
        if module is None:
            return None
        for mf, current in self.iter_ancestry(module, cls):
            for method in current.methods:
                if method.name == name:
                    return method
        return None

    def resolve_call(self, module_name: str, callee: str,
                     enclosing_class: str | None = None
                     ) -> tuple[ModuleFacts, FunctionFacts] | None:
        """Resolve a call site to a project function, best effort.

        ``callee`` is the dotted name as written (``"helper"``,
        ``"mod.helper"``, ``"self.method"``, ``"Cls"``); constructor
        calls resolve to the class's ``__init__``.  Returns ``None`` for
        anything outside the project or not statically resolvable.
        """
        mf = self.modules.get(module_name)
        if mf is None:
            return None
        head, _, rest = callee.partition(".")
        if head in ("self", "cls") and enclosing_class is not None:
            if not rest or "." in rest:
                return None
            for cls in mf.classes:
                if cls.name == enclosing_class:
                    method = self._find_method(mf, cls, rest)
                    if method is not None:
                        owner = self._method_owner(mf, cls, rest)
                        return owner if owner is not None else (mf, method)
            return None
        symbol = self.resolve_symbol(module_name, callee)
        if symbol is None or symbol.module is None:
            return None
        if symbol.kind == "function" and symbol.function is not None:
            return symbol.module, symbol.function
        if symbol.kind == "class" and symbol.cls is not None:
            init = self._find_method(symbol.module, symbol.cls, "__init__")
            if init is not None:
                return symbol.module, init
        return None

    def _method_owner(self, module: ModuleFacts, cls: ClassFacts,
                      name: str) -> tuple[ModuleFacts, FunctionFacts] | None:
        for mf, current in self.iter_ancestry(module, cls):
            for method in current.methods:
                if method.name == name:
                    return mf, method
        return None

    # ------------------------------------------------------------------
    # lock ownership (the RPR4xx substrate)

    def function_sites(self) -> Iterator[tuple[ModuleFacts, "str | None",
                                               FunctionFacts]]:
        """Every function with its module and enclosing class name."""
        for mf in self.modules.values():
            for fn in mf.functions:
                yield mf, None, fn
            for cls in mf.classes:
                for method in cls.methods:
                    yield mf, cls.name, method

    def class_lock_attrs(self, module: ModuleFacts,
                         cls: ClassFacts) -> dict[str, str]:
        """Lock attribute name -> kind, inherited locks included."""
        locks: dict[str, str] = {}
        for _, current in self.iter_ancestry(module, cls):
            for lock in current.lock_attrs:
                locks.setdefault(lock.name, lock.kind)
        return locks

    def guarded_attrs(self, module: ModuleFacts,
                      cls: ClassFacts) -> dict[str, set[str]]:
        """Attribute name -> owning lock attribute names.

        An attribute is *guarded* by a class-owned lock when any method
        in the class (or an ancestor) touches it — write or read — while
        must-holding ``self.<lock>``.  ``__init__`` is excluded: the
        constructor runs before the object is shared, so its unlocked
        writes are not ownership evidence against the lock.
        """
        locks = self.class_lock_attrs(module, cls)
        guards: dict[str, set[str]] = {}
        for _, current in self.iter_ancestry(module, cls):
            for method in current.methods:
                if method.name == "__init__":
                    continue
                for write in method.attr_writes:
                    for token in write.held:
                        self._note_guard(guards, write.attr, token, locks)
                for read in method.locked_reads:
                    self._note_guard(guards, read.attr, read.lock, locks)
        return guards

    @staticmethod
    def _note_guard(guards: dict[str, set[str]], attr: str, token: str,
                    locks: dict[str, str]) -> None:
        prefix, _, lock_name = token.rpartition(".")
        if prefix == "self" and lock_name in locks:
            guards.setdefault(attr, set()).add(lock_name)

    def canonical_lock(self, module: ModuleFacts,
                       class_name: "str | None",
                       token: str) -> "str | None":
        """Project-wide identity of a lock token seen in ``module``.

        ``self._lock`` in class ``C`` of module ``m`` becomes
        ``"m.C._lock"``; a module-global ``_LOCK`` becomes
        ``"m._LOCK"``, following one ``from x import _LOCK`` hop.
        Deeper attribute chains (``self._service._lock``) cannot be
        typed statically and map to ``None`` (invisible to the graph).
        """
        if token.startswith("self.") or token.startswith("cls."):
            rest = token.partition(".")[2]
            if "." in rest or class_name is None:
                return None
            return f"{module.module_name}.{class_name}.{rest}"
        head, _, rest = token.partition(".")
        if not rest:
            for imp in module.imports:
                if imp.alias == head and imp.name is not None \
                        and imp.name != "*":
                    target = self._project_module(imp.module)
                    if target is not None:
                        return f"{target}.{imp.name}"
            return f"{module.module_name}.{head}"
        for imp in module.imports:
            if imp.alias != head or "." in rest:
                continue
            if imp.name is None:
                target = self._project_module(imp.module)
                if target is not None:
                    return f"{target}.{rest}"
            elif imp.name != "*":
                # ``from pkg import submodule`` binds a module object;
                # ``head.rest`` is then that module's global.
                candidate = f"{imp.module}.{imp.name}"
                if candidate in self.modules:
                    return f"{candidate}.{rest}"
        return None

    def lock_kinds(self) -> dict[str, str]:
        """Canonical lock id -> ``"Lock"``/``"RLock"`` for declared locks."""
        kinds: dict[str, str] = {}
        for mf in self.modules.values():
            for lock in mf.global_locks:
                kinds[f"{mf.module_name}.{lock.name}"] = lock.kind
            for cls in mf.classes:
                for lock in cls.lock_attrs:
                    kinds[f"{mf.module_name}.{cls.name}.{lock.name}"] = \
                        lock.kind
        return kinds

    def lock_order_graph(self) -> "LockOrderGraph":
        """The project-wide lock-acquisition-order graph.

        Nodes are canonical lock identities; an edge ``A -> B`` records
        an acquisition of ``B`` somewhere while ``A`` is must-held —
        directly in one function, or through a call chain (a call made
        under ``A`` into a function that transitively acquires ``B``).
        A cycle means two threads can wait on each other forever.
        """
        sites = [(mf, class_name, fn)
                 for mf, class_name, fn in self.function_sites()]
        key_of = {(mf.module_name, fn.qualname): (mf, class_name, fn)
                  for mf, class_name, fn in sites}
        # Fixed point: locks each function acquires, transitively
        # through resolvable project calls.
        acquired: dict[tuple[str, str], set[str]] = {}
        resolved_calls: dict[tuple[str, str],
                             list[tuple[tuple[str, str], object]]] = {}
        for mf, class_name, fn in sites:
            key = (mf.module_name, fn.qualname)
            acquired[key] = {
                canon for canon in
                (self.canonical_lock(mf, class_name, acq.lock)
                 for acq in fn.lock_acquires)
                if canon is not None}
            calls = []
            for call in fn.calls:
                target = self.resolve_call(mf.module_name, call.callee,
                                           enclosing_class=class_name)
                if target is None:
                    continue
                target_key = (target[0].module_name, target[1].qualname)
                if target_key in key_of:
                    calls.append((target_key, call))
            resolved_calls[key] = calls
        changed = True
        while changed:
            changed = False
            for key, calls in resolved_calls.items():
                for target_key, _ in calls:
                    missing = acquired[target_key] - acquired[key]
                    if missing:
                        acquired[key] |= missing
                        changed = True
        graph = LockOrderGraph()
        graph.kinds = self.lock_kinds()
        for mf, class_name, fn in sites:
            for acq in fn.lock_acquires:
                target = self.canonical_lock(mf, class_name, acq.lock)
                if target is None:
                    continue
                for held in acq.held:
                    source = self.canonical_lock(mf, class_name, held)
                    if source is not None:
                        graph.add_edge(source, target, mf.path,
                                       mf.module_name, acq.lineno,
                                       acq.col, via=None)
            key = (mf.module_name, fn.qualname)
            for target_key, call in resolved_calls[key]:
                if not call.held_locks:
                    continue
                for target in sorted(acquired[target_key]):
                    for held in call.held_locks:
                        source = self.canonical_lock(mf, class_name, held)
                        if source is not None:
                            graph.add_edge(
                                source, target, mf.path, mf.module_name,
                                call.lineno, call.col, via=call.callee)
        return graph

    def imports_closure(self, module_name: str) -> set[str]:
        """``module_name`` plus every project module it transitively
        imports (the set of modules whose change dirties this one)."""
        seen = {module_name}
        queue = [module_name]
        while queue:
            current = queue.pop()
            for target in self.imports_of.get(current, ()):
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        return seen


class LockOrderGraph:
    """Canonical lock nodes, ordered acquisition edges, edge sites."""

    def __init__(self) -> None:
        #: source lock -> set of locks acquired while holding it.
        self.edges: dict[str, set[str]] = {}
        #: (source, target) -> [(path, module, lineno, col, via)].
        self.sites: dict[tuple[str, str],
                         list[tuple[str, str, int, int, "str | None"]]] = {}
        #: canonical lock id -> declared kind (``Lock``/``RLock``).
        self.kinds: dict[str, str] = {}

    def add_edge(self, source: str, target: str, path: str, module: str,
                 lineno: int, col: int, via: "str | None") -> None:
        """Record "``target`` acquired while ``source`` held" at a site."""
        if source == target:
            # Re-acquiring a lock you hold only deadlocks when it is a
            # declared non-reentrant Lock; RLocks and undeclared
            # (heuristic) locks stay quiet.
            if self.kinds.get(source, "") != "Lock":
                return
        self.edges.setdefault(source, set()).add(target)
        self.sites.setdefault((source, target), []).append(
            (path, module, lineno, col, via))

    def cycles(self) -> list[list[str]]:
        """Strongly connected components with a cycle, sorted.

        Each entry is the sorted list of lock ids in one SCC of size
        ``>= 2``, or a single lock with a self-edge.
        """
        index_counter = [0]
        stack: list[str] = []
        on_stack: set[str] = set()
        indices: dict[str, int] = {}
        low: dict[str, int] = {}
        result: list[list[str]] = []
        nodes = sorted(set(self.edges)
                       | {t for ts in self.edges.values() for t in ts})

        def strongconnect(node: str) -> None:
            work = [(node, iter(sorted(self.edges.get(node, ()))))]
            indices[node] = low[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            while work:
                current, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in indices:
                        indices[succ] = low[succ] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append(
                            (succ, iter(sorted(self.edges.get(succ,
                                                              ())))))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[current] = min(low[current], indices[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[current])
                if low[current] == indices[current]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == current:
                            break
                    if len(component) > 1 or (
                            component[0] in self.edges.get(component[0],
                                                           set())):
                        result.append(sorted(component))

        for node in nodes:
            if node not in indices:
                strongconnect(node)
        return sorted(result)

    def cycle_edges(self, component: list[str]
                    ) -> list[tuple[str, str]]:
        """Graph edges with both endpoints inside ``component``."""
        members = set(component)
        return sorted(
            (source, target)
            for source, targets in self.edges.items()
            if source in members
            for target in targets if target in members)
