"""The project index: module graph, symbol resolution, call graph.

Built once per run from the per-file :class:`~repro.lint.semantic.facts.
ModuleFacts` summaries (cached per content hash), the index answers the
cross-module questions the interprocedural rules ask:

* *import graph* — which project modules does a module import, and,
  transitively, which files must be re-analysed when one file changes
  (:meth:`ProjectIndex.dependent_paths`);
* *symbol resolution* — what does a name in a module refer to,
  following ``from x import y`` chains and package re-exports;
* *class hierarchy* — ``Featurizer`` (or any root) subclass closure
  with inherited-member lookup;
* *call graph* — approximate resolution of call sites to project
  functions, including ``self.method`` dispatch and constructor calls.

Resolution is best-effort: anything the index cannot resolve (builtins,
third-party calls, dynamic dispatch) is simply invisible to the
analyses, which keeps them quiet rather than wrong.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.lint.semantic.facts import ClassFacts, FunctionFacts, ModuleFacts

__all__ = ["ProjectIndex", "ResolvedSymbol"]

#: Maximum re-export chain length followed during symbol resolution.
_MAX_CHASE = 16


class ResolvedSymbol:
    """What a name in a module resolves to within the project."""

    #: ``"function"``, ``"class"``, or ``"module"``.
    kind: str

    def __init__(self, kind: str, module: ModuleFacts | None,
                 function: FunctionFacts | None = None,
                 cls: ClassFacts | None = None) -> None:
        self.kind = kind
        #: Module the symbol is defined in (the target for ``module``).
        self.module = module
        #: Function facts when ``kind == "function"``.
        self.function = function
        #: Class facts when ``kind == "class"``.
        self.cls = cls


class ProjectIndex:
    """Cross-module resolution structures built from module facts."""

    def __init__(self, facts: Iterable[ModuleFacts]) -> None:
        #: Module facts keyed by dotted module name.
        self.modules: dict[str, ModuleFacts] = {}
        #: Module facts keyed by scan-relative path.
        self.by_path: dict[str, ModuleFacts] = {}
        for mf in facts:
            self.modules[mf.module_name] = mf
            self.by_path[mf.path] = mf
        #: module name -> project modules it imports (direct edges).
        self.imports_of: dict[str, set[str]] = {}
        #: module name -> project modules importing it (reverse edges).
        self.importers_of: dict[str, set[str]] = {
            name: set() for name in self.modules}
        for name, mf in self.modules.items():
            edges = {target for target in
                     (self._project_module(imp.module)
                      for imp in mf.imports)
                     if target is not None and target != name}
            self.imports_of[name] = edges
            for target in edges:
                self.importers_of[target].add(name)
        #: bare class name -> [(module facts, class facts)] definitions.
        self.classes_by_name: dict[str, list[tuple[ModuleFacts,
                                                   ClassFacts]]] = {}
        for mf in self.modules.values():
            for cls in mf.classes:
                self.classes_by_name.setdefault(cls.name, []).append(
                    (mf, cls))

    # ------------------------------------------------------------------
    # import graph

    def _project_module(self, dotted: str) -> str | None:
        """Longest known project module matching ``dotted`` (or prefix)."""
        name = dotted
        while name:
            if name in self.modules:
                return name
            name = name.rpartition(".")[0]
        return None

    def dependent_paths(self, paths: Iterable[str]) -> set[str]:
        """Transitive importers (by path) of the given changed paths.

        This is the cache-invalidation frontier: every semantic finding
        is attributed to a file whose import closure determines it, so a
        change can only affect the changed files and their transitive
        importers.
        """
        queue = [self.by_path[p].module_name
                 for p in paths if p in self.by_path]
        seen: set[str] = set(queue)
        while queue:
            current = queue.pop()
            for importer in self.importers_of.get(current, ()):
                if importer not in seen:
                    seen.add(importer)
                    queue.append(importer)
        return {self.modules[name].path for name in seen}

    # ------------------------------------------------------------------
    # symbol resolution

    def resolve_symbol(self, module_name: str,
                       name: str) -> ResolvedSymbol | None:
        """Resolve a (possibly dotted) name in a module's global scope."""
        head, _, rest = name.partition(".")
        symbol = self._resolve_binding(module_name, head)
        while symbol is not None and rest:
            head, _, rest = rest.partition(".")
            if symbol.kind == "module" and symbol.module is not None:
                symbol = self._resolve_binding(
                    symbol.module.module_name, head)
            elif symbol.kind == "class" and symbol.cls is not None:
                method = self._find_method(symbol.module, symbol.cls, head)
                if method is None or rest:
                    return None
                return ResolvedSymbol("function", symbol.module,
                                      function=method)
            else:
                return None
        return symbol

    def _resolve_binding(self, module_name: str, name: str,
                         _depth: int = 0) -> ResolvedSymbol | None:
        if _depth > _MAX_CHASE:
            return None
        mf = self.modules.get(module_name)
        if mf is None:
            return None
        for function in mf.functions:
            if function.name == name:
                return ResolvedSymbol("function", mf, function=function)
        for cls in mf.classes:
            if cls.name == name:
                return ResolvedSymbol("class", mf, cls=cls)
        star_targets: list[str] = []
        for imp in mf.imports:
            if imp.name == "*":
                star_targets.append(imp.module)
                continue
            if imp.alias != name:
                continue
            if imp.name is None:
                target = self._project_module(imp.module)
                if target is not None:
                    return ResolvedSymbol("module", self.modules[target])
                return None
            target = self._project_module(imp.module)
            if target is None:
                return None
            return self._resolve_binding(target, imp.name, _depth + 1)
        for target_module in star_targets:
            target = self._project_module(target_module)
            if target is not None:
                symbol = self._resolve_binding(target, name, _depth + 1)
                if symbol is not None:
                    return symbol
        submodule = f"{module_name}.{name}"
        if submodule in self.modules:
            return ResolvedSymbol("module", self.modules[submodule])
        return None

    # ------------------------------------------------------------------
    # class hierarchy

    def resolve_base(self, module: ModuleFacts,
                     base: str) -> tuple[ModuleFacts, ClassFacts] | None:
        """Resolve a base-class name as written in a class statement.

        Import-based resolution first; when that fails, fall back to a
        unique bare-name match across the project (mirroring the
        pre-index behaviour of the Featurizer-surface rule).
        """
        symbol = self.resolve_symbol(module.module_name, base)
        if symbol is not None and symbol.kind == "class" \
                and symbol.cls is not None and symbol.module is not None:
            return symbol.module, symbol.cls
        bare = base.rpartition(".")[2]
        candidates = self.classes_by_name.get(bare, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def iter_ancestry(self, module: ModuleFacts, cls: ClassFacts
                      ) -> Iterator[tuple[ModuleFacts, ClassFacts]]:
        """The class and its project ancestors, nearest first."""
        queue: list[tuple[ModuleFacts, ClassFacts]] = [(module, cls)]
        seen: set[tuple[str, str]] = set()
        while queue:
            mf, current = queue.pop(0)
            key = (mf.module_name, current.name)
            if key in seen:
                continue
            seen.add(key)
            yield mf, current
            for base in current.bases:
                resolved = self.resolve_base(mf, base)
                if resolved is not None:
                    queue.append(resolved)

    def subclasses_of(self, root_name: str
                      ) -> list[tuple[ModuleFacts, ClassFacts]]:
        """Transitive project subclasses of the class named ``root_name``.

        Matching follows resolved bases where possible and bare base
        names otherwise, so single-file trees (unit tests) and the real
        multi-module hierarchy both resolve.
        """
        known: set[tuple[str, str]] = {
            (mf.module_name, cls.name)
            for mf, cls in self.classes_by_name.get(root_name, [])}
        if not known:
            return []
        result: list[tuple[ModuleFacts, ClassFacts]] = []
        changed = True
        members = [(mf, cls) for mf in self.modules.values()
                   for cls in mf.classes]
        while changed:
            changed = False
            for mf, cls in members:
                key = (mf.module_name, cls.name)
                if key in known:
                    continue
                for base in cls.bases:
                    resolved = self.resolve_base(mf, base)
                    if resolved is not None:
                        base_key = (resolved[0].module_name,
                                    resolved[1].name)
                    else:
                        base_key = None
                    bare = base.rpartition(".")[2]
                    if (base_key in known
                            or any(k[1] == bare for k in known)):
                        known.add(key)
                        result.append((mf, cls))
                        changed = True
                        break
        return result

    # ------------------------------------------------------------------
    # call graph

    def _find_method(self, module: ModuleFacts | None, cls: ClassFacts,
                     name: str) -> FunctionFacts | None:
        if module is None:
            return None
        for mf, current in self.iter_ancestry(module, cls):
            for method in current.methods:
                if method.name == name:
                    return method
        return None

    def resolve_call(self, module_name: str, callee: str,
                     enclosing_class: str | None = None
                     ) -> tuple[ModuleFacts, FunctionFacts] | None:
        """Resolve a call site to a project function, best effort.

        ``callee`` is the dotted name as written (``"helper"``,
        ``"mod.helper"``, ``"self.method"``, ``"Cls"``); constructor
        calls resolve to the class's ``__init__``.  Returns ``None`` for
        anything outside the project or not statically resolvable.
        """
        mf = self.modules.get(module_name)
        if mf is None:
            return None
        head, _, rest = callee.partition(".")
        if head in ("self", "cls") and enclosing_class is not None:
            if not rest or "." in rest:
                return None
            for cls in mf.classes:
                if cls.name == enclosing_class:
                    method = self._find_method(mf, cls, rest)
                    if method is not None:
                        owner = self._method_owner(mf, cls, rest)
                        return owner if owner is not None else (mf, method)
            return None
        symbol = self.resolve_symbol(module_name, callee)
        if symbol is None or symbol.module is None:
            return None
        if symbol.kind == "function" and symbol.function is not None:
            return symbol.module, symbol.function
        if symbol.kind == "class" and symbol.cls is not None:
            init = self._find_method(symbol.module, symbol.cls, "__init__")
            if init is not None:
                return symbol.module, init
        return None

    def _method_owner(self, module: ModuleFacts, cls: ClassFacts,
                      name: str) -> tuple[ModuleFacts, FunctionFacts] | None:
        for mf, current in self.iter_ancestry(module, cls):
            for method in current.methods:
                if method.name == name:
                    return mf, method
        return None
