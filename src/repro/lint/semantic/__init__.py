"""Semantic (interprocedural) analysis layer of the linter.

The syntactic rules in :mod:`repro.lint.rules` see one file at a time,
so they cannot catch a seed dropped at a call boundary or a dtype
downcast two modules away — exactly the silent divergences that break
the paper's determinism contract (Equation 4) across module boundaries.
This package closes that gap in three stages:

* :mod:`repro.lint.semantic.facts` — per-file extraction of a compact,
  serializable summary (imports, classes, functions, call sites, return
  shapes) that the incremental cache can store per content hash.
* :mod:`repro.lint.semantic.index` — the project index built from those
  summaries: module graph, import/symbol resolution, the ``Featurizer``
  class hierarchy, and an approximate call graph.
* :mod:`repro.lint.semantic.rules` — the interprocedural rules
  (``RPR106``, ``RPR107``, ``RPR203``, ``RPR204``) registered in the
  ordinary rule registry, so pragmas, baseline, configuration, and
  reporters all apply unchanged.

Every semantic finding is attributed to a file whose *import closure*
determines it, which is what makes transitive cache invalidation along
the import graph sound (see ``docs/architecture.md``).
"""

from repro.lint.semantic.facts import ModuleFacts, extract_module_facts
from repro.lint.semantic.index import ProjectIndex

__all__ = ["ModuleFacts", "ProjectIndex", "extract_module_facts"]
