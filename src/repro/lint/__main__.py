"""``python -m repro.lint`` entry point (see :mod:`repro.lint.cli`)."""

import sys

from repro.lint.cli import main

sys.exit(main())
