"""Finding objects produced by lint rules.

A finding pins one rule violation to one source location.  Findings are
value objects: the engine sorts, deduplicates, baselines, and serializes
them without ever consulting the rule that produced them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    #: Path of the offending file, relative to the scan root (posix form).
    path: str
    #: 1-based line of the offending node.
    line: int
    #: 1-based column of the offending node.
    col: int
    #: Stable rule code (``RPRnnn``).
    code: str
    #: Human-readable description of this specific violation.
    message: str

    def fingerprint(self) -> tuple[str, str, str]:
        """Line-independent identity used for baseline matching.

        Line and column are deliberately excluded so that unrelated edits
        above a grandfathered finding do not un-baseline it.
        """
        return (self.path, self.code, self.message)

    def render(self) -> str:
        """``path:line:col: CODE message`` (the text-reporter line)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        """JSON-serializable representation (the JSON-reporter item)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
