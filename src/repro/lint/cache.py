"""Content-hash-keyed incremental lint cache.

Whole-project analysis is strictly more expensive than per-file walks,
so the engine persists, per file and keyed by the SHA-256 of its bytes:

* the per-file (syntactic) findings and pragma suppressions,
* the :class:`~repro.lint.semantic.facts.ModuleFacts` index shard,
* the semantic (project-pass) findings attributed to the file.

A warm run with no file changes reuses everything — no parsing, no
index build.  When files change, only they are re-parsed; semantic
findings are recomputed for the changed files plus their transitive
importers (the import-graph invalidation frontier), and reused from the
cache everywhere else.

The whole cache is invalidated by a *meta key* covering the cache
format version, the enabled rule catalogue, and the configuration, so a
new rule or config edit never serves stale results.  The cache file is
plain JSON with sorted keys, written atomically; a missing, corrupt, or
stale file silently degrades to a cold run.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.lint.findings import Finding
from repro.lint.semantic.facts import ModuleFacts

__all__ = ["CACHE_FORMAT_VERSION", "CacheEntry", "LintCache",
           "cache_meta_key", "file_digest"]

#: Bump when the cached representation changes shape or semantics.
# Version 2: fact shards carry the dataflow-derived concurrency facts
# (lock attrs, guarded writes, lock acquires, blocking calls, lazy
# inits, thread spawns) consumed by the RPR4xx band.
# Version 3: fact shards add the numeric abstract-interpretation facts
# (narrowing casts, mixed precision, shape mismatches, small index
# tensors, empty reductions) plus dataflow-refined return dtypes/ranks
# consumed by the RPR5xx band and the sharpened RPR106/RPR107.
CACHE_FORMAT_VERSION = 3


def file_digest(data: bytes) -> str:
    """Content hash used as the per-file cache key."""
    return hashlib.sha256(data).hexdigest()


def cache_meta_key(config_fingerprint: str,
                  rule_codes: Iterable[str]) -> str:
    """Meta key invalidating the whole cache on rule/config changes."""
    payload = json.dumps({
        "format": CACHE_FORMAT_VERSION,
        "config": config_fingerprint,
        "rules": sorted(rule_codes),
    }, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheEntry:
    """Everything cached for one file at one content hash."""

    file_hash: str
    module_name: str
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    #: ``None`` until a project pass has produced them (distinct from
    #: "produced and empty", which is a valid cached result).
    semantic_findings: list[Finding] | None = None
    semantic_suppressed: list[Finding] | None = None
    #: ``None`` for files that failed to parse.
    facts: ModuleFacts | None = None

    def to_dict(self) -> dict:
        """JSON-serialisable form of the entry."""
        def render(findings: list[Finding] | None) -> list | None:
            if findings is None:
                return None
            return [f.to_dict() for f in findings]

        return {
            "file_hash": self.file_hash,
            "module_name": self.module_name,
            "findings": render(self.findings),
            "suppressed": render(self.suppressed),
            "semantic_findings": render(self.semantic_findings),
            "semantic_suppressed": render(self.semantic_suppressed),
            "facts": self.facts.to_dict() if self.facts is not None
            else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CacheEntry":
        """Rebuild an entry from :meth:`to_dict` output."""
        def parse(items) -> list[Finding] | None:
            if items is None:
                return None
            return [Finding(**item) for item in items]

        return cls(
            file_hash=payload["file_hash"],
            module_name=payload["module_name"],
            findings=parse(payload["findings"]) or [],
            suppressed=parse(payload["suppressed"]) or [],
            semantic_findings=parse(payload["semantic_findings"]),
            semantic_suppressed=parse(payload["semantic_suppressed"]),
            facts=(ModuleFacts.from_dict(payload["facts"])
                   if payload["facts"] is not None else None),
        )


class LintCache:
    """On-disk cache of per-file analyses, keyed by display path."""

    def __init__(self, path: Path, meta_key: str) -> None:
        self.path = path
        self.meta_key = meta_key
        self.entries: dict[str, CacheEntry] = {}

    @classmethod
    def load(cls, path: Path, meta_key: str) -> "LintCache":
        """Load the cache at ``path``; stale or unreadable means empty."""
        cache = cls(path, meta_key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return cache
        if not isinstance(payload, dict) \
                or payload.get("meta_key") != meta_key:
            return cache
        try:
            for display, entry in payload.get("files", {}).items():
                cache.entries[display] = CacheEntry.from_dict(entry)
        except (KeyError, TypeError, ValueError):
            cache.entries.clear()
        return cache

    def lookup(self, display: str, file_hash: str) -> CacheEntry | None:
        """Entry for ``display`` if it matches the current content hash."""
        entry = self.entries.get(display)
        if entry is not None and entry.file_hash == file_hash:
            return entry
        return None

    def put(self, display: str, entry: CacheEntry) -> None:
        """Insert or replace the entry for ``display``."""
        self.entries[display] = entry

    def prune(self, keep: Iterable[str]) -> None:
        """Drop entries for files no longer part of the scan."""
        keep_set = set(keep)
        for display in list(self.entries):
            if display not in keep_set:
                del self.entries[display]

    def save(self) -> None:
        """Write the cache atomically with deterministic key order."""
        payload = {
            "meta_key": self.meta_key,
            "files": {display: entry.to_dict()
                      for display, entry in sorted(self.entries.items())},
        }
        text = json.dumps(payload, sort_keys=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp.write_text(text, encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            # Caching is an optimisation; an unwritable location (e.g. a
            # read-only checkout) must never fail the lint run itself.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
