"""RPR2xx — determinism rules.

The paper's Equation 4 requires featurization (and therefore training
and estimation) to be a deterministic function of its inputs.  Every
stochastic component in this codebase threads an explicit
``np.random.Generator`` (see ``models/neural_net.py``); these rules make
that convention machine-checked.
"""

from __future__ import annotations

import ast

from repro.lint.engine import ModuleContext
from repro.lint.registry import Rule, register

__all__ = ["GlobalNumpyRandomRule", "UnseededGeneratorRule"]

#: Members of ``numpy.random`` compatible with explicit seed threading.
_ALLOWED_MEMBERS = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a pure attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _alias_maps(module: ModuleContext) -> tuple[set[str], set[str], set[str]]:
    """(numpy aliases, numpy.random aliases, local default_rng names)."""
    numpy_aliases: set[str] = set()
    random_aliases: set[str] = set()
    default_rng_names: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                if alias.name == "numpy":
                    numpy_aliases.add(local)
                elif alias.name == "numpy.random" and alias.asname:
                    random_aliases.add(alias.asname)
                elif alias.name.startswith("numpy."):
                    numpy_aliases.add(local)
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
            elif node.module == "numpy.random":
                for alias in node.names:
                    if alias.name == "default_rng":
                        default_rng_names.add(alias.asname or "default_rng")
    return numpy_aliases, random_aliases, default_rng_names


class _NumpyRandomRule(Rule):
    """Shared alias prescan for the two RNG rules."""

    def begin_module(self, module: ModuleContext) -> None:
        """Prescan the module's numpy import aliases."""
        (self._numpy_aliases, self._random_aliases,
         self._default_rng_names) = _alias_maps(module)

    def _random_member(self, dotted: str) -> str | None:
        """The ``numpy.random`` member a dotted chain refers to."""
        head, _, member = dotted.rpartition(".")
        if not head:
            return None
        if head in self._random_aliases:
            return member
        base, _, middle = head.rpartition(".")
        if middle == "random" and base in self._numpy_aliases:
            return member
        return None


@register
class GlobalNumpyRandomRule(_NumpyRandomRule):
    """Legacy ``np.random.*`` draws from hidden process-global state."""

    code = "RPR201"
    name = "global-numpy-random"
    summary = "No global-state np.random.* calls; thread a Generator"
    example_bad = 'noise = np.random.normal(size=n)'
    example_good = 'noise = rng.normal(size=n)  # rng threaded from the caller'

    def visit_Attribute(self, node: ast.Attribute,
                        module: ModuleContext) -> None:
        """Flag attribute chains reaching legacy numpy.random state."""
        dotted = _dotted_name(node)
        if dotted is None:
            return
        member = self._random_member(dotted)
        if member is not None and member not in _ALLOWED_MEMBERS:
            self.report(
                module, node,
                f"`{dotted}` uses numpy's process-global RNG state; "
                "thread an explicit np.random.Generator instead")

    def visit_ImportFrom(self, node: ast.ImportFrom,
                         module: ModuleContext) -> None:
        """Flag `from numpy.random import <legacy global>`."""
        if node.level != 0 or node.module != "numpy.random":
            return
        for alias in node.names:
            if alias.name not in _ALLOWED_MEMBERS and alias.name != "*":
                self.report(
                    module, node,
                    f"importing `{alias.name}` from numpy.random binds "
                    "process-global RNG state; thread a Generator instead")


@register
class UnseededGeneratorRule(_NumpyRandomRule):
    """``default_rng()`` without a seed pulls OS entropy, so two runs of
    the same experiment diverge silently."""

    code = "RPR202"
    name = "unseeded-default-rng"
    summary = "np.random.default_rng() must receive a seed"
    example_bad = 'rng = np.random.default_rng()'
    example_good = 'rng = np.random.default_rng(seed)'

    def visit_Call(self, node: ast.Call, module: ModuleContext) -> None:
        """Flag `default_rng()` calls that carry no seed argument."""
        if node.args or node.keywords:
            return
        func = node.func
        is_default_rng = (
            isinstance(func, ast.Name)
            and func.id in self._default_rng_names)
        if not is_default_rng and isinstance(func, ast.Attribute):
            dotted = _dotted_name(func)
            is_default_rng = (dotted is not None
                              and self._random_member(dotted) == "default_rng")
        if is_default_rng:
            self.report(
                module, node,
                "default_rng() without a seed is nondeterministic; pass "
                "a seed or accept an np.random.Generator parameter")
