"""Built-in rule set.

Importing this package registers every rule with
:mod:`repro.lint.registry`.  Rules live in one module per code band.
"""

from repro.lint.rules.correctness import (
    BroadExceptRule,
    FeaturizerSurfaceRule,
    FloatEqualityRule,
    MutableDefaultRule,
    ScalarFeaturizeLoopRule,
)
from repro.lint.rules.determinism import (
    GlobalNumpyRandomRule,
    UnseededGeneratorRule,
)
from repro.lint.rules.layering import (
    DunderAllRule,
    ImportLayeringRule,
    PrintInLibraryRule,
)

__all__ = [
    "MutableDefaultRule",
    "FloatEqualityRule",
    "BroadExceptRule",
    "FeaturizerSurfaceRule",
    "ScalarFeaturizeLoopRule",
    "GlobalNumpyRandomRule",
    "UnseededGeneratorRule",
    "ImportLayeringRule",
    "PrintInLibraryRule",
    "DunderAllRule",
]
