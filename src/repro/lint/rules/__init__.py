"""Built-in rule set.

Importing this package registers every rule with
:mod:`repro.lint.registry`.  Rules live in one module per code band.
"""

from repro.lint.rules.concurrency import (
    BlockingWhileLockedRule,
    DaemonThreadDrainRule,
    LockOrderCycleRule,
    ThreadUnsafeLazyInitRule,
    UnguardedSharedStateRule,
)
from repro.lint.rules.correctness import (
    AdHocTimingRule,
    BroadExceptRule,
    FeaturizerSurfaceRule,
    FloatEqualityRule,
    MutableDefaultRule,
    ScalarFeaturizeLoopRule,
    SubprocessWithoutDrainRule,
)
from repro.lint.rules.determinism import (
    GlobalNumpyRandomRule,
    UnseededGeneratorRule,
)
from repro.lint.rules.layering import (
    DunderAllRule,
    ImportLayeringRule,
    PrintInLibraryRule,
)
from repro.lint.rules.numeric import (
    EmptyArrayReductionRule,
    FloatPrecisionDriftRule,
    ShapeContractViolationRule,
    SilentDtypeNarrowingRule,
    UnsafeIndexDtypeRule,
)
from repro.lint.semantic.rules import (
    FeatureDtypeDriftRule,
    FeatureShapeContractRule,
    GeneratorThreadingRule,
    UnorderedIterationRule,
)

__all__ = [
    "MutableDefaultRule",
    "FloatEqualityRule",
    "BroadExceptRule",
    "FeaturizerSurfaceRule",
    "ScalarFeaturizeLoopRule",
    "SubprocessWithoutDrainRule",
    "AdHocTimingRule",
    "FeatureDtypeDriftRule",
    "FeatureShapeContractRule",
    "GlobalNumpyRandomRule",
    "UnseededGeneratorRule",
    "GeneratorThreadingRule",
    "UnorderedIterationRule",
    "ImportLayeringRule",
    "PrintInLibraryRule",
    "DunderAllRule",
    "UnguardedSharedStateRule",
    "LockOrderCycleRule",
    "BlockingWhileLockedRule",
    "ThreadUnsafeLazyInitRule",
    "DaemonThreadDrainRule",
    "SilentDtypeNarrowingRule",
    "FloatPrecisionDriftRule",
    "ShapeContractViolationRule",
    "UnsafeIndexDtypeRule",
    "EmptyArrayReductionRule",
]
