"""Numeric dtype/shape rules (RPR5xx): the tensor-hot-path band.

The reproduction's accuracy story rests on bitwise-identical vectorized
kernels, but a dtype that silently narrows, a float32 operand sneaking
into a float64 contract, or a reduction over a mask-filtered (possibly
empty) array corrupts estimates without failing a single test.  All
five rules run in the project stage on the numeric facts the abstract-
interpretation pass attaches per function
(:mod:`repro.lint.dataflow.numeric`), so they are incremental like the
rest of the semantic layer: a change re-derives findings only for the
changed files and their transitive importers.

Anchoring invariant (shared with the other project rules): every
finding here is intra-file — the fact and the report live in the same
module — so cached findings can never go stale through another file.
RPR502's kernel membership is deliberately limited to functions *in*
the pinned-dtype packages (``repro.featurize``/``repro.models``/
``repro.serve``) rather than extended through the call graph: a
caller-derived membership would let a change in the caller's file
invalidate findings anchored here, which the import-graph dirty set
does not cover.  Helpers outside those packages are instead reached
through the dataflow-refined return dtypes that RPR106 chases.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.lint.registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lint.engine import ProjectContext

__all__ = [
    "SilentDtypeNarrowingRule",
    "FloatPrecisionDriftRule",
    "ShapeContractViolationRule",
    "UnsafeIndexDtypeRule",
    "EmptyArrayReductionRule",
]

#: Packages whose kernels pin a float64 feature contract (the same
#: region RPR106 polices) — mixed-width float arithmetic here is drift.
_KERNEL_PREFIXES = ("repro.featurize", "repro.models", "repro.serve")


def _module_in(module_name: str, prefixes: tuple[str, ...]) -> bool:
    return any(module_name == p or module_name.startswith(p + ".")
               for p in prefixes)


@register
class SilentDtypeNarrowingRule(Rule):
    """A cast to a narrower dtype wraps out-of-range values silently —
    ``np.int64([256]).astype(np.uint8)`` is ``[0]``, no warning, no
    exception.  The analysis tracks value intervals, so a cast is only
    reported when the values are *not* provably in range and no bound
    guard (a comparison against a numeric constant, ``np.clip``,
    ``%``/``&`` masking) mentions a contributing name anywhere in the
    function.  Deliberate float-to-int truncation is exempt.
    """

    code = "RPR501"
    name = "silent-dtype-narrowing"
    summary = "Narrowing dtype cast with no provable bound or guard"
    example_bad = ('wide = np.asarray(ids, dtype=np.int64)\n'
                   'codes = wide.astype(np.uint8)  # >255 wraps silently')
    example_good = ('wide = np.asarray(ids, dtype=np.int64)\n'
                    'if wide.max() > 255:\n'
                    '    raise ValueError("id out of uint8 range")\n'
                    'codes = wide.astype(np.uint8)')

    def finish_project(self, project: "ProjectContext") -> None:
        """Report unguarded, unprovable narrowing casts."""
        for mf, _, fn in project.index.function_sites():
            for cast in fn.narrowing_casts:
                if cast.provable or cast.guarded:
                    continue
                project.report(
                    self.code, mf.path, cast.lineno, cast.col,
                    f"`{cast.rendered}` narrows {cast.src_dtype} to "
                    f"{cast.dst_dtype} with no provable bound: "
                    "out-of-range values wrap silently; guard or clip "
                    "the value range first, or keep the wider dtype")


@register
class FloatPrecisionDriftRule(Rule):
    """The featurize/models/serve kernels pin a float64 feature
    contract (RPR106); arithmetic that mixes float32 and float64
    arrays inside them either silently upcasts (hiding that an input
    was produced at half precision) or, after a later downcast, loses
    bits non-deterministically relative to the scalar reference path.
    Either way the bitwise-equivalence guarantees the serving stack is
    built on stop holding.  Scalar literals are exempt — numpy keeps
    the array dtype for them.
    """

    code = "RPR502"
    name = "float-precision-drift"
    summary = "Mixed float32/float64 array arithmetic in a pinned kernel"
    example_bad = ('half = np.asarray(x, dtype=np.float32)\n'
                   'out = half * weights  # weights is float64: upcast'
                   ' hides the precision loss')
    example_good = ('full = np.asarray(x, dtype=np.float64)\n'
                    'out = full * weights')

    def finish_project(self, project: "ProjectContext") -> None:
        """Report mixed-width float ops in kernel modules."""
        for mf, _, fn in project.index.function_sites():
            if not _module_in(mf.module_name, _KERNEL_PREFIXES):
                continue
            for mix in fn.mixed_precision:
                project.report(
                    self.code, mf.path, mix.lineno, mix.col,
                    f"`{mix.rendered}` mixes {mix.left_dtype} and "
                    f"{mix.right_dtype} arrays in a float64-contract "
                    "kernel; cast both operands to one width at the "
                    "boundary instead of letting promotion decide")


@register
class ShapeContractViolationRule(Rule):
    """Array algebra whose operand shapes provably cannot broadcast
    (two concrete, unequal, non-1 lengths on the same axis) or a
    ``concatenate`` over arrays of different ranks raises at runtime —
    but only on the first input that actually reaches the expression,
    which for rarely-taken branches means in production.  The analysis
    reports only *proven* mismatches: symbolic or unknown dimensions
    never fire.
    """

    code = "RPR503"
    name = "shape-contract-violation"
    summary = "Provable broadcasting or rank mismatch in array algebra"
    example_bad = ('a = np.zeros((3,))\n'
                   'b = np.zeros((4,))\n'
                   'c = a + b  # ValueError at runtime')
    example_good = ('a = np.zeros((3,))\n'
                    'b = np.zeros((3,))\n'
                    'c = a + b')

    def finish_project(self, project: "ProjectContext") -> None:
        """Report statically-proven shape mismatches."""
        for mf, _, fn in project.index.function_sites():
            for mismatch in fn.shape_mismatches:
                project.report(
                    self.code, mf.path, mismatch.lineno, mismatch.col,
                    f"`{mismatch.rendered}` cannot execute: "
                    f"{mismatch.detail}; fix the construction site or "
                    "the contract, not the symptom")


@register
class UnsafeIndexDtypeRule(Rule):
    """Gathering with an int32-or-smaller index tensor caps the
    addressable length of the target array at the index dtype's max;
    once the packed structure outgrows it the indices wrap and the
    gather silently reads the wrong rows (the CompiledForest
    child-index class of bug).  Reported only when the index values
    are not provably below the dtype's ceiling — a freshly
    ``arange``-d or interval-bounded index is fine.
    """

    code = "RPR504"
    name = "unsafe-index-dtype"
    summary = "Unbounded int32-or-smaller index tensor used in a gather"
    example_bad = ('idx = np.asarray(rows, dtype=np.int32)\n'
                   'out = table[idx]  # wraps once table outgrows int32')
    example_good = ('idx = np.asarray(rows, dtype=np.int64)\n'
                    'out = table[idx]')

    def finish_project(self, project: "ProjectContext") -> None:
        """Report gathers through unbounded small-dtype indices."""
        for mf, _, fn in project.index.function_sites():
            for fact in fn.small_indices:
                project.report(
                    self.code, mf.path, fact.lineno, fact.col,
                    f"`{fact.rendered}` gathers through a "
                    f"{fact.index_dtype} index tensor whose values are "
                    "bounded only by the dtype itself; index with "
                    "int64 (numpy's native index type) unless the "
                    "array length is provably capped")


@register
class EmptyArrayReductionRule(Rule):
    """``min``/``max``/``argmin``-style reductions raise ``ValueError``
    on an empty operand, and boolean-mask selection (``x[x > 0]``) is
    exactly the construction that produces an empty array on
    unremarkable inputs.  The analysis taints mask-selected values as
    maybe-empty and reports reductions over them unless the function
    checks the operand's size (``.size``, ``len()``, ``.shape``) in
    some test or assert.
    """

    code = "RPR505"
    name = "empty-array-reduction"
    summary = "min/max-style reduction over a possibly-empty selection"
    example_bad = ('pos = x[x > 0]\n'
                   'lo = pos.min()  # ValueError when nothing is positive')
    example_good = ('pos = x[x > 0]\n'
                    'if pos.size == 0:\n'
                    '    return default\n'
                    'lo = pos.min()')

    def finish_project(self, project: "ProjectContext") -> None:
        """Report unchecked reductions over maybe-empty operands."""
        for mf, _, fn in project.index.function_sites():
            for fact in fn.empty_reductions:
                project.report(
                    self.code, mf.path, fact.lineno, fact.col,
                    f"`{fact.func}()` reduces `{fact.operand}`, which "
                    "a boolean mask may have emptied: numpy raises on "
                    "empty reductions; check `.size` first or pass "
                    "`initial=`")
