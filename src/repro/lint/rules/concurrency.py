"""Concurrency rules (RPR4xx): races, deadlocks, and stalls.

The serving stack (``repro.serve``) is the first genuinely threaded
part of this codebase — batcher worker threads, a ThreadingHTTPServer,
shared handle/estimate caches — and single-threaded tests cannot catch
the bug classes these rules target.  All five run in the project stage
on the concurrency facts the dataflow pass attaches per function
(:mod:`repro.lint.dataflow`), so they are incremental like every other
semantic rule: a file change re-derives findings only for the changed
files and their transitive importers.

Anchoring invariant (shared with the other project rules): every
finding is attributed to a file whose import closure determines it.
RPR402 enforces this explicitly — a cross-module cycle is reported at
acquisition sites whose module transitively imports every other module
participating in the cycle, which is always true for call-mediated
cycles (the caller imports the callee).  A cycle between modules with
no import relation at all is a documented blind spot: reporting it
anywhere would leave a stale finding when the *other* file changes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.lint.registry import Rule, register
from repro.lint.semantic.facts import ClassFacts, ModuleFacts
from repro.lint.semantic.index import ProjectIndex

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lint.engine import ProjectContext

__all__ = [
    "UnguardedSharedStateRule",
    "LockOrderCycleRule",
    "BlockingWhileLockedRule",
    "ThreadUnsafeLazyInitRule",
    "DaemonThreadDrainRule",
]


def _self_lock_names(held: tuple[str, ...]) -> set[str]:
    """Lock attribute names among held ``self.<name>`` tokens."""
    return {token.partition(".")[2] for token in held
            if token.startswith("self.") and token.count(".") == 1}


def _lock_owning_classes(index: ProjectIndex):
    """Classes that own at least one declared lock, with their guards."""
    for mf in index.modules.values():
        for cls in mf.classes:
            locks = index.class_lock_attrs(mf, cls)
            if locks:
                yield mf, cls, locks, index.guarded_attrs(mf, cls)


@register
class UnguardedSharedStateRule(Rule):
    """A class that owns a lock declares, by its own locked accesses,
    which attributes the lock protects; writing one of those attributes
    outside any region of that lock is a data race with every locked
    reader.  ``__init__`` is exempt — construction happens before the
    object is shared.
    """

    code = "RPR401"
    name = "unguarded-shared-state"
    summary = "Guarded attribute written outside its owning lock"
    example_bad = 'def close(self):\n    self._closed = True  # elsewhere guarded by self._lock'
    example_good = 'def close(self):\n    with self._lock:\n        self._closed = True'

    def finish_project(self, project: "ProjectContext") -> None:
        """Flag unlocked writes to lock-guarded attributes."""
        for mf, cls, locks, guards in _lock_owning_classes(project.index):
            if not guards:
                continue
            for method in cls.methods:
                if method.name == "__init__":
                    continue
                for write in method.attr_writes:
                    owners = guards.get(write.attr)
                    if not owners:
                        continue
                    if _self_lock_names(write.held) & owners:
                        continue
                    lock = sorted(owners)[0]
                    project.report(
                        self.code, mf.path, write.lineno, write.col,
                        f"write to `self.{write.attr}` without holding "
                        f"`self.{lock}`: {cls.name} accesses this "
                        "attribute under that lock elsewhere, so this "
                        "write races them; wrap it in "
                        f"`with self.{lock}:`")


@register
class LockOrderCycleRule(Rule):
    """Two locks acquired in opposite orders on two code paths deadlock
    the moment two threads interleave.  The acquisition-order graph is
    built project-wide — ``A`` held while ``B`` is taken adds ``A → B``,
    including through calls (a call made under ``A`` into code that
    takes ``B``) — and any strongly connected component is a waiting
    cycle no timeout will untangle.
    """

    code = "RPR402"
    name = "lock-order-cycle"
    summary = "Cycle in the project lock-acquisition-order graph"
    example_bad = 'def transfer():\n    with LOCK_A:\n        with LOCK_B: ...\n\ndef refund():\n    with LOCK_B:\n        with LOCK_A: ...'
    example_good = '# one global acquisition order, everywhere\ndef refund():\n    with LOCK_A:\n        with LOCK_B: ...'

    def finish_project(self, project: "ProjectContext") -> None:
        """Report each acquisition edge participating in a cycle."""
        index = project.index
        graph = index.lock_order_graph()
        for component in graph.cycles():
            edges = graph.cycle_edges(component)
            participants = {
                module
                for edge in edges
                for _, module, _, _, _ in graph.sites.get(edge, ())}
            if len(component) == 1:
                description = (f"non-reentrant lock `{component[0]}` is "
                               "re-acquired while already held "
                               "(guaranteed self-deadlock)")
            else:
                ring = " -> ".join([*component, component[0]])
                description = f"lock acquisition order cycle {ring}"
            for source, target in edges:
                for path, module, lineno, col, via in \
                        graph.sites.get((source, target), ()):
                    closure = index.imports_closure(module)
                    if not participants <= closure:
                        continue
                    via_note = f" through `{via}()`" if via else ""
                    project.report(
                        self.code, path, lineno, col,
                        f"{description}: `{target}` is acquired "
                        f"here{via_note} while `{source}` is held; "
                        "acquire locks in one global order (or merge "
                        "them)")


@register
class BlockingWhileLockedRule(Rule):
    """Sleeps, future/thread waits, queue gets, file and network I/O
    executed while holding a lock stall every thread contending for it
    — in a serving process that turns one slow disk read into a fleet-
    wide latency spike.  The blocking-call catalogue is narrow by
    design and extensible via the ``blocking-calls`` config key.
    """

    code = "RPR403"
    name = "blocking-while-locked"
    summary = "Known-blocking call inside a held-lock region"
    example_bad = 'with self._lock:\n    payload = request.urlopen(url).read()'
    example_good = 'payload = request.urlopen(url).read()\nwith self._lock:\n    self._cache[url] = payload'

    def finish_project(self, project: "ProjectContext") -> None:
        """Flag blocking calls recorded with a non-empty held set."""
        for mf, _, fn in project.index.function_sites():
            for call in fn.blocking_calls:
                held = ", ".join(f"`{token}`" for token in call.held)
                project.report(
                    self.code, mf.path, call.lineno, call.col,
                    f"blocking call `{call.callee}()` while holding "
                    f"{held}; every thread contending for the lock "
                    "stalls behind it — move the slow operation outside "
                    "the lock region")


@register
class ThreadUnsafeLazyInitRule(Rule):
    """The memoised-handle pattern: check an attribute, then populate
    it.  When no lock region spans both the check and the write, two
    threads can pass the check together and both act — duplicate loads,
    lost updates, torn state.  Holding the lock for the check but
    releasing it before the write (the tempting "don't hold the lock
    while loading" shortcut) is *still* non-atomic; re-check under the
    lock before writing, or use ``setdefault`` under the lock.
    """

    code = "RPR404"
    name = "thread-unsafe-lazy-init"
    summary = "Non-atomic check-then-act on a guarded attribute"
    example_bad = 'if self._handle is None:\n    self._handle = expensive_load()'
    example_good = 'with self._lock:\n    if self._handle is None:\n        self._handle = expensive_load()'

    def finish_project(self, project: "ProjectContext") -> None:
        """Flag lazy-init pairs on guarded attrs of lock-owning classes."""
        for mf, cls, locks, guards in _lock_owning_classes(project.index):
            for method in cls.methods:
                if method.name == "__init__":
                    continue
                for lazy in method.lazy_inits:
                    owners = guards.get(lazy.attr)
                    if not owners:
                        continue
                    lock = sorted(owners)[0]
                    project.report(
                        self.code, mf.path, lazy.lineno, lazy.col,
                        f"check-then-act on `self.{lazy.attr}` is not "
                        f"atomic: the check here and the write at line "
                        f"{lazy.write_lineno} never share a "
                        f"`self.{lock}` region, so two threads can "
                        "both pass the check and both act; hold the "
                        "lock across both, or re-check (or "
                        "`setdefault`) under the lock before writing")


@register
class DaemonThreadDrainRule(Rule):
    """A ``daemon=True`` thread is killed abruptly at interpreter exit
    — mid-batch, mid-write, without ``finally`` blocks.  Daemon status
    is fine as a crash backstop, but only when an orderly drain path
    ``join()``s the thread; a daemon thread nobody joins means shutdown
    silently drops whatever it was doing.
    """

    code = "RPR405"
    name = "daemon-thread-drain"
    summary = "Daemon thread started but never joined on a drain path"
    example_bad = 'worker = threading.Thread(target=drain, daemon=True)\nworker.start()  # never joined: close() may drop queued work'
    example_good = 'worker = threading.Thread(target=drain)\nworker.start()\n# ... on shutdown:\nworker.join()'

    def finish_project(self, project: "ProjectContext") -> None:
        """Flag daemon-thread spawns with no matching join anywhere."""
        index = project.index
        for mf in index.modules.values():
            for fn in mf.functions:
                self._check_function(project, mf, None, fn, index)
            for cls in mf.classes:
                for method in cls.methods:
                    self._check_function(project, mf, cls, method, index)

    def _check_function(self, project: "ProjectContext", mf: ModuleFacts,
                        cls: "ClassFacts | None", fn, index: ProjectIndex
                        ) -> None:
        for spawn in fn.thread_spawns:
            if not spawn.daemon:
                continue
            if spawn.binding == "":
                project.report(
                    self.code, mf.path, spawn.lineno, spawn.col,
                    "daemon thread started without keeping a handle — "
                    "it can never be joined; bind it and join it on the "
                    "shutdown path")
                continue
            if spawn.binding.startswith("self.") and cls is not None:
                joined = any(
                    spawn.binding in method.thread_joins
                    for _, ancestor in index.iter_ancestry(mf, cls)
                    for method in ancestor.methods)
            else:
                joined = spawn.binding in fn.thread_joins
            if not joined:
                project.report(
                    self.code, mf.path, spawn.lineno, spawn.col,
                    f"daemon thread `{spawn.binding}` is started but "
                    "never joined: at interpreter exit it is killed "
                    "mid-operation with no cleanup; join it from the "
                    "owning close()/stop() drain path")
