"""RPR1xx — correctness rules.

These catch constructs that are legal python but are bugs waiting to
happen in an estimator codebase: shared mutable defaults, exact float
comparison against literals, exception handlers that swallow everything,
and featurizers that silently miss part of the abstract surface.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.lint.engine import ModuleContext, ProjectContext
from repro.lint.registry import Rule, register

__all__ = ["MutableDefaultRule", "FloatEqualityRule", "BroadExceptRule",
           "FeaturizerSurfaceRule", "ScalarFeaturizeLoopRule",
           "AdHocTimingRule", "PerTreePredictLoopRule",
           "MetricNameDriftRule", "SubprocessWithoutDrainRule"]

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)
_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray", "defaultdict",
                      "Counter", "OrderedDict", "deque"}


@register
class MutableDefaultRule(Rule):
    """A mutable default is evaluated once and shared across calls."""

    code = "RPR101"
    name = "mutable-default-argument"
    summary = "Default argument values must be immutable"
    example_bad = 'def append(item, acc=[]):\n    acc.append(item)\n    return acc'
    example_good = 'def append(item, acc=None):\n    if acc is None:\n        acc = []\n    acc.append(item)\n    return acc'

    def visit_FunctionDef(self, node: ast.FunctionDef,
                          module: ModuleContext) -> None:
        """Check the defaults of a function definition."""
        self._check(node, module)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef,
                               module: ModuleContext) -> None:
        """Check the defaults of an async function definition."""
        self._check(node, module)

    def _check(self, node, module: ModuleContext) -> None:
        defaults = list(node.args.defaults)
        defaults.extend(d for d in node.args.kw_defaults if d is not None)
        for default in defaults:
            if self._is_mutable(default):
                self.report(
                    module, default,
                    f"mutable default `{ast.unparse(default)}` in "
                    f"{node.name}() is shared across calls; default to "
                    "None and construct inside the body")

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, _MUTABLE_LITERALS):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None)
            return name in _MUTABLE_FACTORIES
        return False


@register
class FloatEqualityRule(Rule):
    """Exact ``==``/``!=`` against a float literal is representation-
    dependent for computed values.  Vectorized partition-membership tests
    on constructed 0/1 arrays are the legitimate exception — annotate
    those with ``# repro: ignore[RPR102]``.
    """

    code = "RPR102"
    name = "float-literal-equality"
    summary = "No exact ==/!= against float scalar literals"
    example_bad = 'if weight == 0.1:\n    skip()'
    example_good = 'if math.isclose(weight, 0.1):\n    skip()'

    def visit_Compare(self, node: ast.Compare,
                      module: ModuleContext) -> None:
        """Flag ==/!= chains with a float literal on either side."""
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (operands[index], operands[index + 1])
            literal = next((side for side in pair
                            if self._is_float_literal(side)), None)
            if literal is not None:
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                self.report(
                    module, node,
                    f"exact `{symbol} {ast.unparse(literal)}` float "
                    "comparison; use math.isclose/np.isclose, or add "
                    "`# repro: ignore[RPR102]` for vectorized "
                    "membership tests on constructed arrays")

    @staticmethod
    def _is_float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            node = node.operand
        return isinstance(node, ast.Constant) and type(node.value) is float


@register
class BroadExceptRule(Rule):
    """Bare/broad handlers swallow contract violations the featurization
    stack raises on purpose (``LosslessnessError``, shape asserts)."""

    code = "RPR103"
    name = "broad-except"
    summary = "No bare `except:` or swallowed `except Exception:`"
    example_bad = 'try:\n    run()\nexcept Exception:\n    pass'
    example_good = 'try:\n    run()\nexcept OSError as error:\n    log.warning("run failed: %s", error)\n    raise'

    _BROAD = {"Exception", "BaseException"}

    def visit_ExceptHandler(self, node: ast.ExceptHandler,
                            module: ModuleContext) -> None:
        """Flag bare handlers and non-re-raising broad handlers."""
        if node.type is None:
            self.report(module, node,
                        "bare `except:` catches everything including "
                        "KeyboardInterrupt; name the exception types")
            return
        broad = sorted(self._BROAD & set(self._exception_names(node.type)))
        if broad and not self._reraises(node):
            self.report(
                module, node,
                f"`except {broad[0]}:` without re-raise swallows contract "
                "violations; catch specific exceptions or re-raise")

    @staticmethod
    def _exception_names(node: ast.expr) -> Iterable[str]:
        candidates = node.elts if isinstance(node, ast.Tuple) else [node]
        for candidate in candidates:
            if isinstance(candidate, ast.Name):
                yield candidate.id
            elif isinstance(candidate, ast.Attribute):
                yield candidate.attr

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(child, ast.Raise) and child.exc is None
                   for child in ast.walk(handler))


@register
class FeaturizerSurfaceRule(Rule):
    """Every concrete ``Featurizer`` subclass must implement the full
    abstract surface declared in ``featurize/base.py``.  A partial
    implementation inherits ``abc``'s *instantiation-time* failure, which
    a model-training run only hits long after import.

    Runs on the project index (class hierarchy from cached fact shards),
    so unchanged files need no AST for the check to cover them.
    """

    code = "RPR104"
    name = "featurizer-abstract-surface"
    summary = "Concrete Featurizer subclasses implement all abstract methods"
    example_bad = 'class BitmapFeaturizer(Featurizer):\n    def featurize(self, query):\n        ...\n    # feature_names() left unimplemented'
    example_good = 'class BitmapFeaturizer(Featurizer):\n    def featurize(self, query):\n        ...\n    def feature_names(self):\n        ...'

    #: Root class whose abstract surface is enforced.
    root_class = "Featurizer"

    def finish_project(self, project: ProjectContext) -> None:
        """Check every transitive Featurizer subclass in the project."""
        index = project.index
        required: set[str] = set()
        for _, root in index.classes_by_name.get(self.root_class, []):
            required.update(root.abstract_names)
        if not required:
            return
        for mf, cls in index.subclasses_of(self.root_class):
            if cls.abstract_names:
                continue  # itself abstract: an intermediate base class
            provided = self._provided_names(index, mf, cls)
            missing = sorted(required - provided)
            if missing:
                project.report(
                    self.code, mf.path, cls.lineno, cls.col,
                    f"concrete Featurizer subclass {cls.name} is missing "
                    f"abstract member(s) {', '.join(missing)} required "
                    "by featurize/base.py")

    @staticmethod
    def _provided_names(index, mf, cls) -> set[str]:
        """Concrete members defined by ``cls`` or any project ancestor."""
        provided: set[str] = set()
        for _, current in index.iter_ancestry(mf, cls):
            abstract = set(current.abstract_names)
            provided.update(m.name for m in current.methods
                            if m.name not in abstract)
            provided.update(current.assigned_names)
        return provided


@register
class ScalarFeaturizeLoopRule(Rule):
    """Batch featurization entry points must stay on the columnar
    compile → encode pipeline.  A per-query ``.featurize(...)`` loop
    inside a ``*batch*`` method silently reverts the whole pipeline to
    scalar cost — correct output, an order of magnitude slower, and no
    test notices.
    """

    code = "RPR105"
    name = "scalar-featurize-loop"
    summary = "No per-query featurize() loops inside batch methods"
    example_bad = 'def featurize_batch(self, queries):\n    return np.stack([self.featurize(q) for q in queries])'
    example_good = 'def featurize_batch(self, queries):\n    batch = compile_batch(queries)\n    return self._encode_batch(batch)'

    #: Module prefix the rule applies to (the featurization package).
    module_prefix = "repro.featurize"

    _LOOPS = (ast.For, ast.AsyncFor, ast.While, ast.ListComp, ast.SetComp,
              ast.DictComp, ast.GeneratorExp)

    def visit_FunctionDef(self, node: ast.FunctionDef,
                          module: ModuleContext) -> None:
        """Check a batch-pipeline method for scalar featurize loops."""
        self._check(node, module)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef,
                               module: ModuleContext) -> None:
        """Check an async batch-pipeline method likewise."""
        self._check(node, module)

    def _check(self, node, module: ModuleContext) -> None:
        if not (module.module_name == self.module_prefix
                or module.module_name.startswith(self.module_prefix + ".")):
            return
        if "batch" not in node.name:
            return
        for child in ast.walk(node):
            if not isinstance(child, self._LOOPS):
                continue
            for call in ast.walk(child):
                if self._is_scalar_featurize(call):
                    self.report(
                        module, call,
                        f"per-query featurize() loop inside batch method "
                        f"{node.name}(); use the compiled batch pipeline "
                        "(compile_batch/_featurize_compiled) instead")

    @staticmethod
    def _is_scalar_featurize(node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "featurize")


@register
class AdHocTimingRule(Rule):
    """Pipeline code must measure time through ``repro.obs`` spans, not
    direct clock reads.  Ad-hoc ``time.perf_counter()`` pairs produce
    numbers nothing can export, nest, or attribute to a stage — and they
    quietly diverge from the trace a ``--trace`` run records.  Only the
    observability layer itself and the benchmark harness (which times
    the uninstrumented path on purpose) read the clock directly.
    """

    code = "RPR108"
    name = "ad-hoc-timing"
    summary = "Time pipeline stages with repro.obs spans, not raw clocks"
    example_bad = 'start = time.perf_counter()\nencode(batch)\nelapsed = time.perf_counter() - start'
    example_good = 'with obs.span("featurize.encode"):\n    encode(batch)'

    #: Module prefix the rule applies to.
    module_prefix = "repro"
    #: Module prefixes allowed to read clocks directly.
    exempt_prefixes = ("repro.obs", "repro.bench")
    #: ``time`` module members that read a clock.
    _CLOCKS = frozenset({
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time", "process_time_ns",
        "thread_time", "thread_time_ns",
    })

    @staticmethod
    def _covered(module_name: str, prefix: str) -> bool:
        return (module_name == prefix
                or module_name.startswith(prefix + "."))

    def begin_module(self, module: ModuleContext) -> None:
        """Prescan imports: ``time`` aliases and clock names it exports."""
        self._applies = (
            self._covered(module.module_name, self.module_prefix)
            and not any(self._covered(module.module_name, prefix)
                        for prefix in self.exempt_prefixes))
        self._time_aliases: set[str] = set()
        self._clock_names: dict[str, str] = {}
        if not self._applies:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        self._time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time" and node.level == 0:
                    for alias in node.names:
                        if alias.name in self._CLOCKS:
                            local = alias.asname or alias.name
                            self._clock_names[local] = alias.name

    def visit_Call(self, node: ast.Call, module: ModuleContext) -> None:
        """Flag direct clock reads (``time.perf_counter()`` and kin)."""
        if not self._applies:
            return
        clock = self._clock_call(node)
        if clock is not None:
            self.report(
                module, node,
                f"ad-hoc `{clock}()` timing; wrap the stage in an "
                "obs.span(...) / @obs.trace so the measurement reaches "
                "traces and metrics (or `# repro: ignore[RPR108]` for "
                "deliberate raw-clock use)")

    def _clock_call(self, node: ast.Call) -> str | None:
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in self._time_aliases
                and func.attr in self._CLOCKS):
            return f"{func.value.id}.{func.attr}"
        if isinstance(func, ast.Name) and func.id in self._clock_names:
            return func.id
        return None


@register
class PerTreePredictLoopRule(Rule):
    """Forest inference must go through the packed
    :class:`~repro.models.compiled_forest.CompiledForest` traversal.  A
    python-level loop calling each tree's ``predict`` /
    ``predict_binned`` silently reverts inference to per-tree, per-node
    interpreter cost — correct output, an order of magnitude slower,
    and no test notices.  Only the legacy reference path may loop:
    ``repro.models.tree`` itself (the scalar implementation the packed
    kernels are verified against) is exempt, and deliberate reference
    loops elsewhere carry ``# repro: ignore[RPR109]``.
    """

    code = "RPR109"
    name = "per-tree-predict-loop"
    summary = "No per-tree predict() loops outside the legacy tree module"
    example_bad = 'total = np.zeros(len(X))\nfor tree in self._trees:\n    total += tree.predict(X)'
    example_good = 'total = self.compiled.predict(X)  # packed forest, one traversal'

    #: Module prefix the rule applies to.
    module_prefix = "repro"
    #: Modules allowed to loop over trees (the scalar reference path).
    exempt_prefixes = ("repro.models.tree",)
    _PREDICT_NAMES = frozenset({"predict", "predict_binned"})

    @staticmethod
    def _covered(module_name: str, prefix: str) -> bool:
        return (module_name == prefix
                or module_name.startswith(prefix + "."))

    def begin_module(self, module: ModuleContext) -> None:
        """Decide whether this module is subject to the rule."""
        self._applies = (
            self._covered(module.module_name, self.module_prefix)
            and not any(self._covered(module.module_name, prefix)
                        for prefix in self.exempt_prefixes))

    def visit_For(self, node: ast.For, module: ModuleContext) -> None:
        """Flag loops *over trees* that call ``predict*`` per iteration.

        Only loops whose iteration source or target is tree-ish count:
        the boosting loop itself (``for _ in range(n_estimators)``)
        legitimately predicts with each freshly grown tree to update
        residuals — that is training, not a degraded inference path.
        """
        if not self._applies:
            return
        tree_ish = ("tree" in ast.unparse(node.iter).lower()
                    or (isinstance(node.target, ast.Name)
                        and "tree" in node.target.id.lower()))
        if tree_ish:
            self._check(node, module)

    def visit_While(self, node: ast.While, module: ModuleContext) -> None:
        """Flag while-loops indexing trees through ``predict*`` calls."""
        if self._applies:
            self._check(node, module)

    def _check(self, node, module: ModuleContext) -> None:
        call = self._tree_predict_call(node)
        if call is not None:
            self.report(
                module, node,
                f"per-tree `{call}` loop re-runs python-level inference "
                "for every tree; predict through the packed "
                "CompiledForest (model.compile()/estimate_features), or "
                "add `# repro: ignore[RPR109]` for a deliberate legacy "
                "reference path")

    def _tree_predict_call(self, loop) -> str | None:
        """The first ``<tree-ish>.predict*`` call in the loop, if any."""
        for child in ast.walk(loop):
            if not (isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr in self._PREDICT_NAMES):
                continue
            target = child.func.value
            if (isinstance(target, ast.Name)
                    and "tree" in target.id.lower()):
                return f"{target.id}.{child.func.attr}"
            # `self._trees[i].predict(...)` — subscripted tree lists.
            if (isinstance(target, ast.Subscript)
                    and "tree" in ast.unparse(target.value).lower()):
                return f"{ast.unparse(target)}.{child.func.attr}"
        return None


@register
class MetricNameDriftRule(Rule):
    """Metric and span names are the join keys of the whole telemetry
    stack: the ``/metrics`` JSON, the Prometheus exposition (which maps
    ``serve.request.seconds`` to ``serve_request_seconds``), trace
    summaries, dashboards, and alert expressions all select series by
    these strings.  A name built at the call site — an f-string, a
    concatenation, a ``.format(...)`` — fragments one logical series
    into many (or silently creates a new one on a typo), and nothing
    can grep for where a dashboard's series comes from.  Names must be
    **dotted lowercase literals** at the call site, or a plain variable
    holding one resolved up front (as ``serve/cache.py`` does in
    ``__init__``).  ``repro.obs`` itself is exempt — it is the layer
    that manipulates names.
    """

    code = "RPR110"
    name = "metric-name-drift"
    summary = "Obs metric/span names must be dotted-lowercase literals"
    example_bad = 'obs.get_registry().counter(f"serve.cache.{kind}").inc()'
    example_good = 'obs.get_registry().counter("serve.cache.hits").inc()'

    #: Module prefix the rule applies to.
    module_prefix = "repro"
    #: Module prefixes allowed to construct names dynamically.
    exempt_prefixes = ("repro.obs",)
    #: Obs API methods whose first argument is a metric/span name.
    _NAME_METHODS = frozenset({"span", "trace", "counter", "gauge",
                               "histogram", "slo"})
    #: Keyword arguments that also carry metric names on those calls.
    _NAME_KEYWORDS = frozenset({"name", "metric"})
    _NAME_PATTERN = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")
    #: Node types that mean "assembled at the call site".
    _DYNAMIC = (ast.JoinedStr, ast.BinOp, ast.Call)

    @staticmethod
    def _covered(module_name: str, prefix: str) -> bool:
        return (module_name == prefix
                or module_name.startswith(prefix + "."))

    def begin_module(self, module: ModuleContext) -> None:
        """Decide whether this module is subject to the rule."""
        self._applies = (
            self._covered(module.module_name, self.module_prefix)
            and not any(self._covered(module.module_name, prefix)
                        for prefix in self.exempt_prefixes))

    def visit_Call(self, node: ast.Call, module: ModuleContext) -> None:
        """Check the name argument(s) of obs metric/span calls."""
        if not self._applies:
            return
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in self._NAME_METHODS):
            return
        candidates: list[ast.expr] = []
        if node.args:
            candidates.append(node.args[0])
        candidates.extend(
            keyword.value for keyword in node.keywords
            if keyword.arg in self._NAME_KEYWORDS)
        for value in candidates:
            self._check_name(value, func.attr, module)

    def _check_name(self, value: ast.expr, method: str,
                    module: ModuleContext) -> None:
        if isinstance(value, ast.Constant):
            if (isinstance(value.value, str)
                    and not self._NAME_PATTERN.match(value.value)):
                self.report(
                    module, value,
                    f"metric/span name {value.value!r} passed to "
                    f".{method}(...) is not dotted lowercase "
                    "([a-z0-9_] segments joined by '.'); series names "
                    "must be stable join keys across metrics, traces, "
                    "and the Prometheus exposition")
            return
        if isinstance(value, self._DYNAMIC):
            self.report(
                module, value,
                f"metric/span name passed to .{method}(...) is built "
                "dynamically at the call site; use a dotted-lowercase "
                "string literal, or resolve the name into a plain "
                "variable up front (see serve/cache.py) so series "
                "stay grep-able and stable")


@register
class SubprocessWithoutDrainRule(Rule):
    """Serving-layer code that spawns a child process owns its whole
    lifecycle.  A ``subprocess.Popen`` (or ``multiprocessing.Process``)
    whose handle is never waited on, terminated, or drained anywhere in
    the module leaks the child past shutdown: the fleet drains workers
    on SIGTERM precisely because an orphaned worker keeps its port and
    its model memory.  The handle (or an alias of it) must receive a
    shutdown call — ``wait``/``join``/``terminate``/``kill``, or a
    wrapper's ``drain``/``stop``/``close`` — somewhere in the same
    module.  Applies to ``repro.serve`` and ``repro.fleet``; handles
    that escape the module on purpose carry
    ``# repro: ignore[RPR111]``.
    """

    code = "RPR111"
    name = "subprocess-without-drain"
    summary = "Spawned process handles must be drained in the same module"
    example_bad = 'def start(self):\n    self._proc = subprocess.Popen(argv)'
    example_good = ('def start(self):\n'
                    '    self._proc = subprocess.Popen(argv)\n\n'
                    'def stop(self):\n'
                    '    self._proc.terminate()\n'
                    '    self._proc.wait()')

    #: Module prefixes the rule applies to (the serving layers).
    module_prefixes = ("repro.serve", "repro.fleet")
    #: ``module attribute`` spawn constructors, per import root.
    _SPAWNERS = {"subprocess": frozenset({"Popen"}),
                 "multiprocessing": frozenset({"Process"})}
    #: Methods that settle a child process (or its owning wrapper).
    _DRAINS = frozenset({"wait", "join", "terminate", "kill",
                         "communicate", "drain", "stop", "close"})

    @staticmethod
    def _covered(module_name: str, prefix: str) -> bool:
        return (module_name == prefix
                or module_name.startswith(prefix + "."))

    def begin_module(self, module: ModuleContext) -> None:
        """Prescan imports for spawn-constructor aliases."""
        self._applies = any(self._covered(module.module_name, prefix)
                            for prefix in self.module_prefixes)
        #: local alias -> spawning module root ("subprocess", ...).
        self._module_aliases: dict[str, str] = {}
        #: bare imported constructor name -> True ("Popen", "Process").
        self._spawn_names: set[str] = set()
        if not self._applies:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in self._SPAWNERS:
                        local = alias.asname or alias.name
                        self._module_aliases[local] = alias.name
            elif isinstance(node, ast.ImportFrom):
                members = self._SPAWNERS.get(node.module or "")
                if members and node.level == 0:
                    for alias in node.names:
                        if alias.name in members:
                            self._spawn_names.add(alias.asname or alias.name)

    def finish_module(self, module: ModuleContext) -> None:
        """Match spawn bindings against drain calls, through aliases."""
        if not self._applies:
            return
        spawn_roots: dict[str, ast.Call] = {}
        loose_spawns: list[ast.Call] = []
        alias_edges: list[tuple[str, str]] = []
        bound_calls: set[int] = set()
        drained_keys: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                keys = [key for key in map(self._key, targets)
                        if key is not None]
                if isinstance(node.value, ast.Call) \
                        and self._is_spawn(node.value):
                    bound_calls.add(id(node.value))
                    for key in keys:
                        spawn_roots.setdefault(key, node.value)
                else:
                    source = self._key(node.value)
                    if source is not None:
                        alias_edges.extend((key, source) for key in keys)
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in self._DRAINS):
                    key = self._key(func.value)
                    if key is not None:
                        drained_keys.add(key)
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call) and self._is_spawn(node)
                    and id(node) not in bound_calls):
                loose_spawns.append(node)
        resolved = self._resolve_aliases(set(spawn_roots), alias_edges)
        for key, call in spawn_roots.items():
            drained = any(resolved.get(drain_key) == key
                          for drain_key in drained_keys)
            if not drained:
                self._report_spawn(module, call, key)
        for call in loose_spawns:
            self._report_spawn(module, call, None)

    def _report_spawn(self, module: ModuleContext, call: ast.Call,
                      key: str | None) -> None:
        where = (f"handle `{key}`" if key is not None
                 else "an unbound handle")
        self.report(
            module, call,
            f"spawned process with {where} is never waited on, "
            "terminated, or drained in this module; settle the child "
            "(.wait()/.join()/.terminate(), or a wrapper's "
            ".drain()/.stop()) so it cannot outlive shutdown, or add "
            "`# repro: ignore[RPR111]` if the handle escapes on purpose")

    def _is_spawn(self, node: ast.Call) -> bool:
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)):
            root = self._module_aliases.get(func.value.id)
            return (root is not None
                    and func.attr in self._SPAWNERS[root])
        return isinstance(func, ast.Name) and func.id in self._spawn_names

    @staticmethod
    def _key(node: ast.expr) -> str | None:
        """A trackable binding key: a local name or a ``self.`` attr."""
        if isinstance(node, ast.Name):
            return node.id
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return f"self.{node.attr}"
        return None

    @staticmethod
    def _resolve_aliases(roots: set[str],
                         edges: list[tuple[str, str]]) -> dict[str, str]:
        """Map every key to the spawn root it (transitively) aliases."""
        resolved = {root: root for root in roots}
        changed = True
        while changed:
            changed = False
            for target, source in edges:
                root = resolved.get(source)
                if root is not None and resolved.get(target) != root:
                    resolved[target] = root
                    changed = True
        return resolved
