"""RPR3xx — layering and API-hygiene rules.

The featurization, SQL, and data substrates form the lower layers of the
system (see ``docs/architecture.md``): they must stay importable without
dragging in models, estimators, or experiments, which is what lets them
be served, sharded, and tested independently.  The hygiene rules keep
the public API (``__all__``) and stdout behaviour honest.
"""

from __future__ import annotations

import ast

from repro.lint.engine import ModuleContext
from repro.lint.registry import Rule, register

__all__ = ["ImportLayeringRule", "PrintInLibraryRule", "DunderAllRule"]


def _module_matches(module_name: str, prefix: str) -> bool:
    return module_name == prefix or module_name.startswith(prefix + ".")


@register
class ImportLayeringRule(Rule):
    """Lower layers must not import upward (config: ``layering`` map)."""

    code = "RPR301"
    name = "import-layering"
    summary = "featurize/sql/data never import models/estimators/experiments"
    example_bad = '# in repro/featurize/base.py\nfrom repro.models.tree import RegressionTree'
    example_good = '# featurize stays below models: exchange plain ndarrays,\n# let repro.estimators wire the two layers together'

    def visit_Import(self, node: ast.Import, module: ModuleContext) -> None:
        """Check `import x` statements against the layer map."""
        for alias in node.names:
            self._check(alias.name, node, module)

    def visit_ImportFrom(self, node: ast.ImportFrom,
                         module: ModuleContext) -> None:
        """Check `from x import y` statements against the layer map."""
        target = self._resolve(node, module)
        if target is None:
            return
        self._check(target, node, module)
        for alias in node.names:
            if alias.name != "*":
                self._check(f"{target}.{alias.name}", node, module)

    @staticmethod
    def _resolve(node: ast.ImportFrom, module: ModuleContext) -> str | None:
        """Absolute target of an import-from (handles relative levels)."""
        if node.level == 0:
            return node.module
        parts = module.module_name.split(".")
        # Within a package __init__, level 1 refers to the package itself.
        cut = node.level - 1 if module.is_package_init else node.level
        if cut >= len(parts):
            return node.module
        base = parts[:len(parts) - cut]
        if node.module:
            base.append(node.module)
        return ".".join(base)

    def _check(self, imported: str, node: ast.stmt,
               module: ModuleContext) -> None:
        for layer, forbidden in self.config.layering.items():
            if not _module_matches(module.module_name, layer):
                continue
            for target in forbidden:
                if _module_matches(imported, target):
                    self.report(
                        module, node,
                        f"layer `{layer}` must not import `{target}` "
                        f"(imports `{imported}`); move the dependency up "
                        "or invert it via an interface")
                    return


@register
class PrintInLibraryRule(Rule):
    """Library code reports through return values and exceptions;
    stdout belongs to the CLI entry points (config: ``print-allowed``)."""

    code = "RPR302"
    name = "print-in-library"
    summary = "No print() outside configured CLI entry-point modules"
    example_bad = 'def fit(self, X):\n    print("fitting", X.shape)'
    example_good = 'def fit(self, X):\n    log.debug("fitting %s", X.shape)'

    def visit_Call(self, node: ast.Call, module: ModuleContext) -> None:
        """Flag print() calls outside the configured CLI modules."""
        if not (isinstance(node.func, ast.Name)
                and node.func.id == "print"):
            return
        if any(_module_matches(module.module_name, allowed)
               for allowed in self.config.print_allowed):
            return
        self.report(
            module, node,
            "print() in library code; return the value, raise, or move "
            "the output to a CLI module (config key `print-allowed`)")


@register
class DunderAllRule(Rule):
    """``__all__`` must list exactly the public surface: every public
    top-level definition (and, in a package ``__init__``, every re-export)
    appears in it, and everything it lists is actually bound."""

    code = "RPR303"
    name = "dunder-all-consistency"
    summary = "__all__ matches the actually-defined public names"
    example_bad = '__all__ = ["encode"]\n\ndef encode(): ...\ndef decode(): ...  # public but unexported'
    example_good = '__all__ = ["decode", "encode"]\n\ndef encode(): ...\ndef decode(): ...'

    def finish_module(self, module: ModuleContext) -> None:
        """Cross-check the module's __all__ against its bindings."""
        declaration = self._find_all(module.tree)
        if declaration is None:
            return
        node, names = declaration
        if names is None:
            return  # not statically resolvable; nothing to check
        seen: set[str] = set()
        for name in names:
            if name in seen:
                self.report(module, node,
                            f"duplicate name {name!r} in __all__")
            seen.add(name)
        bound, public, star_import = self._bindings(module)
        if not star_import:
            for name in sorted(seen - bound):
                self.report(
                    module, node,
                    f"__all__ lists {name!r} which is not defined or "
                    "imported at module top level")
        for name in sorted(public - seen):
            self.report(
                module, node,
                f"public name {name!r} is defined but missing from "
                "__all__; export it or rename it with a leading "
                "underscore")

    @staticmethod
    def _find_all(tree: ast.Module):
        for stmt in tree.body:
            target = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target = stmt.target
            if not (isinstance(target, ast.Name)
                    and target.id == "__all__"):
                continue
            value = stmt.value
            if not isinstance(value, (ast.List, ast.Tuple)):
                return stmt, None
            names = []
            for element in value.elts:
                if not (isinstance(element, ast.Constant)
                        and isinstance(element.value, str)):
                    return stmt, None
                names.append(element.value)
            return stmt, names
        return None

    @classmethod
    def _bindings(cls, module: ModuleContext) -> tuple[set[str], set[str], bool]:
        """(all bound names, required-public names, saw star import).

        Public *definitions* (functions, classes, constants) must be
        exported everywhere.  Imported names count as public surface only
        in a package ``__init__`` and only when imported from inside the
        package itself — that is the re-export contract; stdlib and
        third-party imports are implementation details everywhere.  All
        imports count as *bound* for the dangling-name check.
        """
        bound: set[str] = set()
        public: set[str] = set()
        star_import = False
        is_init = module.is_package_init
        package = module.module_name

        def intra_package(origin: str | None, level: int) -> bool:
            if level > 0:
                return True
            return origin is not None and _module_matches(origin, package)

        def note(name: str, *, definition: bool) -> None:
            bound.add(name)
            if definition and not name.startswith("_"):
                public.add(name)

        def collect(statements) -> None:
            nonlocal star_import
            for stmt in statements:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    note(stmt.name, definition=True)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        for name_node in ast.walk(target):
                            if isinstance(name_node, ast.Name):
                                note(name_node.id, definition=True)
                elif isinstance(stmt, ast.AnnAssign):
                    if (isinstance(stmt.target, ast.Name)
                            and stmt.value is not None):
                        note(stmt.target.id, definition=True)
                elif isinstance(stmt, ast.Import):
                    for alias in stmt.names:
                        local = alias.asname or alias.name.partition(".")[0]
                        note(local, definition=(
                            is_init and alias.asname is not None
                            and intra_package(alias.name, 0)))
                elif isinstance(stmt, ast.ImportFrom):
                    reexport = is_init and intra_package(stmt.module,
                                                         stmt.level)
                    for alias in stmt.names:
                        if alias.name == "*":
                            star_import = True
                            continue
                        note(alias.asname or alias.name,
                             definition=reexport)
                elif isinstance(stmt, ast.If):
                    collect(stmt.body)
                    collect(stmt.orelse)
                elif isinstance(stmt, ast.Try):
                    collect(stmt.body)
                    for handler in stmt.handlers:
                        collect(handler.body)
                    collect(stmt.orelse)
                    collect(stmt.finalbody)

        collect(module.tree.body)
        return bound, public, star_import
