"""Baseline files: committed grandfathered findings.

A baseline lets the linter be adopted on a tree with pre-existing
violations: known findings are recorded once and only *new* findings
fail the build.  This repository's committed baseline is empty — every
finding the initial sweep surfaced was fixed — but the mechanism stays,
because future rules will land against a grown tree.

Matching is by :meth:`Finding.fingerprint` (path, code, message) with
multiset semantics, so line drift does not un-baseline a finding but a
*second* identical violation in the same file is still reported.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.findings import Finding

__all__ = ["BaselineError", "load_baseline", "write_baseline",
           "apply_baseline", "update_baseline"]

_VERSION = 1


class BaselineError(ValueError):
    """Raised for malformed baseline files."""


def load_baseline(path: Path, root: Path | None = None) -> Counter:
    """Fingerprint multiset from ``path`` (missing file = empty).

    When ``root`` is given, entries whose recorded path no longer exists
    under it are pruned on load: a deleted file's grandfathered findings
    must not linger as spendable credit that could mask a *new* finding
    with the same fingerprint in a recreated file.
    """
    if not path.is_file():
        return Counter()
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise BaselineError(f"baseline {path} is not valid JSON: {error}") from error
    if not isinstance(data, dict) or "findings" not in data:
        raise BaselineError(
            f"baseline {path} must be an object with a 'findings' list")
    fingerprints: Counter = Counter()
    missing: set[str] = set()
    present: set[str] = set()
    for item in data["findings"]:
        try:
            fingerprint = (item["path"], item["code"], item["message"])
        except (TypeError, KeyError) as error:
            raise BaselineError(
                f"baseline {path} has a malformed entry: {item!r}"
            ) from error
        if root is not None:
            file_path = fingerprint[0]
            if file_path not in present and file_path not in missing:
                if (root / file_path).is_file():
                    present.add(file_path)
                else:
                    missing.add(file_path)
            if file_path in missing:
                continue
        fingerprints[fingerprint] += 1
    return fingerprints


def write_baseline(findings: Iterable[Finding], path: Path) -> None:
    """Write ``findings`` as the new baseline at ``path``."""
    payload = {
        "version": _VERSION,
        "findings": [
            {"path": f.path, "code": f.code, "message": f.message}
            for f in sorted(findings)
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def update_baseline(findings: Sequence[Finding], path: Path,
                    root: Path | None = None) -> int:
    """Shrink the baseline at ``path`` to findings still produced.

    The intersection (multiset) of the existing baseline with the
    current run's findings is rewritten deterministically: fixed or
    vanished entries drop out, but — unlike ``--write-baseline`` — no
    *new* finding is ever grandfathered.  Returns the number of entries
    removed.
    """
    old = load_baseline(path, root)
    current = Counter(f.fingerprint() for f in findings)
    kept = old & current
    payload = {
        "version": _VERSION,
        "findings": [
            {"path": p, "code": code, "message": message}
            for (p, code, message), count in sorted(kept.items())
            for _ in range(count)
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return sum(old.values()) - sum(kept.values())


def apply_baseline(findings: Sequence[Finding],
                   baseline: Counter) -> tuple[list[Finding], list[Finding]]:
    """Split ``findings`` into (new, grandfathered) against ``baseline``."""
    remaining = Counter(baseline)
    new: list[Finding] = []
    matched: list[Finding] = []
    for finding in findings:
        fingerprint = finding.fingerprint()
        if remaining[fingerprint] > 0:
            remaining[fingerprint] -= 1
            matched.append(finding)
        else:
            new.append(finding)
    return new, matched
