"""Workload value objects."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.sql.ast import Query

__all__ = ["LabeledQuery", "Workload"]


@dataclass(frozen=True)
class LabeledQuery:
    """A query with its true cardinality and workload metadata."""

    query: Query
    cardinality: int
    #: Number of distinct attributes with predicates.
    num_attributes: int
    #: Number of simple predicates.
    num_predicates: int

    def __post_init__(self) -> None:
        if self.cardinality < 1:
            raise ValueError(
                "labeled queries must have non-empty results (paper protocol); "
                f"got cardinality {self.cardinality}"
            )


class Workload:
    """An ordered collection of labeled queries with filtering helpers."""

    def __init__(self, items: Sequence[LabeledQuery], name: str = "workload") -> None:
        if not items:
            raise ValueError(f"workload {name!r} must contain at least one query")
        self._items = tuple(items)
        self.name = name

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[LabeledQuery]:
        return iter(self._items)

    def __getitem__(self, index) -> LabeledQuery:
        return self._items[index]

    @property
    def queries(self) -> list[Query]:
        """The queries, in order."""
        return [item.query for item in self._items]

    @property
    def cardinalities(self) -> np.ndarray:
        """True cardinalities, aligned with :attr:`queries`."""
        return np.asarray([item.cardinality for item in self._items],
                          dtype=np.float64)

    def filter(self, keep: Callable[[LabeledQuery], bool],
               name: str | None = None) -> "Workload":
        """A new workload containing only items where ``keep`` is true."""
        kept = [item for item in self._items if keep(item)]
        if not kept:
            raise ValueError(f"filter removed every query from {self.name!r}")
        return Workload(kept, name or self.name)

    def split(self, train_size: int, name_prefix: str | None = None
              ) -> tuple["Workload", "Workload"]:
        """Split into a training prefix and a testing suffix (disjoint)."""
        if not 0 < train_size < len(self._items):
            raise ValueError(
                f"train_size must be in (0, {len(self._items)}), got {train_size}"
            )
        prefix = name_prefix or self.name
        return (
            Workload(self._items[:train_size], f"{prefix}-train"),
            Workload(self._items[train_size:], f"{prefix}-test"),
        )

    def by_num_attributes(self) -> dict[int, "Workload"]:
        """Group queries by attribute count (used by Figures 2, 4, 5)."""
        groups: dict[int, list[LabeledQuery]] = {}
        for item in self._items:
            groups.setdefault(item.num_attributes, []).append(item)
        return {
            count: Workload(items, f"{self.name}-attrs{count}")
            for count, items in sorted(groups.items())
        }

    def by_num_predicates(self) -> dict[int, "Workload"]:
        """Group queries by predicate count (used by Figure 3)."""
        groups: dict[int, list[LabeledQuery]] = {}
        for item in self._items:
            groups.setdefault(item.num_predicates, []).append(item)
        return {
            count: Workload(items, f"{self.name}-preds{count}")
            for count, items in sorted(groups.items())
        }

    def __repr__(self) -> str:
        return f"Workload({self.name!r}, n={len(self._items)})"
