"""The forest *conjunctive* query workload (Section 5, "Data sets & query
workloads").

Per query the paper draws ``k`` distinct attributes uniformly at random,
generates one closed range predicate per attribute, and adds ``l`` in
``[0, 5]`` not-equal predicates per attribute that exclude values from
the range, e.g.::

    SELECT count(*) FROM forest
    WHERE A7 >= 160 AND A7 <= 225 AND
          A8 >= 45 AND A8 <= 237 AND A8 <> 220 AND A8 <> 186

Only queries with non-empty results are kept.  To make non-empty results
likely even for high-dimensional queries, ranges are anchored at the
attribute values of a randomly drawn *pivot row* (a standard workload-
generation device): the range always contains the pivot's value and the
not-equal predicates never exclude it, so the pivot row always qualifies.
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.data.table import Table
from repro.sql.ast import And, Op, Query, SimplePredicate
from repro.sql.executor import selection_mask
from repro.workloads.spec import LabeledQuery, Workload

__all__ = ["generate_conjunctive_workload", "generate_conjunctive_queries",
           "attribute_predicates"]


def attribute_predicates(table: Table, attribute: str, pivot_value: float,
                         rng: np.random.Generator,
                         max_not_equals: int = 5) -> list[SimplePredicate]:
    """One closed range plus ``l`` not-equal predicates on ``attribute``.

    The range is anchored at ``pivot_value``; the excluded values lie
    inside the range but differ from the pivot.
    """
    stats = table.column(attribute).stats
    span = stats.max_value - stats.min_value
    # Range half-widths are log-uniform over ~3 orders of magnitude so
    # selectivities vary from needle-narrow to half the domain (mirroring
    # randomly drawn range endpoints, which are often very tight).  Tight
    # ranges are exactly what the lossy QFTs misrepresent most.
    low_width = 10.0 ** rng.uniform(-3.0, np.log10(0.5)) * span
    high_width = 10.0 ** rng.uniform(-3.0, np.log10(0.5)) * span
    lo = max(pivot_value - low_width, stats.min_value)
    hi = min(pivot_value + high_width, stats.max_value)
    if stats.is_integral:
        lo, hi = float(np.floor(lo)), float(np.ceil(hi))
    predicates = [
        SimplePredicate(attribute, Op.GE, lo),
        SimplePredicate(attribute, Op.LE, hi),
    ]
    n_not_equals = int(rng.integers(0, max_not_equals + 1))
    if n_not_equals and stats.is_integral and hi > lo:
        candidates = np.arange(lo, hi + 1.0)
        candidates = candidates[candidates != pivot_value]
        if candidates.size:
            chosen = rng.choice(
                candidates,
                size=min(n_not_equals, candidates.size),
                replace=False,
            )
            predicates += [SimplePredicate(attribute, Op.NE, float(v))
                           for v in chosen]
    return predicates


def generate_conjunctive_workload(table: Table, num_queries: int,
                                  min_attributes: int = 1,
                                  max_attributes: int = 8,
                                  max_not_equals: int = 5,
                                  attributes=None,
                                  seed: int = config.DEFAULT_SEED,
                                  name: str = "forest-conjunctive") -> Workload:
    """Generate a labeled conjunctive workload over ``table``.

    ``min_attributes``/``max_attributes`` bound the per-query attribute
    count ``k`` (drawn uniformly); the paper's plots analyse 1–8
    attributes.  ``attributes`` restricts the draw to a column subset
    (e.g. excluding join keys).  Deterministic in ``seed``.
    """
    if num_queries < 1:
        raise ValueError(f"num_queries must be >= 1, got {num_queries}")
    candidates = (list(attributes) if attributes is not None
                  else table.column_names)
    missing = [a for a in candidates if a not in table]
    if missing:
        raise KeyError(f"attributes {missing} not in table {table.name!r}")
    if not 1 <= min_attributes <= max_attributes <= len(candidates):
        raise ValueError(
            f"invalid attribute bounds [{min_attributes}, {max_attributes}] "
            f"for {len(candidates)} candidate columns"
        )
    rng = np.random.default_rng(seed)
    items: list[LabeledQuery] = []
    attributes = np.asarray(candidates)
    attempts = 0
    max_attempts = num_queries * 50
    while len(items) < num_queries:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"workload generation stalled: {len(items)}/{num_queries} "
                f"queries after {attempts} attempts"
            )
        k = int(rng.integers(min_attributes, max_attributes + 1))
        chosen = rng.choice(attributes, size=k, replace=False)
        pivot_row = int(rng.integers(table.row_count))
        predicates: list[SimplePredicate] = []
        for attribute in chosen:
            pivot_value = float(table.column(attribute).values[pivot_row])
            predicates.extend(attribute_predicates(
                table, attribute, pivot_value, rng, max_not_equals
            ))
        where = And(predicates) if len(predicates) > 1 else predicates[0]
        cardinality = int(selection_mask(where, table).sum())
        if cardinality < 1:
            continue
        items.append(LabeledQuery(
            query=Query.single_table(table.name, where),
            cardinality=cardinality,
            num_attributes=k,
            num_predicates=len(predicates),
        ))
    return Workload(items, name)


def generate_conjunctive_queries(table: Table, num_queries: int,
                                 min_attributes: int = 1,
                                 max_attributes: int = 8,
                                 max_not_equals: int = 5,
                                 attributes=None,
                                 seed: int = config.DEFAULT_SEED
                                 ) -> list[Query]:
    """Generate *unlabeled* conjunctive queries (no execution, no filter).

    Same per-query drawing as :func:`generate_conjunctive_workload`, but
    queries are not executed against the table and empty-result queries
    are kept — suitable for featurization-throughput benchmarks where
    executing tens of thousands of queries would dominate the runtime.
    """
    if num_queries < 1:
        raise ValueError(f"num_queries must be >= 1, got {num_queries}")
    candidates = (list(attributes) if attributes is not None
                  else table.column_names)
    if not 1 <= min_attributes <= max_attributes <= len(candidates):
        raise ValueError(
            f"invalid attribute bounds [{min_attributes}, {max_attributes}] "
            f"for {len(candidates)} candidate columns"
        )
    rng = np.random.default_rng(seed)
    pool = np.asarray(candidates)
    queries: list[Query] = []
    for _ in range(num_queries):
        k = int(rng.integers(min_attributes, max_attributes + 1))
        chosen = rng.choice(pool, size=k, replace=False)
        pivot_row = int(rng.integers(table.row_count))
        predicates: list[SimplePredicate] = []
        for attribute in chosen:
            pivot_value = float(table.column(attribute).values[pivot_row])
            predicates.extend(attribute_predicates(
                table, attribute, pivot_value, rng, max_not_equals
            ))
        where = And(predicates) if len(predicates) > 1 else predicates[0]
        queries.append(Query.single_table(table.name, where))
    return queries
