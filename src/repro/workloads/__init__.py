"""Query workload generators following the paper's Section 5 protocol.

* :mod:`repro.workloads.conjunctive` — the forest *conjunctive* workload:
  per query, ``k`` distinct attributes with one closed range predicate
  each plus ``l in [0, 5]`` not-equal predicates inside each range.
* :mod:`repro.workloads.mixed` — the forest *mixed* workload: the
  per-attribute generation is repeated ``m in [1, 3]`` times and the
  branches are concatenated with OR (Definition 3.3 compound predicates).
* :mod:`repro.workloads.joblight` — JOB-light-style join workloads over
  the synthetic IMDb schema: a 70-query benchmark plus generated
  training queries.
* :mod:`repro.workloads.drift` — the query-drift split of Section 5.5.1
  (train on <= 2 attributes, test on >= 3).

All generators label queries with true cardinalities via the executor
and only emit queries with non-empty results (the paper's protocol).
"""

from repro.workloads.conjunctive import (
    generate_conjunctive_queries,
    generate_conjunctive_workload,
)
from repro.workloads.drift import drift_split
from repro.workloads.joblight import (
    generate_joblight_benchmark,
    generate_joblight_training,
)
from repro.workloads.mixed import generate_mixed_queries, generate_mixed_workload
from repro.workloads.spec import LabeledQuery, Workload

__all__ = [
    "LabeledQuery",
    "Workload",
    "generate_conjunctive_workload",
    "generate_conjunctive_queries",
    "generate_mixed_workload",
    "generate_mixed_queries",
    "generate_joblight_benchmark",
    "generate_joblight_training",
    "drift_split",
]
