"""The forest *mixed* query workload (Section 5).

"The generation is the same as for conjunctive queries, except that we
repeat the generation for the per-attribute predicates between ``m``,
``1 <= m <= 3`` times and concatenate them via OR."  The result is a
mixed query per Definition 3.3: a conjunction of per-attribute compound
predicates, each a disjunction of range-plus-not-equal conjunctions.
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.data.table import Table
from repro.sql.ast import And, BoolExpr, Or, Query
from repro.sql.executor import selection_mask
from repro.workloads.conjunctive import attribute_predicates
from repro.workloads.spec import LabeledQuery, Workload

__all__ = ["generate_mixed_workload", "generate_mixed_queries"]


def _compound_predicate(table: Table, attribute: str, pivot_row: int,
                        rng: np.random.Generator, max_branches: int,
                        max_not_equals: int) -> tuple[BoolExpr, int]:
    """A per-attribute compound predicate; returns ``(expr, n_predicates)``.

    Branch 1 is anchored at the pivot row (keeping the query non-empty);
    further branches anchor at independently drawn rows, so disjunction
    branches cover different regions of the attribute's domain.
    """
    column = table.column(attribute).values
    n_branches = int(rng.integers(1, max_branches + 1))
    branches: list[BoolExpr] = []
    total_predicates = 0
    for branch_index in range(n_branches):
        row = pivot_row if branch_index == 0 else int(rng.integers(column.size))
        predicates = attribute_predicates(
            table, attribute, float(column[row]), rng, max_not_equals
        )
        total_predicates += len(predicates)
        branches.append(And(predicates) if len(predicates) > 1 else predicates[0])
    expr: BoolExpr = branches[0] if len(branches) == 1 else Or(branches)
    return expr, total_predicates


def generate_mixed_workload(table: Table, num_queries: int,
                            min_attributes: int = 1, max_attributes: int = 8,
                            max_branches: int = 3, max_not_equals: int = 5,
                            seed: int = config.DEFAULT_SEED,
                            name: str = "forest-mixed") -> Workload:
    """Generate a labeled mixed workload over ``table`` (see module docs)."""
    if num_queries < 1:
        raise ValueError(f"num_queries must be >= 1, got {num_queries}")
    if max_branches < 1:
        raise ValueError(f"max_branches must be >= 1, got {max_branches}")
    rng = np.random.default_rng(seed)
    attributes = np.asarray(table.column_names)
    items: list[LabeledQuery] = []
    attempts = 0
    max_attempts = num_queries * 50
    while len(items) < num_queries:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"workload generation stalled: {len(items)}/{num_queries} "
                f"queries after {attempts} attempts"
            )
        k = int(rng.integers(min_attributes, max_attributes + 1))
        chosen = rng.choice(attributes, size=k, replace=False)
        pivot_row = int(rng.integers(table.row_count))
        compounds: list[BoolExpr] = []
        total_predicates = 0
        for attribute in chosen:
            expr, n_preds = _compound_predicate(
                table, attribute, pivot_row, rng, max_branches, max_not_equals
            )
            compounds.append(expr)
            total_predicates += n_preds
        where: BoolExpr = (And(compounds) if len(compounds) > 1
                           else compounds[0])
        cardinality = int(selection_mask(where, table).sum())
        if cardinality < 1:
            continue
        items.append(LabeledQuery(
            query=Query.single_table(table.name, where),
            cardinality=cardinality,
            num_attributes=k,
            num_predicates=total_predicates,
        ))
    return Workload(items, name)


def generate_mixed_queries(table: Table, num_queries: int,
                           min_attributes: int = 1, max_attributes: int = 8,
                           max_branches: int = 3, max_not_equals: int = 5,
                           seed: int = config.DEFAULT_SEED) -> list[Query]:
    """Generate *unlabeled* mixed queries (no execution, no filter).

    Same drawing as :func:`generate_mixed_workload` without the
    cardinality labeling pass — for featurization benchmarks.
    """
    if num_queries < 1:
        raise ValueError(f"num_queries must be >= 1, got {num_queries}")
    if max_branches < 1:
        raise ValueError(f"max_branches must be >= 1, got {max_branches}")
    rng = np.random.default_rng(seed)
    attributes = np.asarray(table.column_names)
    queries: list[Query] = []
    for _ in range(num_queries):
        k = int(rng.integers(min_attributes, max_attributes + 1))
        chosen = rng.choice(attributes, size=k, replace=False)
        pivot_row = int(rng.integers(table.row_count))
        compounds: list[BoolExpr] = []
        for attribute in chosen:
            expr, _ = _compound_predicate(
                table, attribute, pivot_row, rng, max_branches, max_not_equals
            )
            compounds.append(expr)
        where: BoolExpr = (And(compounds) if len(compounds) > 1
                           else compounds[0])
        queries.append(Query.single_table(table.name, where))
    return queries
