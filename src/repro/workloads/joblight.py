"""JOB-light-style join workloads over the synthetic IMDb schema.

JOB-light (Kipf et al.) is a set of 70 hand-written ``SELECT count(*)``
queries joining 2–6 IMDb tables through the ``title`` hub, with 1–5
conjunctive selection predicates on 1–4 distinct attributes and at most
one range per attribute.  :func:`generate_joblight_benchmark` emits a
70-query benchmark with exactly those shape constraints;
:func:`generate_joblight_training` emits the larger generated training
workload (the paper uses 231k; the scale is a parameter here).
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.data.imdb import PREDICATE_ATTRIBUTES
from repro.data.schema import Schema
from repro.sql.ast import And, JoinPredicate, Op, Query, SimplePredicate
from repro.sql.executor import cardinality
from repro.workloads.spec import LabeledQuery, Workload

__all__ = ["generate_joblight_benchmark", "generate_joblight_training",
           "generate_balanced_training", "generate_join_queries"]

_HUB = "title"


def _join_query_shape(schema: Schema, rng: np.random.Generator,
                      min_joins: int, max_joins: int,
                      fixed_children: tuple[str, ...] | None = None
                      ) -> tuple[tuple[str, ...], tuple[JoinPredicate, ...]]:
    """Draw the table set and join predicates of one star query."""
    if fixed_children is not None:
        chosen = list(fixed_children)
    else:
        children = [name for name in schema.table_names if name != _HUB]
        n_joins = int(rng.integers(min_joins, max_joins + 1))
        chosen = list(rng.choice(children, size=n_joins, replace=False))
    tables = (_HUB, *chosen)
    joins = []
    fk_by_child = {fk.child_table: fk for fk in schema.foreign_keys
                   if fk.parent_table == _HUB}
    for child in chosen:
        fk = fk_by_child[child]
        joins.append(JoinPredicate(fk.child_table, fk.child_column,
                                   fk.parent_table, fk.parent_column))
    return tables, tuple(joins)


def _draw_predicate(schema: Schema, table_name: str, attribute: str,
                    rng: np.random.Generator) -> list[SimplePredicate]:
    """At most one range (or equality) predicate on one attribute.

    JOB-light contains "at most one range per attribute"; literals are
    drawn from observed values so predicates are never trivially empty.
    """
    column = schema.table(table_name).column(attribute)
    value = float(column.values[int(rng.integers(column.values.size))])
    qualified = f"{table_name}.{attribute}"
    kind = rng.random()
    if kind < 0.35 or column.stats.distinct_count <= 8:
        return [SimplePredicate(qualified, Op.EQ, value)]
    if kind < 0.60:
        return [SimplePredicate(qualified, Op.GT, value)]
    if kind < 0.85:
        return [SimplePredicate(qualified, Op.LT, value)]
    other = float(column.values[int(rng.integers(column.values.size))])
    lo, hi = min(value, other), max(value, other)
    return [SimplePredicate(qualified, Op.GE, lo),
            SimplePredicate(qualified, Op.LE, hi)]


def generate_join_queries(schema: Schema, num_queries: int,
                          min_joins: int = 1, max_joins: int = 4,
                          max_pred_attributes: int = 4,
                          min_cardinality: int = 1,
                          seed: int = config.DEFAULT_SEED,
                          name: str = "imdb-joins",
                          fixed_children: tuple[str, ...] | None = None
                          ) -> Workload:
    """Generate labeled star-join queries (shared generator core).

    ``fixed_children`` pins the joined child tables (used by the balanced
    per-sub-schema training generator); otherwise the child set is drawn
    per query with ``min_joins``–``max_joins`` children.
    ``min_cardinality`` rejects queries with smaller results (the
    hand-written JOB-light queries all have non-trivial result sizes).
    """
    if num_queries < 1:
        raise ValueError(f"num_queries must be >= 1, got {num_queries}")
    children = len(schema.table_names) - 1
    if not 1 <= min_joins <= max_joins <= children:
        raise ValueError(
            f"join bounds [{min_joins}, {max_joins}] invalid for a schema "
            f"with {children} child tables"
        )
    rng = np.random.default_rng(seed)
    items: list[LabeledQuery] = []
    attempts = 0
    max_attempts = num_queries * 200
    while len(items) < num_queries:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"join workload generation stalled: {len(items)}/"
                f"{num_queries} after {attempts} attempts"
            )
        tables, joins = _join_query_shape(schema, rng, min_joins, max_joins,
                                          fixed_children)
        # Candidate (table, attribute) pairs across the chosen tables,
        # restricted to the JOB-light-style predicate attributes.
        candidates = [(t, a) for t in tables
                      for a in PREDICATE_ATTRIBUTES.get(t, ())
                      if a in schema.table(t)]
        n_attrs = int(rng.integers(1, max_pred_attributes + 1))
        n_attrs = min(n_attrs, len(candidates))
        picked = rng.choice(len(candidates), size=n_attrs, replace=False)
        predicates: list[SimplePredicate] = []
        for index in picked:
            table_name, attribute = candidates[int(index)]
            predicates.extend(_draw_predicate(schema, table_name, attribute, rng))
        where = And(predicates) if len(predicates) > 1 else predicates[0]
        query = Query(tables=tables, joins=joins, where=where)
        card = cardinality(query, schema)
        if card < max(min_cardinality, 1):
            continue
        items.append(LabeledQuery(
            query=query,
            cardinality=card,
            num_attributes=n_attrs,
            num_predicates=len(predicates),
        ))
    return Workload(items, name)


def generate_joblight_benchmark(schema: Schema, num_queries: int = 70,
                                seed: int = config.DEFAULT_SEED + 7
                                ) -> Workload:
    """The 70-query JOB-light-style benchmark (2–5 joins)."""
    max_joins = min(5, len(schema.table_names) - 1)
    return generate_join_queries(
        schema, num_queries, min_joins=2, max_joins=max_joins,
        min_cardinality=10, seed=seed, name="job-light",
    )


def generate_joblight_training(schema: Schema, num_queries: int,
                               seed: int = config.DEFAULT_SEED) -> Workload:
    """The generated training workload for the join experiments (1–5 joins)."""
    max_joins = min(5, len(schema.table_names) - 1)
    return generate_join_queries(
        schema, num_queries, min_joins=1, max_joins=max_joins,
        seed=seed, name="imdb-training",
    )


def generate_balanced_training(schema: Schema, queries_per_subschema: int,
                               min_joins: int = 1,
                               seed: int = config.DEFAULT_SEED) -> Workload:
    """Training workload with equal coverage of every star sub-schema.

    Local models train one estimator per sub-schema; a uniformly random
    table-set draw starves the larger sub-schemata of samples.  This
    generator emits ``queries_per_subschema`` queries for *every*
    combination of child tables with at least ``min_joins`` children,
    mirroring how the paper's per-sub-schema training sets are built.
    """
    from itertools import combinations

    children = [name for name in schema.table_names if name != _HUB]
    items = []
    offset = 0
    for size in range(min_joins, len(children) + 1):
        for combo in combinations(children, size):
            offset += 1
            workload = generate_join_queries(
                schema, queries_per_subschema,
                min_joins=size, max_joins=size,
                seed=seed + offset, fixed_children=combo,
                name="imdb-balanced",
            )
            items.extend(workload)
    return Workload(items, "imdb-balanced")
