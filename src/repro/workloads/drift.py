"""Query-drift experiment split (Section 5.5.1).

"Low-dimensional queries, mentioning at most two distinct attributes,
are used for training.  For testing, high-dimensional queries,
mentioning at least three distinct attributes, are used."
"""

from __future__ import annotations

from repro.workloads.spec import Workload

__all__ = ["drift_split"]


def drift_split(workload: Workload, train_max_attributes: int = 2,
                test_min_attributes: int = 3) -> tuple[Workload, Workload]:
    """Split ``workload`` into drifted (train, test) parts by attribute count.

    Raises ``ValueError`` (from :meth:`Workload.filter`) if either side
    would be empty, and rejects overlapping bounds outright.
    """
    if test_min_attributes <= train_max_attributes:
        raise ValueError(
            "drift split requires test_min_attributes > train_max_attributes, "
            f"got {test_min_attributes} <= {train_max_attributes}"
        )
    train = workload.filter(
        lambda item: item.num_attributes <= train_max_attributes,
        f"{workload.name}-drift-train",
    )
    test = workload.filter(
        lambda item: item.num_attributes >= test_min_attributes,
        f"{workload.name}-drift-test",
    )
    return train, test
