"""Workload serialization: save/load labeled query workloads.

The paper reports spending 3.5 *days* generating and labelling its 125k
mixed queries (Section 5.5.2) — labels are the expensive artifact, so a
production pipeline caches them.  The format is a plain text file, one
query per line::

    # workload: forest-conjunctive
    <cardinality>\t<num_attributes>\t<num_predicates>\t<SQL>

Human-inspectable, diff-friendly, and round-trips exactly through the
package's SQL parser.
"""

from __future__ import annotations

from pathlib import Path

from repro.sql.parser import parse_query
from repro.workloads.spec import LabeledQuery, Workload

__all__ = ["save_workload", "load_workload", "canonical_query_text"]

_HEADER_PREFIX = "# workload: "


def canonical_query_text(query) -> str:
    """The canonical single-line SQL text of a query.

    This is the serialization format's per-query payload: stable across
    processes (the AST renders deterministically), free of separator
    characters, and round-trippable through the package's SQL parser.
    The serving layer's estimate cache keys on exactly this string, so a
    query hits the cache no matter which surface (HTTP body, workload
    file, generator) it arrived through.
    """
    sql = query.to_sql()
    if "\t" in sql or "\n" in sql:
        raise ValueError(f"query contains separator characters: {sql!r}")
    return sql


def save_workload(workload: Workload, path: str | Path) -> None:
    """Write a labeled workload to a text file (see module docs)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [f"{_HEADER_PREFIX}{workload.name}"]
    for item in workload:
        sql = canonical_query_text(item.query)
        lines.append(f"{item.cardinality}\t{item.num_attributes}\t"
                     f"{item.num_predicates}\t{sql}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_workload(path: str | Path) -> Workload:
    """Load a workload saved by :func:`save_workload`.

    Labels are taken from the file verbatim — relabel against live data
    (via the executor) if the data may have changed since saving.
    """
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    if not lines or not lines[0].startswith(_HEADER_PREFIX):
        raise ValueError(f"{path} is not a saved workload (missing header)")
    name = lines[0][len(_HEADER_PREFIX):]
    items: list[LabeledQuery] = []
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        parts = line.split("\t", 3)
        if len(parts) != 4:
            raise ValueError(f"{path}:{number}: expected 4 tab-separated "
                             f"fields, got {len(parts)}")
        cardinality, num_attributes, num_predicates, sql = parts
        items.append(LabeledQuery(
            query=parse_query(sql),
            cardinality=int(cardinality),
            num_attributes=int(num_attributes),
            num_predicates=int(num_predicates),
        ))
    return Workload(items, name)
