"""The oracle estimator: returns true cardinalities.

Used to produce training labels, as the ground truth of every
experiment, and as the "true cardinalities" configuration of the
end-to-end comparison (Table 4).
"""

from __future__ import annotations

from repro.data.schema import Schema
from repro.data.table import Table
from repro.estimators.base import CardinalityEstimator, clamp_estimate
from repro.sql.ast import Query
from repro.sql.executor import cardinality

__all__ = ["TrueCardinalityEstimator"]


class TrueCardinalityEstimator(CardinalityEstimator):
    """Exact counting via the executor (not an estimator in spirit)."""

    name = "true"

    def __init__(self, data: Table | Schema) -> None:
        self._data = data

    def true_cardinality(self, query: Query) -> int:
        """The exact (unclamped) result size."""
        return cardinality(query, self._data)

    def estimate(self, query: Query) -> float:
        return clamp_estimate(self.true_cardinality(query))
