"""Cardinality estimators.

Everything that maps a :class:`~repro.sql.ast.Query` to an estimated
result size implements :class:`~repro.estimators.base.CardinalityEstimator`:

* :class:`LearnedEstimator` — QFT + ML model (the paper's approach).
* :class:`LocalModelEnsemble` — one learned model per connected
  sub-schema (Section 2.1.2 "local models").
* :class:`GlobalLearnedEstimator` — one model for all sub-schemata with a
  table-presence vector ("global models").
* :class:`PostgresEstimator` — Selinger-style histograms + independence
  assumption (the paper's *Postgres* baseline).
* :class:`SamplingEstimator` — per-query Bernoulli sampling baseline.
* :class:`TrueCardinalityEstimator` — the oracle (used for labels and for
  the end-to-end "true cardinalities" column of Table 4).
"""

from repro.estimators.base import CardinalityEstimator
from repro.estimators.groupby import GroupCountEstimator
from repro.estimators.hybrid import HybridEstimator
from repro.estimators.learned import GlobalLearnedEstimator, LearnedEstimator
from repro.estimators.local import LocalModelEnsemble
from repro.estimators.oracle import TrueCardinalityEstimator
from repro.estimators.postgres import PostgresEstimator
from repro.estimators.sampling import SamplingEstimator

__all__ = [
    "CardinalityEstimator",
    "LearnedEstimator",
    "GlobalLearnedEstimator",
    "LocalModelEnsemble",
    "HybridEstimator",
    "GroupCountEstimator",
    "PostgresEstimator",
    "SamplingEstimator",
    "TrueCardinalityEstimator",
]
