"""Bernoulli-sampling baseline (Section 5.2 / Section 7).

"In Bernoulli sampling, one draws a random sample R' from table R […]
suppose that R' is a p percent sample of R, then the final cardinality
estimate is |R'(Q)| / p."  The paper draws the sample *independently per
query* ("The sample is drawn independently per query"), which this class
reproduces by re-sampling with a per-query-derived seed.

The paper uses p = 0.1 % on 581k rows (~580 sample rows).  At this
reproduction's default scale (60k rows) the same absolute sample size
corresponds to ~1 %, so ``fraction`` defaults to 0.01; both the fraction
and a fixed-sample mode are configurable.
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.data.schema import Schema
from repro.data.table import Table
from repro.estimators.base import CardinalityEstimator, clamp_estimate
from repro.sql.ast import Query
from repro.sql.executor import per_table_selections, selection_mask

__all__ = ["SamplingEstimator"]


class SamplingEstimator(CardinalityEstimator):
    """Per-query Bernoulli sampling over base tables."""

    name = "sampling"

    def __init__(self, data: Table | Schema, fraction: float = 0.01,
                 per_query_sample: bool = True,
                 seed: int = config.DEFAULT_SEED) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self._schema = data if isinstance(data, Schema) else Schema([data])
        self._fraction = fraction
        self._per_query_sample = per_query_sample
        self._seed = seed
        self._query_counter = 0
        # Fixed samples (used when per_query_sample is False).
        rng = np.random.default_rng(seed)
        self._fixed_samples: dict[str, np.ndarray] = {
            name: rng.random(self._schema.table(name).row_count) < fraction
            for name in self._schema.table_names
        }

    @property
    def fraction(self) -> float:
        """The Bernoulli sampling probability ``p``."""
        return self._fraction

    def sample_bytes(self) -> int:
        """Approximate memory of the (fixed) samples (Section 5.7)."""
        total = 0
        for name, mask in self._fixed_samples.items():
            table = self._schema.table(name)
            rows = int(mask.sum())
            total += rows * len(table.column_names) * 8
        return total

    def _sample_mask(self, table: Table) -> np.ndarray:
        if not self._per_query_sample:
            return self._fixed_samples[table.name]
        rng = np.random.default_rng(
            (self._seed, self._query_counter, hash(table.name) & 0xFFFF)
        )
        return rng.random(table.row_count) < self._fraction

    def estimate(self, query: Query) -> float:
        self._query_counter += 1
        selections = per_table_selections(query, self._schema)
        if len(query.tables) == 1:
            table = self._schema.table(query.tables[0])
            sample = self._sample_mask(table)
            qualifying = selection_mask(selections[table.name], table) & sample
            sampled_rows = max(int(sample.sum()), 1)
            scale = table.row_count / sampled_rows
            return clamp_estimate(int(qualifying.sum()) * scale)
        # Join queries: estimate per-table selectivities on the samples and
        # combine with the System-R join formula (plain Bernoulli sampling
        # does not compose across joins; the paper's sampling baseline is
        # single-table only, this path exists for completeness).
        estimate = 1.0
        for table_name in query.tables:
            table = self._schema.table(table_name)
            sample = self._sample_mask(table)
            sampled_rows = max(int(sample.sum()), 1)
            qualifying = selection_mask(selections.get(table_name), table) & sample
            selectivity = int(qualifying.sum()) / sampled_rows
            estimate *= table.row_count * max(selectivity, 1e-9)
        for join in query.joins:
            left_ndv = self._schema.table(join.left_table).column(
                join.left_column).stats.distinct_count
            right_ndv = self._schema.table(join.right_table).column(
                join.right_column).stats.distinct_count
            estimate /= max(left_ndv, right_ndv, 1)
        return clamp_estimate(estimate)
