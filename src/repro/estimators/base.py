"""The estimator interface."""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

import numpy as np

from repro import config, obs
from repro.sql.ast import Query

__all__ = ["CardinalityEstimator", "clamp_estimate"]


def clamp_estimate(value: float) -> float:
    """Clamp an estimate to the paper's ``>= 1`` convention."""
    return max(float(value), config.MIN_ESTIMATE)


class CardinalityEstimator(abc.ABC):
    """Maps queries to estimated result cardinalities (always ``>= 1``)."""

    #: Display name used in experiment tables/plots.
    name: str = "abstract"

    @abc.abstractmethod
    def estimate(self, query: Query) -> float:
        """Estimate the result cardinality of one query."""

    def estimate_batch(self, queries: Sequence[Query] | Iterable[Query]
                       ) -> np.ndarray:
        """Estimate many queries; subclasses override for vectorised paths."""
        batch = list(queries)
        with obs.span("estimator.estimate", estimator=self.name,
                      n_queries=len(batch)):
            return np.asarray([self.estimate(q) for q in batch],
                              dtype=np.float64)
