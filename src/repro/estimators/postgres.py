"""Selinger-style baseline estimator (the paper's *Postgres* competitor).

PostgreSQL's planner estimates selection selectivities from per-column
statistics (most-common values + equi-depth histograms) and combines
predicates under the **independence assumption**; join sizes follow the
System-R formula ``|R| * |S| / max(ndv(a), ndv(b))``.  This module
implements exactly that pipeline over our :mod:`repro.data.stats`
statistics — mirroring "Postgres is the cardinality estimator from
PostgreSQL version 13.2, essentially independence assumption"
(Section 5.2).
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import Schema
from repro.data.stats import ColumnStats
from repro.data.table import Table
from repro.estimators.base import CardinalityEstimator, clamp_estimate
from repro.sql.ast import And, BoolExpr, Op, Or, Query, SimplePredicate
from repro.sql.executor import per_table_selections

__all__ = ["PostgresEstimator", "predicate_selectivity"]

#: Selectivity floor to avoid zero estimates (Postgres behaves similarly).
_MIN_SELECTIVITY = 1e-9


def _histogram_fraction_below(stats: ColumnStats, value: float,
                              inclusive: bool) -> float:
    """Fraction of rows with column value below (or equal to) ``value``."""
    bounds = np.asarray(stats.histogram_bounds)
    if bounds.size < 2:
        return 0.5
    if value < bounds[0]:
        return 0.0
    if value > bounds[-1]:
        return 1.0
    buckets = bounds.size - 1
    # Index of the bucket containing value.
    idx = int(np.searchsorted(bounds, value, side="right")) - 1
    idx = min(max(idx, 0), buckets - 1)
    lo, hi = bounds[idx], bounds[idx + 1]
    if hi > lo:
        inside = (value - lo) / (hi - lo)
    else:
        inside = 1.0 if inclusive else 0.0
    return (idx + inside) / buckets


def _equality_selectivity(stats: ColumnStats, value: float) -> float:
    """MCV lookup, falling back to uniform share of the non-MCV mass."""
    for mcv, fraction in zip(stats.mcv_values, stats.mcv_fractions):
        if mcv == value:
            return fraction
    remaining_ndv = stats.distinct_count - len(stats.mcv_values)
    if remaining_ndv <= 0:
        return _MIN_SELECTIVITY
    remaining_mass = max(1.0 - sum(stats.mcv_fractions), 0.0)
    if not (stats.min_value <= value <= stats.max_value):
        return _MIN_SELECTIVITY
    return max(remaining_mass / remaining_ndv, _MIN_SELECTIVITY)


def predicate_selectivity(stats: ColumnStats, predicate: SimplePredicate) -> float:
    """Estimated selectivity of one simple predicate."""
    value = float(predicate.value)
    op = predicate.op
    if op is Op.EQ:
        sel = _equality_selectivity(stats, value)
    elif op is Op.NE:
        sel = 1.0 - _equality_selectivity(stats, value)
    elif op is Op.LT:
        sel = _histogram_fraction_below(stats, value, inclusive=False)
    elif op is Op.LE:
        sel = _histogram_fraction_below(stats, value, inclusive=True)
    elif op is Op.GT:
        sel = 1.0 - _histogram_fraction_below(stats, value, inclusive=True)
    elif op is Op.GE:
        sel = 1.0 - _histogram_fraction_below(stats, value, inclusive=False)
    else:  # pragma: no cover - Op is a closed enum
        raise ValueError(f"unhandled operator {op}")
    return min(max(sel, _MIN_SELECTIVITY), 1.0)


class PostgresEstimator(CardinalityEstimator):
    """Histogram statistics + independence assumption + System-R joins."""

    name = "postgres"

    def __init__(self, data: Table | Schema) -> None:
        self._schema = data if isinstance(data, Schema) else Schema([data])

    def _resolve_stats(self, table: Table, attribute: str) -> ColumnStats:
        name = attribute
        prefix, dot, rest = attribute.partition(".")
        if dot and prefix == table.name:
            name = rest
        return table.column(name).stats

    def _expr_selectivity(self, expr: BoolExpr | None, table: Table) -> float:
        """Recursive selectivity under the independence assumption."""
        if expr is None:
            return 1.0
        if isinstance(expr, SimplePredicate):
            stats = self._resolve_stats(table, expr.attribute)
            return predicate_selectivity(stats, expr)
        if isinstance(expr, And):
            selectivity = 1.0
            for child in expr.children:
                selectivity *= self._expr_selectivity(child, table)
            return selectivity
        if isinstance(expr, Or):
            # s(a OR b) = 1 - prod(1 - s_i): union under independence,
            # the n-ary generalisation of s_a + s_b - s_a * s_b.
            miss = 1.0
            for child in expr.children:
                miss *= 1.0 - self._expr_selectivity(child, table)
            return 1.0 - miss
        raise TypeError(f"not a boolean expression: {type(expr).__name__}")

    def table_selectivity(self, query: Query, table_name: str) -> float:
        """Selection selectivity attributed to ``table_name`` in ``query``."""
        selections = per_table_selections(query, self._schema)
        return self._expr_selectivity(selections.get(table_name),
                                      self._schema.table(table_name))

    def estimate(self, query: Query) -> float:
        selections = per_table_selections(query, self._schema)
        estimate = 1.0
        for table_name in query.tables:
            table = self._schema.table(table_name)
            selectivity = self._expr_selectivity(selections.get(table_name),
                                                 table)
            estimate *= table.row_count * selectivity
        for join in query.joins:
            left = self._schema.table(join.left_table)
            right = self._schema.table(join.right_table)
            ndv_left = left.column(join.left_column).stats.distinct_count
            ndv_right = right.column(join.right_column).stats.distinct_count
            estimate /= max(ndv_left, ndv_right, 1)
        return clamp_estimate(estimate)
