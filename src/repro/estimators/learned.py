"""Learned estimators: QFT + ML model combinations.

:class:`LearnedEstimator` pairs any vector featurizer (a fitted QFT or a
join composition of QFTs) with any :class:`~repro.models.base.Regressor`;
targets are handled in log space.  :class:`GlobalLearnedEstimator` is the
convenience wrapper for the global-model setup (table bitmap + all-table
QFT segments).  :class:`MSCNEstimator` adapts the set-based MSCN model to
the estimator interface.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence

import numpy as np

from repro import obs
from repro.data.schema import Schema
from repro.estimators.base import CardinalityEstimator
from repro.featurize.joins import FeaturizerFactory, GlobalJoinFeaturizer
from repro.models.base import LogSpaceRegressor, Regressor
from repro.models.mscn import MSCNModel
from repro.sql.ast import Query

__all__ = ["LearnedEstimator", "GlobalLearnedEstimator", "MSCNEstimator",
           "VectorFeaturizer"]


class VectorFeaturizer(Protocol):
    """Anything that maps queries to fixed-length vectors."""

    @property
    def feature_length(self) -> int:
        """Dimension of the produced feature vectors."""
        ...

    def featurize(self, query) -> np.ndarray:
        """Encode one query into a feature vector."""
        ...

    def featurize_batch(self, queries) -> np.ndarray:
        """Encode many queries into a ``(n, feature_length)`` matrix."""
        ...


class LearnedEstimator(CardinalityEstimator):
    """A fitted QFT plus a regression model on log cardinalities."""

    def __init__(self, featurizer: VectorFeaturizer, model: Regressor,
                 name: str | None = None) -> None:
        self._featurizer = featurizer
        self._model = LogSpaceRegressor(model)
        self._fitted = False
        self.name = name or f"{type(model).__name__}+{getattr(featurizer, 'name', 'qft')}"

    @property
    def featurizer(self) -> VectorFeaturizer:
        """The featurization layer."""
        return self._featurizer

    @property
    def model(self) -> LogSpaceRegressor:
        """The log-space-wrapped model."""
        return self._model

    def fit(self, queries: Sequence[Query], cardinalities: np.ndarray
            ) -> "LearnedEstimator":
        """Train on queries with known true cardinalities.

        Feature matrices come from the featurizer's batch pipeline (one
        compile pass plus a vectorized encode), so training-set
        featurization cost no longer scales with per-query python
        dispatch.
        """
        with obs.span("estimator.fit", estimator=self.name,
                      n_queries=len(queries)):
            features = self._featurizer.featurize_batch(queries)
            self._model.fit(features,
                            np.asarray(cardinalities, dtype=np.float64))
        self._fitted = True
        return self

    def compile(self) -> "LearnedEstimator":
        """Compile the underlying model's inference path, if it has one.

        Delegates to the raw regressor's ``compile()`` (the gradient
        boosting model packs its forest into a
        :class:`~repro.models.compiled_forest.CompiledForest`); models
        without a compiled form are left untouched.  Idempotent.
        """
        if not self._fitted:
            raise RuntimeError("estimator must be fitted before compiling")
        raw = self._model.model
        if hasattr(raw, "compile"):
            raw.compile()
        return self

    def estimate(self, query: Query) -> float:
        return float(self.estimate_batch([query])[0])

    def estimate_batch(self, queries: Sequence[Query] | Iterable[Query]
                       ) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("estimator must be fitted before estimating")
        batch = list(queries)
        with obs.span("estimator.estimate", estimator=self.name,
                      n_queries=len(batch)):
            features = self._featurizer.featurize_batch(batch)
            return self._model.predict(features)

    def estimate_features(self, features: np.ndarray) -> np.ndarray:
        """Predict cardinalities from an already-encoded feature matrix.

        The fused serving path encodes whole micro-batches through
        shape plans and feeds the matrix straight here, skipping the
        per-query featurize pass :meth:`estimate_batch` performs.  The
        matrix must come from this estimator's own featurizer (same
        feature space); output is bitwise-identical to
        ``estimate_batch`` on the queries the matrix encodes.
        """
        if not self._fitted:
            raise RuntimeError("estimator must be fitted before estimating")
        return self._model.predict(features)

    def memory_bytes(self) -> int:
        """Model footprint (Section 5.7)."""
        return self._model.memory_bytes()


class GlobalLearnedEstimator(LearnedEstimator):
    """Global model: one estimator for all sub-schemata of a schema."""

    def __init__(self, schema: Schema, factory: FeaturizerFactory,
                 model: Regressor, name: str | None = None) -> None:
        featurizer = GlobalJoinFeaturizer(schema, factory)
        super().__init__(featurizer, model,
                         name=name or f"global-{type(model).__name__}")


class MSCNEstimator(CardinalityEstimator):
    """Adapter exposing :class:`~repro.models.mscn.MSCNModel` as an estimator."""

    def __init__(self, model: MSCNModel, name: str = "mscn") -> None:
        self._model = model
        # Adopt the state of a pre-trained model so reconstructed
        # estimators stay usable without refitting.
        self._fitted = bool(getattr(model, "_fitted", False))
        self.name = name

    def fit(self, queries: Sequence[Query], cardinalities: np.ndarray
            ) -> "MSCNEstimator":
        """Train the underlying MSCN."""
        with obs.span("estimator.fit", estimator=self.name,
                      n_queries=len(queries)):
            self._model.fit(list(queries),
                            np.asarray(cardinalities, dtype=np.float64))
        self._fitted = True
        return self

    def estimate(self, query: Query) -> float:
        if not self._fitted:
            raise RuntimeError("estimator must be fitted before estimating")
        return float(self._model.predict([query])[0])

    def estimate_batch(self, queries) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("estimator must be fitted before estimating")
        batch = list(queries)
        with obs.span("estimator.estimate", estimator=self.name,
                      n_queries=len(batch)):
            return self._model.predict(batch)

    def memory_bytes(self) -> int:
        """Model footprint (Section 5.7)."""
        return self._model.memory_bytes()
