"""Local-model ensemble (Section 2.1.2 / Section 4.1).

One model is built per *sub-schema* — per base table or per join result.
At estimation time a query's selection predicates are featurized and
forwarded to the local model responsible for the query's table set.

Following the paper ("in real applications, this number is reduced by
relying on System R formulas"), the ensemble trains models only for the
sub-schemata that actually occur in the training workload; unseen table
sets raise ``KeyError``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.data.schema import Schema
from repro.estimators.base import CardinalityEstimator
from repro.estimators.learned import LearnedEstimator
from repro.featurize.joins import FeaturizerFactory, JoinQueryFeaturizer
from repro.models.base import Regressor
from repro.sql.ast import Query

__all__ = ["LocalModelEnsemble", "ModelFactory"]

#: Builds a fresh, unfitted regressor per sub-schema.
ModelFactory = Callable[[], Regressor]


class LocalModelEnsemble(CardinalityEstimator):
    """Per-sub-schema learned estimators behind a single interface."""

    def __init__(self, schema: Schema, featurizer_factory: FeaturizerFactory,
                 model_factory: ModelFactory, name: str = "local") -> None:
        self._schema = schema
        self._featurizer_factory = featurizer_factory
        self._model_factory = model_factory
        self._models: dict[frozenset[str], LearnedEstimator] = {}
        self.name = name

    @property
    def subschemata(self) -> list[frozenset[str]]:
        """The table sets for which local models exist."""
        return list(self._models)

    def model_for(self, tables) -> LearnedEstimator:
        """The local model of a table set (``KeyError`` if untrained)."""
        key = frozenset(tables)
        try:
            return self._models[key]
        except KeyError:
            raise KeyError(
                f"no local model for sub-schema {sorted(key)}; trained "
                f"sub-schemata: {[sorted(s) for s in self._models]}"
            ) from None

    def fit(self, queries: Sequence[Query], cardinalities: np.ndarray
            ) -> "LocalModelEnsemble":
        """Train one local model per table set present in ``queries``."""
        cards = np.asarray(cardinalities, dtype=np.float64)
        if len(queries) != cards.size:
            raise ValueError("queries and cardinalities must align")
        groups: dict[frozenset[str], list[int]] = {}
        for i, query in enumerate(queries):
            groups.setdefault(frozenset(query.tables), []).append(i)
        self._models = {}
        for table_set, indices in groups.items():
            featurizer = JoinQueryFeaturizer(
                self._schema, sorted(table_set), self._featurizer_factory
            )
            estimator = LearnedEstimator(featurizer, self._model_factory())
            estimator.fit([queries[i] for i in indices], cards[indices])
            self._models[table_set] = estimator
        return self

    def estimate(self, query: Query) -> float:
        return self.model_for(query.tables).estimate(query)

    def estimate_batch(self, queries) -> np.ndarray:
        queries = list(queries)
        estimates = np.empty(len(queries), dtype=np.float64)
        # Route by sub-schema, estimating each group in one vectorised call.
        groups: dict[frozenset[str], list[int]] = {}
        for i, query in enumerate(queries):
            groups.setdefault(frozenset(query.tables), []).append(i)
        for table_set, indices in groups.items():
            model = self.model_for(table_set)
            estimates[indices] = model.estimate_batch(
                [queries[i] for i in indices]
            )
        return estimates

    def memory_bytes(self) -> int:
        """Total footprint across all local models (Section 5.7)."""
        return sum(m.memory_bytes() for m in self._models.values())
