"""Hybrid estimation: learned base tables + System-R join composition.

The paper's Section 2.1.2 points to Woltmann et al.'s *Best of Both
Worlds* [31]: local models are only needed "exactly for those
sub-schemata for which the assumptions from [25] do not hold"; elsewhere
the classic System-R formulas compose estimates.  The cheapest such
configuration — implemented here — learns **one model per base table**
(capturing intra-table predicate correlation, where the independence
assumption is most wrong) and composes join estimates with the Selinger
formula ``|R ⋈ S| = |R| * |S| / max(ndv(a), ndv(b))``.

Compared to a full :class:`~repro.estimators.local.LocalModelEnsemble`:
``n`` models instead of up to ``2^n - 1``, trained on cheap single-table
labels; the price is that cross-table correlation (e.g. fan-out skew)
remains unmodeled, exactly as in the Postgres baseline.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro import config
from repro.data.schema import Schema
from repro.estimators.base import CardinalityEstimator, clamp_estimate
from repro.estimators.learned import LearnedEstimator
from repro.featurize.joins import FeaturizerFactory, predicate_columns
from repro.models.base import Regressor
from repro.sql.ast import Query
from repro.sql.executor import per_table_selections
from repro.workloads.conjunctive import generate_conjunctive_workload
from repro.workloads.spec import Workload

__all__ = ["HybridEstimator", "ModelFactory"]

ModelFactory = Callable[[], Regressor]


class HybridEstimator(CardinalityEstimator):
    """Per-base-table learned selectivities, System-R join composition."""

    name = "hybrid"

    def __init__(self, schema: Schema, featurizer_factory: FeaturizerFactory,
                 model_factory: ModelFactory) -> None:
        self._schema = schema
        self._featurizer_factory = featurizer_factory
        self._model_factory = model_factory
        self._models: dict[str, LearnedEstimator] = {}

    @property
    def table_models(self) -> dict[str, LearnedEstimator]:
        """The trained per-base-table estimators."""
        return dict(self._models)

    def fit(self, table_workloads: Mapping[str, Workload]
            ) -> "HybridEstimator":
        """Train one single-table model per entry of ``table_workloads``."""
        self._models = {}
        for table_name, workload in table_workloads.items():
            featurizer = self._featurizer_factory(
                self._schema.table(table_name),
                predicate_columns(self._schema, table_name),
            )
            self._models[table_name] = LearnedEstimator(
                featurizer, self._model_factory(),
            ).fit(workload.queries, workload.cardinalities)
        return self

    def fit_generated(self, queries_per_table: int = 2_000,
                      max_attributes: int = 3,
                      seed: int = config.DEFAULT_SEED) -> "HybridEstimator":
        """Generate + label single-table training workloads and fit.

        Single-table labels are orders of magnitude cheaper than join
        labels — the practical advantage of the hybrid configuration.
        """
        workloads = {}
        for offset, table_name in enumerate(self._schema.table_names):
            table = self._schema.table(table_name)
            columns = predicate_columns(self._schema, table_name)
            workloads[table_name] = generate_conjunctive_workload(
                table, queries_per_table,
                max_attributes=min(max_attributes, len(columns)),
                attributes=columns,
                seed=seed + offset,
                name=f"hybrid-{table_name}",
            )
        return self.fit(workloads)

    def _table_cardinality(self, table_name: str, query: Query,
                           selections) -> float:
        """Learned qualifying-row estimate for one table of the query."""
        model = self._models.get(table_name)
        if model is None:
            raise KeyError(
                f"no base-table model for {table_name!r}; fitted tables: "
                f"{sorted(self._models)}"
            )
        expr = selections.get(table_name)
        table = self._schema.table(table_name)
        if expr is None:
            return float(table.row_count)
        return model.estimate(Query.single_table(table_name, expr))

    def estimate(self, query: Query) -> float:
        if not self._models:
            raise RuntimeError("estimator must be fitted before estimating")
        selections = per_table_selections(query, self._schema)
        estimate = 1.0
        for table_name in query.tables:
            estimate *= self._table_cardinality(table_name, query, selections)
        for join in query.joins:
            ndv_left = self._schema.table(join.left_table).column(
                join.left_column).stats.distinct_count
            ndv_right = self._schema.table(join.right_table).column(
                join.right_column).stats.distinct_count
            estimate /= max(ndv_left, ndv_right, 1)
        return clamp_estimate(estimate)

    def memory_bytes(self) -> int:
        """Total footprint of the base-table models."""
        return sum(m.memory_bytes() for m in self._models.values())
