"""Learned group-count estimation (the Section 6 GROUP BY extension).

"GROUP BY clauses can significantly impact query result sizes.  We
outline how to featurize GROUP BY clauses such that combination with any
QFT is easy" — the binary grouping vector of
:class:`~repro.featurize.groupby.GroupByVector`.

This module makes the outline functional: :class:`GroupCountEstimator`
concatenates any QFT's selection featurization with the grouping vector
and regresses the **number of groups** a query produces (the result size
of a ``SELECT ... GROUP BY`` count query).  Training labels come from
the executor's exact :func:`~repro.sql.executor.group_count`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import config
from repro.data.table import Table
from repro.estimators.base import CardinalityEstimator
from repro.estimators.learned import VectorFeaturizer
from repro.featurize.groupby import GroupByVector
from repro.models.base import LogSpaceRegressor, Regressor
from repro.sql.ast import Query
from repro.sql.executor import group_count
from repro.workloads.conjunctive import generate_conjunctive_workload
from repro.workloads.spec import LabeledQuery, Workload

__all__ = ["GroupCountEstimator", "generate_groupby_workload"]


class GroupCountEstimator(CardinalityEstimator):
    """QFT ⊕ grouping-vector featurization with a log-space regressor."""

    name = "group-count"

    def __init__(self, featurizer: VectorFeaturizer, table: Table,
                 model: Regressor) -> None:
        self._featurizer = featurizer
        self._groupby = GroupByVector(table, getattr(featurizer, "attributes",
                                                     None))
        self._model = LogSpaceRegressor(model)
        self._fitted = False

    @property
    def feature_length(self) -> int:
        """QFT segment plus one grouping bit per attribute."""
        return self._featurizer.feature_length + self._groupby.feature_length

    def _featurize(self, query: Query) -> np.ndarray:
        return np.concatenate([
            self._featurizer.featurize(query.where),
            self._groupby.featurize(query),
        ])

    def fit(self, queries: Sequence[Query], group_counts: np.ndarray
            ) -> "GroupCountEstimator":
        """Train on queries with known group counts."""
        features = np.stack([self._featurize(q) for q in queries])
        self._model.fit(features, np.asarray(group_counts, dtype=np.float64))
        self._fitted = True
        return self

    def estimate(self, query: Query) -> float:
        if not self._fitted:
            raise RuntimeError("estimator must be fitted before estimating")
        if not query.group_by:
            raise ValueError(
                "query has no GROUP BY clause; use a cardinality estimator"
            )
        return float(self._model.predict(self._featurize(query)[None, :])[0])

    def estimate_batch(self, queries) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("estimator must be fitted before estimating")
        features = np.stack([self._featurize(q) for q in queries])
        return self._model.predict(features)


def generate_groupby_workload(table: Table, num_queries: int,
                              max_attributes: int = 3,
                              max_group_columns: int = 2,
                              group_columns=None,
                              seed: int = config.DEFAULT_SEED,
                              name: str = "groupby") -> Workload:
    """Labeled GROUP BY workload: selections + random grouping columns.

    Selection predicates follow the conjunctive recipe; 1..
    ``max_group_columns`` grouping attributes are drawn per query (from
    ``group_columns`` if given, else all columns) and the label is the
    exact number of groups.  ``cardinality`` on the returned items
    therefore holds the *group count*.
    """
    rng = np.random.default_rng(seed)
    base = generate_conjunctive_workload(
        table, num_queries, max_attributes=max_attributes, seed=seed,
        name=name,
    )
    candidates = (list(group_columns) if group_columns is not None
                  else table.column_names)
    missing = [c for c in candidates if c not in table]
    if missing:
        raise KeyError(f"group columns {missing} not in table {table.name!r}")
    columns = np.asarray(candidates)
    items: list[LabeledQuery] = []
    for item in base:
        k = int(rng.integers(1, max_group_columns + 1))
        group_by = tuple(rng.choice(columns, size=k, replace=False))
        query = Query.single_table(table.name, item.query.where,
                                   group_by=group_by)
        groups = group_count(query, table)
        if groups < 1:
            # The selection matched rows (the base workload guarantees
            # it), so at least one group always exists; guard anyway.
            continue
        items.append(LabeledQuery(
            query=query,
            cardinality=groups,
            num_attributes=item.num_attributes,
            num_predicates=item.num_predicates,
        ))
    return Workload(items, name)
