"""repro — reproduction of "Enhanced Featurization of Queries with Mixed
Combinations of Predicates for ML-based Cardinality Estimation"
(Müller, Woltmann, Lehner; EDBT 2023).

The package is organised along the paper's structure:

* :mod:`repro.featurize` — the query featurization techniques (QFTs),
  the paper's primary contribution (Section 3).
* :mod:`repro.models` — the ML model substrates (GB / NN / MSCN) built
  from scratch in numpy (Section 2.2).
* :mod:`repro.estimators` — QFT × model estimators plus the Postgres
  and sampling baselines (Sections 4/5.2).
* :mod:`repro.data`, :mod:`repro.sql` — the data and SQL substrates.
* :mod:`repro.workloads` — workload generators (Section 5 protocol).
* :mod:`repro.optimizer` — the end-to-end plan-choice simulation
  (Section 5.3).
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro.data.forest import generate_forest
    from repro.featurize import ConjunctiveEncoding
    from repro.models import GradientBoostingRegressor
    from repro.estimators import LearnedEstimator
    from repro.workloads import generate_conjunctive_workload

    table = generate_forest(rows=20_000)
    workload = generate_conjunctive_workload(table, num_queries=2_000)
    train, test = workload.split(train_size=1_500)

    estimator = LearnedEstimator(
        ConjunctiveEncoding(table, max_partitions=32),
        GradientBoostingRegressor(),
    ).fit(train.queries, train.cardinalities)

    estimates = estimator.estimate_batch(test.queries)
"""

from repro import config
from repro.data import Column, ForeignKey, Schema, Table
from repro.estimators import (
    CardinalityEstimator,
    GlobalLearnedEstimator,
    GroupCountEstimator,
    HybridEstimator,
    LearnedEstimator,
    LocalModelEnsemble,
    PostgresEstimator,
    SamplingEstimator,
    TrueCardinalityEstimator,
)
from repro.featurize import (
    ConjunctiveEncoding,
    DisjunctionEncoding,
    EquiDepthConjunctiveEncoding,
    Featurizer,
    JoinQueryFeaturizer,
    RangeEncoding,
    SingularEncoding,
)
from repro.metrics import QErrorSummary, qerror, summarize
from repro.models import (
    GradientBoostingRegressor,
    MSCNModel,
    NeuralNetRegressor,
)
from repro.sql import Op, Query, SimplePredicate, desugar_strings, parse_query
from repro.workloads import LabeledQuery, Workload

__version__ = "1.0.0"

__all__ = [
    "config",
    # data
    "Column", "Table", "Schema", "ForeignKey",
    # sql
    "Op", "Query", "SimplePredicate", "parse_query", "desugar_strings",
    # featurization
    "Featurizer", "SingularEncoding", "RangeEncoding",
    "ConjunctiveEncoding", "DisjunctionEncoding",
    "EquiDepthConjunctiveEncoding", "JoinQueryFeaturizer",
    # models
    "GradientBoostingRegressor", "NeuralNetRegressor", "MSCNModel",
    # estimators
    "CardinalityEstimator", "LearnedEstimator", "GlobalLearnedEstimator",
    "LocalModelEnsemble", "HybridEstimator", "GroupCountEstimator",
    "PostgresEstimator", "SamplingEstimator",
    "TrueCardinalityEstimator",
    # workloads & metrics
    "LabeledQuery", "Workload", "qerror", "QErrorSummary", "summarize",
]
