"""Equi-depth partitioning for Universal Conjunction Encoding.

Section 3.2 notes that the partition count interacts with skew: "For
attributes with high skew, a larger n may be necessary.  [...] One could
also apply sophisticated partitioning techniques from the field of
histograms, like v-optimal and q-optimal partitioning."

This module implements the classic member of that family: **equi-depth**
partitions, whose boundaries are value quantiles, so every partition
covers (roughly) the same number of *rows* instead of the same slice of
the value *domain*.  On skewed attributes this spends resolution where
the data lives; the equal-width layout of the base class wastes most
partitions on empty domain regions.

Everything else of Algorithm 1 — the ``{0, ½, 1}`` alphabet, operator
handling, per-attribute selectivity appendix, Algorithm 2 merging via
:class:`~repro.featurize.disjunction.DisjunctionEncoding` — is inherited
unchanged; only the value-to-partition geometry differs.
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.data.stats import TableStats
from repro.data.table import Table
from repro.featurize.conjunctive import ConjunctiveEncoding

__all__ = ["EquiDepthConjunctiveEncoding"]


class EquiDepthConjunctiveEncoding(ConjunctiveEncoding):
    """Universal Conjunction Encoding over quantile-boundary partitions."""

    name = "conjunctive-equidepth"

    def __init__(self, table: Table, attributes=None,
                 max_partitions: int = config.DEFAULT_PARTITIONS,
                 attr_selectivity: bool = True) -> None:
        if isinstance(table, TableStats):
            raise TypeError(
                "equi-depth partitioning needs column values, not a "
                "statistics snapshot; fit it against the Table"
            )
        super().__init__(table, attributes, max_partitions=max_partitions,
                         attr_selectivity=attr_selectivity)
        # Per-attribute *upper* boundaries of partitions 0..n_A-2 (the
        # last partition is unbounded above): value v belongs to the
        # first partition whose boundary is >= v.
        self._boundaries: dict[str, np.ndarray] = {}
        # The single distinct value per partition, for exact attributes.
        self._uniques: dict[str, np.ndarray] = {}
        for attr in self.attributes:
            values = table.column(attr).values
            uniques = np.unique(values)
            n_attr = min(self._max_partitions, uniques.size)
            self._partition_counts[attr] = max(n_attr, 1)
            self._exact[attr] = uniques.size <= n_attr
            if self._exact[attr]:
                # One partition per distinct value; boundaries are the
                # values themselves (minus the last).
                self._boundaries[attr] = uniques[:-1]
                self._uniques[attr] = uniques
            else:
                quantiles = np.linspace(0.0, 1.0, n_attr + 1)[1:-1]
                edges = np.quantile(values, quantiles, method="inverted_cdf")
                # Collapsed edges (heavy skew) would create empty
                # partitions; dedupe and accept a smaller n_attr.
                edges = np.unique(edges)
                self._boundaries[attr] = edges
                self._partition_counts[attr] = edges.size + 1
        # The loop above changes partition counts; rebuild the columnar
        # geometry the batch encode kernel indexes.
        self._refresh_partition_arrays()

    def partition_index(self, attribute: str, value: float) -> int:
        """Quantile-boundary partition index (replaces the linear formula).

        Values outside the observed domain map to the virtual indices
        ``-1`` / ``n_A`` exactly like the base class.
        """
        stats = self.stats(attribute)
        if value < stats.min_value:
            return -1
        if value > stats.max_value:
            return self._partition_counts[attribute]
        boundaries = self._boundaries[attribute]
        return int(np.searchsorted(boundaries, value, side="left"))

    def _partition_value(self, attribute: str, idx: int) -> float:
        """The distinct value an exact equi-depth partition covers."""
        return float(self._uniques[attribute][idx])

    def _partition_indices(self, attr_ids: np.ndarray,
                           values: np.ndarray) -> np.ndarray:
        """Vectorized quantile-boundary partition lookup."""
        idx = np.empty(values.size, dtype=np.int64)
        for attr_id in np.unique(attr_ids):
            selected = attr_ids == attr_id
            boundaries = self._boundaries[self.attributes[attr_id]]
            idx[selected] = np.searchsorted(
                boundaries, values[selected], side="left")
        mins = self._min_values[attr_ids]
        idx[values < mins] = -1
        above = values > self._max_values[attr_ids]
        idx[above] = self._counts[attr_ids][above]
        return idx

    def _partition_values(self, attr_ids: np.ndarray,
                          indices: np.ndarray) -> np.ndarray:
        """Vectorized distinct-value lookup for exact partitions."""
        out = np.empty(indices.size, dtype=np.float64)
        for attr_id in np.unique(attr_ids):
            selected = attr_ids == attr_id
            uniques = self._uniques[self.attributes[attr_id]]
            out[selected] = uniques[indices[selected]]
        return out

    def get_config(self) -> dict:
        config_dict = super().get_config()
        config_dict["partitioning"] = "equi-depth"
        return config_dict

    # ------------------------------------------------------------------
    # Persistence (see repro.persistence)
    # ------------------------------------------------------------------

    def fitted_state_arrays(self) -> dict[str, np.ndarray]:
        """Data-derived geometry arrays for persistence.

        The quantile boundaries (and, for exact attributes, the distinct
        values) come from the fitted table's column values, which a
        statistics snapshot cannot reproduce — so they ride along in the
        ``.npz`` artifact and :meth:`from_fitted_state` restores them
        without the data.
        """
        arrays: dict[str, np.ndarray] = {}
        for attr in self.attributes:
            arrays[f"boundaries/{attr}"] = self._boundaries[attr]
            if self._exact[attr]:
                arrays[f"uniques/{attr}"] = self._uniques[attr]
        return arrays

    @classmethod
    def from_fitted_state(cls, snapshot: TableStats, attributes,
                          config: dict, arrays: dict
                          ) -> "EquiDepthConjunctiveEncoding":
        """Rebuild a fitted instance from a snapshot plus state arrays.

        Inverse of :meth:`fitted_state_arrays` +
        :meth:`~repro.featurize.base.Featurizer.get_config`: the
        constructor is bypassed (it needs column values) and the
        partition geometry is restored verbatim, so the reconstructed
        featurizer encodes bitwise-identically to the saved one.
        """
        config = {k: v for k, v in config.items() if k != "partitioning"}
        restored = cls.__new__(cls)
        # Initialise the equal-width substrate from the snapshot, then
        # overwrite its geometry with the persisted quantile boundaries.
        ConjunctiveEncoding.__init__(restored, snapshot, attributes,
                                     **config)
        restored._boundaries = {}
        restored._uniques = {}
        for attr in restored.attributes:
            key = f"boundaries/{attr}"
            if key not in arrays:
                raise KeyError(f"featurizer/{key}")
            boundaries = np.asarray(arrays[key], dtype=np.float64)
            restored._boundaries[attr] = boundaries
            uniques = arrays.get(f"uniques/{attr}")
            if uniques is not None:
                uniques = np.asarray(uniques, dtype=np.float64)
                restored._uniques[attr] = uniques
                restored._exact[attr] = True
                restored._partition_counts[attr] = max(uniques.size, 1)
            else:
                restored._exact[attr] = False
                restored._partition_counts[attr] = boundaries.size + 1
        restored._refresh_partition_arrays()
        return restored
