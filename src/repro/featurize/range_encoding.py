"""Range Predicate Encoding (paper label: ``range``; Section 3.1).

Per attribute, the feature vector holds one *closed range* ``[lo, hi]``
normalised to ``[0, 1]``.  All point and range predicate types fold into
closed ranges: ``A = 5 -> [5, 5]``, ``A <= 5 -> [min(A), 5]``, and strict
bounds tighten by one step on integer domains (``A < 5 -> [min(A), 4]``).
Multiple AND-connected bounds on one attribute intersect naturally, so the
workloads' closed-range predicate pairs (``A >= lo AND A <= hi``) are
encoded losslessly.

**Deliberate information loss**: ``<>`` (not-equal) predicates have no
representation in a single range and are dropped — this causes the 99 %
error spike at three predicates per attribute the paper observes in
Figure 3.  Disjunctions raise
:class:`~repro.featurize.base.LosslessnessError`.

Attributes without predicates encode the full range ``[0, 1]``; an
unsatisfiable (empty) intersection encodes as the inverted range
``[1, 0]``, which is distinguishable from every satisfiable query.
"""

from __future__ import annotations

import numpy as np

from repro.featurize.base import Featurizer, LosslessnessError
from repro.featurize.batch import (
    OP_EQ,
    OP_GE,
    OP_GT,
    OP_LE,
    OP_LT,
    OP_NE,
    PredicateBatch,
)
from repro.featurize.selectivity import fold_conjunction
from repro.sql.ast import BoolExpr, Op, is_conjunctive, iter_simple_predicates

__all__ = ["RangeEncoding"]

#: Entries per attribute: normalised lower and upper bound.
_ENTRIES_PER_ATTRIBUTE = 2


class RangeEncoding(Featurizer):
    """Range Predicate Encoding: one normalised closed range per attribute."""

    name = "range"
    #: The vectorized encode consumes only the columnar batch arrays.
    encode_uses_exprs = False

    @property
    def feature_length(self) -> int:
        """Dimension of the produced feature vectors."""
        return _ENTRIES_PER_ATTRIBUTE * len(self.attributes)

    def _disjunction_error(self, expr: BoolExpr) -> LosslessnessError:
        return LosslessnessError(
            "Range Predicate Encoding cannot represent disjunctions; "
            f"got: {expr.to_sql()}"
        )

    def _featurize_expr(self, expr: BoolExpr | None) -> np.ndarray:
        vector = np.empty(self.feature_length, dtype=np.float64)
        # Default: the full domain [0, 1] for every attribute.
        vector[0::2] = 0.0
        vector[1::2] = 1.0
        if expr is None:
            return vector
        if not is_conjunctive(expr):
            raise self._disjunction_error(expr)
        per_attribute: dict[str, list] = {}
        for predicate in iter_simple_predicates(expr):
            attr = self._resolve(predicate)
            # <> predicates cannot be folded into a single closed range;
            # dropping them is this QFT's defining information loss.
            if predicate.op is Op.NE:
                continue
            per_attribute.setdefault(attr, []).append(predicate)
        offsets = {attr: i * _ENTRIES_PER_ATTRIBUTE
                   for i, attr in enumerate(self.attributes)}
        for attr, predicates in per_attribute.items():
            stats = self.stats(attr)
            interval = fold_conjunction(predicates, stats)
            base = offsets[attr]
            if interval.is_empty:
                vector[base] = 1.0
                vector[base + 1] = 0.0
            else:
                vector[base] = stats.normalize(interval.lo)
                vector[base + 1] = stats.normalize(interval.hi)
        return vector

    def _featurize_compiled(self, batch: PredicateBatch) -> np.ndarray:
        matrix = np.empty((batch.n_queries, self.feature_length),
                          dtype=np.float64)
        matrix[:, 0::2] = 0.0
        matrix[:, 1::2] = 1.0
        # <> predicates are dropped before folding (this QFT's defining
        # information loss); attributes constrained only by <> keep the
        # full-domain default, exactly like the scalar path.
        keep = batch.op_code != OP_NE
        if not np.any(keep):
            return matrix
        queries = batch.query_index[keep]
        attrs = batch.attr_index[keep]
        ops = batch.op_code[keep]
        values = batch.value[keep]

        # Group predicates by (query, attribute) and fold each group's
        # conjunction into one closed interval with grouped max/min.
        key = queries * len(self.attributes) + attrs
        order = np.argsort(key, kind="stable")
        key, queries, attrs, ops, values = (
            x[order] for x in (key, queries, attrs, ops, values))
        starts = np.flatnonzero(
            np.concatenate(([True], key[1:] != key[:-1])))

        steps = self._steps[attrs]
        lo_cand = np.full(values.shape, -np.inf)
        hi_cand = np.full(values.shape, np.inf)
        point = ops == OP_EQ
        lo_cand[point] = values[point]
        hi_cand[point] = values[point]
        lower = ops == OP_GE
        lo_cand[lower] = values[lower]
        lower = ops == OP_GT
        lo_cand[lower] = values[lower] + steps[lower]
        upper = ops == OP_LE
        hi_cand[upper] = values[upper]
        upper = ops == OP_LT
        hi_cand[upper] = values[upper] - steps[upper]

        group_attrs = attrs[starts]
        group_queries = queries[starts]
        lo = np.maximum(np.maximum.reduceat(lo_cand, starts),
                        self._min_values[group_attrs])
        hi = np.minimum(np.minimum.reduceat(hi_cand, starts),
                        self._max_values[group_attrs])
        empty = lo > hi
        lo_norm = self._normalize_values(group_attrs, lo)
        hi_norm = self._normalize_values(group_attrs, hi)
        lo_norm[empty] = 1.0
        hi_norm[empty] = 0.0
        base = group_attrs * _ENTRIES_PER_ATTRIBUTE
        matrix[group_queries, base] = lo_norm
        matrix[group_queries, base + 1] = hi_norm
        return matrix
