"""Range Predicate Encoding (paper label: ``range``; Section 3.1).

Per attribute, the feature vector holds one *closed range* ``[lo, hi]``
normalised to ``[0, 1]``.  All point and range predicate types fold into
closed ranges: ``A = 5 -> [5, 5]``, ``A <= 5 -> [min(A), 5]``, and strict
bounds tighten by one step on integer domains (``A < 5 -> [min(A), 4]``).
Multiple AND-connected bounds on one attribute intersect naturally, so the
workloads' closed-range predicate pairs (``A >= lo AND A <= hi``) are
encoded losslessly.

**Deliberate information loss**: ``<>`` (not-equal) predicates have no
representation in a single range and are dropped — this causes the 99 %
error spike at three predicates per attribute the paper observes in
Figure 3.  Disjunctions raise
:class:`~repro.featurize.base.LosslessnessError`.

Attributes without predicates encode the full range ``[0, 1]``; an
unsatisfiable (empty) intersection encodes as the inverted range
``[1, 0]``, which is distinguishable from every satisfiable query.
"""

from __future__ import annotations

import numpy as np

from repro.featurize.base import Featurizer, LosslessnessError
from repro.featurize.selectivity import fold_conjunction
from repro.sql.ast import BoolExpr, Op, is_conjunctive, iter_simple_predicates

__all__ = ["RangeEncoding"]

#: Entries per attribute: normalised lower and upper bound.
_ENTRIES_PER_ATTRIBUTE = 2


class RangeEncoding(Featurizer):
    """Range Predicate Encoding: one normalised closed range per attribute."""

    name = "range"

    @property
    def feature_length(self) -> int:
        """Dimension of the produced feature vectors."""
        return _ENTRIES_PER_ATTRIBUTE * len(self.attributes)

    def _featurize_expr(self, expr: BoolExpr | None) -> np.ndarray:
        vector = np.empty(self.feature_length, dtype=np.float64)
        # Default: the full domain [0, 1] for every attribute.
        vector[0::2] = 0.0
        vector[1::2] = 1.0
        if expr is None:
            return vector
        if not is_conjunctive(expr):
            raise LosslessnessError(
                "Range Predicate Encoding cannot represent disjunctions; "
                f"got: {expr.to_sql()}"
            )
        per_attribute: dict[str, list] = {}
        for predicate in iter_simple_predicates(expr):
            attr = self._resolve(predicate)
            # <> predicates cannot be folded into a single closed range;
            # dropping them is this QFT's defining information loss.
            if predicate.op is Op.NE:
                continue
            per_attribute.setdefault(attr, []).append(predicate)
        offsets = {attr: i * _ENTRIES_PER_ATTRIBUTE
                   for i, attr in enumerate(self.attributes)}
        for attr, predicates in per_attribute.items():
            stats = self.stats(attr)
            interval = fold_conjunction(predicates, stats)
            base = offsets[attr]
            if interval.is_empty:
                vector[base] = 1.0
                vector[base + 1] = 0.0
            else:
                vector[base] = stats.normalize(interval.lo)
                vector[base + 1] = stats.normalize(interval.hi)
        return vector
