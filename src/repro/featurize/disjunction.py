"""Limited Disjunction Encoding (paper label: ``complex``; Section 3.3).

The first QFT designed for queries mixing conjunctions and disjunctions.
Its scope is the class of **mixed queries** (Definition 3.3): a
conjunction of per-attribute *compound predicates*, each an arbitrary
AND/OR combination of simple predicates over a single attribute.

Algorithm 2: each compound predicate is brought into disjunctive form;
every disjunction branch (a conjunction) is featurized with Universal
Conjunction Encoding's per-attribute routine; the branch vectors are then
merged by the **entry-wise maximum** — mirroring that additional
disjunctions can only make a query less selective.  The appended
per-attribute selectivity estimate participates in the same max-merge.

For purely conjunctive queries the output is identical to Universal
Conjunction Encoding (the paper relies on this in Table 1: "the feature
vectors of Limited Disjunction Encoding and Universal Conjunction
Encoding are equal" on JOB-light).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.featurize.batch import OP_CODES, PredicateBatch
from repro.featurize.conjunctive import ConjunctiveEncoding
from repro.sql.ast import BoolExpr, to_compound_form

__all__ = ["DisjunctionEncoding"]


class DisjunctionEncoding(ConjunctiveEncoding):
    """Limited Disjunction Encoding (Algorithm 2).

    Accepts every query Universal Conjunction Encoding accepts, plus mixed
    queries per Definition 3.3.  Queries outside that class (a disjunction
    spanning several attributes) raise
    :class:`~repro.sql.ast.UnsupportedQueryError`.

    ``merge`` selects how disjunction branches combine: ``"max"`` is the
    paper's Algorithm 2 (entry-wise maximum); ``"sum"`` is an ablation
    alternative (entry-wise sum clipped to 1) that over-counts partitions
    covered by several branches — our ablation benchmark quantifies the
    difference.
    """

    name = "complex"

    def __init__(self, table, attributes=None, max_partitions=None,
                 attr_selectivity: bool = True, merge: str = "max") -> None:
        from repro import config as _config

        if merge not in ("max", "sum"):
            raise ValueError(f"merge must be 'max' or 'sum', got {merge!r}")
        if max_partitions is None:
            max_partitions = _config.DEFAULT_PARTITIONS
        super().__init__(table, attributes, max_partitions=max_partitions,
                         attr_selectivity=attr_selectivity)
        self._merge = merge

    def get_config(self) -> dict:
        config = super().get_config()
        config["merge"] = self._merge
        return config

    def _merge_branches(self, merged: np.ndarray, branch: np.ndarray) -> None:
        if self._merge == "max":
            # Entry-wise max: disjunction can only widen (Alg. 2, l. 6).
            np.maximum(merged, branch, out=merged)
        else:
            merged += branch
            np.minimum(merged, 1.0, out=merged)

    def _featurize_expr(self, expr: BoolExpr | None) -> np.ndarray:
        if expr is None:
            return super()._featurize_expr(None)
        # Normalising into Definition 3.3 form validates the query class
        # and yields, per attribute, the disjunction of conjunctions.
        compound = to_compound_form(expr)
        segments = []
        for attr in self.attributes:
            branches = compound.get(attr)
            if not branches:
                segments.append(self.attribute_segment(attr, ()))
                continue
            merged = self.attribute_segment(attr, branches[0])
            for branch in branches[1:]:
                self._merge_branches(merged, self.attribute_segment(attr, branch))
            segments.append(merged)
        return np.concatenate(segments)

    def _compile_exprs(self, exprs: Sequence[BoolExpr | None]
                       ) -> PredicateBatch:
        """Compile mixed queries, tagging disjunction-branch ids.

        Queries are normalised into Definition 3.3 form exactly like the
        scalar path, including its key-matching behaviour: compound
        predicates whose attribute is not verbatim in the feature space
        (e.g. table-qualified names) are skipped.
        """
        attr_ids = {name: i for i, name in enumerate(self._attributes)}
        query_index: list[int] = []
        attr_index: list[int] = []
        branch_index: list[int] = []
        op_code: list[int] = []
        value: list[float] = []
        for qi, expr in enumerate(exprs):
            if expr is None:
                continue
            compound = to_compound_form(expr)
            for attr, attr_id in attr_ids.items():
                branches = compound.get(attr)
                if not branches:
                    continue
                for bi, branch in enumerate(branches):
                    for predicate in branch:
                        query_index.append(qi)
                        attr_index.append(attr_id)
                        branch_index.append(bi)
                        op_code.append(OP_CODES[predicate.op])
                        value.append(float(predicate.value))
        return PredicateBatch.from_lists(
            n_queries=len(exprs), attributes=self._attributes,
            query_index=query_index, attr_index=attr_index,
            branch_index=branch_index, op_code=op_code,
            value=value, exprs=exprs,
        )

    def _merge_branch_rows(self, rows: np.ndarray,
                           starts: np.ndarray) -> np.ndarray:
        if self._merge == "max":
            return super()._merge_branch_rows(rows, starts)
        # Entry-wise sum clipped to 1.  Accumulated branch-by-branch (not
        # reduceat, which does not fix the association order of float
        # addition) so the result matches the scalar merge bitwise.
        ends = np.append(starts[1:], rows.shape[0])
        sizes = ends - starts
        merged = rows[starts].copy()
        for rank in range(1, int(sizes.max())):
            has = np.flatnonzero(sizes > rank)
            merged[has] += rows[starts[has] + rank]
            np.minimum(merged, 1.0, out=merged)
        return merged
