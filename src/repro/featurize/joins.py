"""Featurization of queries containing joins (Section 2.1.2 + Section 4).

Two composition patterns adapt any single-table QFT to join queries:

* :class:`JoinQueryFeaturizer` — used by **local models**: fitted to one
  connected sub-schema, it concatenates a per-table QFT segment for every
  table in the sub-schema and routes each table's selection predicates to
  its segment.  Join-key columns are excluded from the feature space
  (queries never filter on them; joins follow key/foreign-key edges).
* :class:`TableSetVector` / :class:`GlobalJoinFeaturizer` — used by
  **global models**: a binary vector marks which tables a query joins
  ("for tables 1, 2, 3 and 4, the binary vector 1101 corresponds to a
  query where tables 1, 2, and 4 are joined"), concatenated with QFT
  segments for *all* tables of the schema.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.data.schema import Schema
from repro.data.table import Table
from repro.featurize.base import Featurizer
from repro.sql.ast import Query
from repro.sql.executor import per_table_selections

__all__ = ["JoinQueryFeaturizer", "TableSetVector", "GlobalJoinFeaturizer",
           "FeaturizerFactory", "join_key_columns", "predicate_columns"]

#: A factory building a fitted QFT for one table over given attributes.
FeaturizerFactory = Callable[[Table, Sequence[str]], Featurizer]


def join_key_columns(schema: Schema) -> dict[str, set[str]]:
    """Columns per table that participate in any foreign-key edge."""
    keys: dict[str, set[str]] = {name: set() for name in schema.table_names}
    for fk in schema.foreign_keys:
        keys[fk.child_table].add(fk.child_column)
        keys[fk.parent_table].add(fk.parent_column)
    return keys


def predicate_columns(schema: Schema, table_name: str) -> list[str]:
    """The featurizable (non-join-key) columns of ``table_name``."""
    keys = join_key_columns(schema)[table_name]
    table = schema.table(table_name)
    columns = [c for c in table.column_names if c not in keys]
    if not columns:
        raise ValueError(
            f"table {table_name!r} has no non-key columns to featurize"
        )
    return columns


class JoinQueryFeaturizer:
    """Concatenated per-table featurization for one fixed sub-schema."""

    def __init__(self, schema: Schema, tables: Sequence[str],
                 factory: FeaturizerFactory) -> None:
        if not tables:
            raise ValueError("sub-schema must contain at least one table")
        if not schema.is_connected_subschema(tables):
            raise ValueError(
                f"tables {tuple(tables)} do not form a connected sub-schema"
            )
        self._schema = schema
        self._tables = tuple(tables)
        self._featurizers: dict[str, Featurizer] = {
            name: factory(schema.table(name), predicate_columns(schema, name))
            for name in self._tables
        }

    @property
    def tables(self) -> tuple[str, ...]:
        """Tables of the sub-schema, in segment order."""
        return self._tables

    @property
    def feature_length(self) -> int:
        """Total feature dimension (sum of per-table segments)."""
        return sum(f.feature_length for f in self._featurizers.values())

    def featurizer_for(self, table: str) -> Featurizer:
        """The per-table featurizer of ``table``."""
        return self._featurizers[table]

    def featurize(self, query: Query) -> np.ndarray:
        """Encode a join query over exactly this sub-schema."""
        if set(query.tables) != set(self._tables):
            raise ValueError(
                f"query joins {query.tables} but this featurizer covers "
                f"{self._tables}"
            )
        selections = per_table_selections(query, self._schema)
        segments = [
            self._featurizers[table].featurize(selections[table])
            for table in self._tables
        ]
        return np.concatenate(segments)

    def featurize_batch(self, queries: Iterable[Query]) -> np.ndarray:
        """Encode many queries into a ``(n, feature_length)`` matrix.

        Routes each table's selection column to that table's QFT batch
        pipeline, so the per-table compile → encode kernels see the whole
        batch at once; the segments are then stacked side by side.
        """
        queries = list(queries)
        if not queries:
            return np.empty((0, self.feature_length), dtype=np.float64)
        for query in queries:
            if set(query.tables) != set(self._tables):
                raise ValueError(
                    f"query joins {query.tables} but this featurizer covers "
                    f"{self._tables}"
                )
        selections = [per_table_selections(q, self._schema) for q in queries]
        segments = [
            self._featurizers[table].featurize_batch(
                [selection[table] for selection in selections])
            for table in self._tables
        ]
        return np.hstack(segments)

    def __repr__(self) -> str:
        return f"JoinQueryFeaturizer(tables={self._tables}, d={self.feature_length})"


class TableSetVector:
    """Binary table-presence vector for global models (Section 2.1.2)."""

    def __init__(self, schema: Schema) -> None:
        self._tables = tuple(schema.table_names)

    @property
    def feature_length(self) -> int:
        """One entry per table of the schema."""
        return len(self._tables)

    def featurize(self, query: Query) -> np.ndarray:
        """Encode which tables the query joins as a binary vector."""
        vector = np.zeros(len(self._tables), dtype=np.float64)
        for table in query.tables:
            try:
                vector[self._tables.index(table)] = 1.0
            except ValueError:
                raise KeyError(
                    f"query table {table!r} not in schema tables {self._tables}"
                ) from None
        return vector

    def featurize_batch(self, queries: Iterable[Query]) -> np.ndarray:
        """Encode many queries' table bitmaps as an ``(n, m)`` matrix."""
        queries = list(queries)
        matrix = np.zeros((len(queries), len(self._tables)),
                          dtype=np.float64)
        for row, query in enumerate(queries):
            for table in query.tables:
                try:
                    matrix[row, self._tables.index(table)] = 1.0
                except ValueError:
                    raise KeyError(
                        f"query table {table!r} not in schema tables "
                        f"{self._tables}"
                    ) from None
        return matrix


class GlobalJoinFeaturizer:
    """Global-model featurization: table bitmap + all-table QFT segments.

    Tables absent from a query contribute their no-predicate encoding;
    the bitmap disambiguates absent tables from unfiltered joined ones.
    """

    def __init__(self, schema: Schema, factory: FeaturizerFactory) -> None:
        self._schema = schema
        self._table_vector = TableSetVector(schema)
        self._featurizers: dict[str, Featurizer] = {
            name: factory(schema.table(name), predicate_columns(schema, name))
            for name in schema.table_names
        }

    @property
    def feature_length(self) -> int:
        """Table bitmap plus the QFT segments of every schema table."""
        return (self._table_vector.feature_length
                + sum(f.feature_length for f in self._featurizers.values()))

    def featurize(self, query: Query) -> np.ndarray:
        """Encode a query over any sub-schema of the schema."""
        selections = per_table_selections(query, self._schema)
        segments = [self._table_vector.featurize(query)]
        for table, featurizer in self._featurizers.items():
            segments.append(featurizer.featurize(selections.get(table)))
        return np.concatenate(segments)

    def featurize_batch(self, queries: Iterable[Query]) -> np.ndarray:
        """Encode many queries into a ``(n, feature_length)`` matrix.

        Every schema table's QFT encodes the whole batch in one compile →
        encode pass (absent tables contribute their no-predicate column),
        and the segments are stacked after the table bitmap.
        """
        queries = list(queries)
        if not queries:
            return np.empty((0, self.feature_length), dtype=np.float64)
        selections = [per_table_selections(q, self._schema) for q in queries]
        segments = [self._table_vector.featurize_batch(queries)]
        for table, featurizer in self._featurizers.items():
            segments.append(featurizer.featurize_batch(
                [selection.get(table) for selection in selections]))
        return np.hstack(segments)
