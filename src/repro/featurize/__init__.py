"""Query featurization techniques (QFTs) — the paper's core contribution.

A QFT encodes a query into a fixed-length numeric *feature vector* that
serves as input to a machine-learning cardinality model.  This package
implements the four QFTs the paper evaluates (Section 5 "Abbreviations"):

====================  =============================  ======================
paper label           class                          scope
====================  =============================  ======================
``simple``            :class:`SingularEncoding`      one predicate/attribute
``range``             :class:`RangeEncoding`         one range/attribute
``conjunctive``       :class:`ConjunctiveEncoding`   arbitrary conjunctions
``complex``           :class:`DisjunctionEncoding`   mixed queries (Def 3.3)
====================  =============================  ======================

plus the Section 6 extensions (string-prefix buckets, GROUP BY vectors)
and the join-query composition layer used by local and global models.
"""

from repro.featurize.base import Featurizer, LosslessnessError
from repro.featurize.batch import CompiledPlan, PredicateBatch, query_shape
from repro.featurize.conjunctive import ConjunctiveEncoding
from repro.featurize.disjunction import DisjunctionEncoding
from repro.featurize.equidepth import EquiDepthConjunctiveEncoding
from repro.featurize.joins import (
    GlobalJoinFeaturizer,
    JoinQueryFeaturizer,
    TableSetVector,
)
from repro.featurize.range_encoding import RangeEncoding
from repro.featurize.singular import SingularEncoding

__all__ = [
    "Featurizer",
    "LosslessnessError",
    "PredicateBatch",
    "CompiledPlan",
    "query_shape",
    "SingularEncoding",
    "RangeEncoding",
    "ConjunctiveEncoding",
    "DisjunctionEncoding",
    "EquiDepthConjunctiveEncoding",
    "JoinQueryFeaturizer",
    "GlobalJoinFeaturizer",
    "TableSetVector",
    "BY_PAPER_LABEL",
]

#: Paper plot label -> featurizer class (Section 5 "Abbreviations").
BY_PAPER_LABEL = {
    "simple": SingularEncoding,
    "range": RangeEncoding,
    "conjunctive": ConjunctiveEncoding,
    "complex": DisjunctionEncoding,
}
