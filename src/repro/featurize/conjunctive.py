"""Universal Conjunction Encoding (paper label: ``conjunctive``; Section 3.2).

The data-driven QFT of Algorithm 1: the domain of each attribute ``A`` is
discretised into ``n_A = min(n, max(A) - min(A) + 1)`` partitions and each
partition owns one feature-vector entry whose categorical value states
whether the partition satisfies the query's predicates on ``A``:

* ``1``  — every value in the partition qualifies,
* ``1/2`` — some values qualify (a predicate boundary falls inside),
* ``0``  — no value qualifies.

Attributes without predicates stay all-one.  This supports *arbitrarily
many* AND-connected simple predicates per attribute, because each
predicate can only lower entries (conjunctions only grow more selective).
By Lemma 3.2 the encoding converges to a lossless featurization as ``n``
grows; once every partition covers a single integer value the encoding is
exact and entries take only values ``{0, 1}`` (the refinement mentioned at
the end of Section 3.2).

Optionally (Algorithm 1's gray lines, ablated in the paper's Table 3) a
*per-attribute selectivity estimate* under the uniformity assumption is
appended to each attribute's segment.
"""

from __future__ import annotations

import math

import numpy as np

from repro import config
from repro.data.table import Table
from repro.featurize.base import Featurizer, LosslessnessError
from repro.featurize.selectivity import fold_conjunction, uniform_selectivity
from repro.sql.ast import (
    BoolExpr,
    Op,
    SimplePredicate,
    is_conjunctive,
    iter_simple_predicates,
)

__all__ = ["ConjunctiveEncoding"]

_HALF = 0.5


class ConjunctiveEncoding(Featurizer):
    """Universal Conjunction Encoding (Algorithm 1).

    Parameters
    ----------
    table:
        Table whose attribute statistics define the feature space.
    attributes:
        Optional subset/ordering of attributes (defaults to all columns).
    max_partitions:
        Maximum per-attribute entries ``n`` (paper default 64; the sweep in
        Table 5 varies this).
    attr_selectivity:
        Whether to append the per-attribute uniformity selectivity
        estimate (the gray lines of Algorithm 1; ablated in Table 3).
    """

    name = "conjunctive"

    def __init__(self, table: Table, attributes=None,
                 max_partitions: int = config.DEFAULT_PARTITIONS,
                 attr_selectivity: bool = True) -> None:
        super().__init__(table, attributes)
        if max_partitions < 1:
            raise ValueError(f"max_partitions must be >= 1, got {max_partitions}")
        self._max_partitions = max_partitions
        self._attr_selectivity = attr_selectivity
        self._partition_counts: dict[str, int] = {}
        self._exact: dict[str, bool] = {}
        for attr in self.attributes:
            stats = self.stats(attr)
            if stats.is_integral:
                n_attr = min(max_partitions, int(stats.domain_size))
            else:
                n_attr = max_partitions
            n_attr = max(n_attr, 1)
            self._partition_counts[attr] = n_attr
            # One partition per integer value -> the encoding is exact and
            # entries never need the "some values qualify" 1/2 state.
            self._exact[attr] = stats.is_integral and n_attr >= stats.domain_size

    def get_config(self) -> dict:
        return {"max_partitions": self._max_partitions,
                "attr_selectivity": self._attr_selectivity}

    @property
    def max_partitions(self) -> int:
        """The configured maximum per-attribute partition count ``n``."""
        return self._max_partitions

    @property
    def attr_selectivity(self) -> bool:
        """Whether per-attribute selectivity estimates are appended."""
        return self._attr_selectivity

    def partitions(self, attribute: str) -> int:
        """Number of partitions ``n_A`` used for ``attribute``."""
        return self._partition_counts[attribute]

    def is_exact(self, attribute: str) -> bool:
        """True iff every partition of ``attribute`` covers one value."""
        return self._exact[attribute]

    @property
    def _segment_extra(self) -> int:
        return 1 if self._attr_selectivity else 0

    @property
    def feature_length(self) -> int:
        """Dimension of the produced feature vectors."""
        return sum(self._partition_counts[a] + self._segment_extra
                   for a in self.attributes)

    def attribute_slices(self) -> dict[str, slice]:
        """Map each attribute to its segment of the feature vector."""
        slices: dict[str, slice] = {}
        offset = 0
        for attr in self.attributes:
            width = self._partition_counts[attr] + self._segment_extra
            slices[attr] = slice(offset, offset + width)
            offset += width
        return slices

    def partition_index(self, attribute: str, value: float) -> int:
        """Zero-based partition index of ``value`` (Algorithm 1, line 4).

        Values outside the observed domain map to the *virtual* indices
        ``-1`` (below the minimum) and ``n_A`` (above the maximum), which
        the per-operator logic interprets as "no partition affected" /
        "all partitions affected" respectively.
        """
        stats = self.stats(attribute)
        if value < stats.min_value:
            return -1
        if value > stats.max_value:
            return self._partition_counts[attribute]
        n_attr = self._partition_counts[attribute]
        idx = math.floor(
            (value - stats.min_value) / stats.domain_size * n_attr
        )
        return min(max(idx, 0), n_attr - 1)

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------

    def _featurize_expr(self, expr: BoolExpr | None) -> np.ndarray:
        if expr is not None and not is_conjunctive(expr):
            raise LosslessnessError(
                "Universal Conjunction Encoding handles conjunctions only; "
                f"got: {expr.to_sql()} — use Limited Disjunction Encoding "
                "for mixed queries"
            )
        per_attribute: dict[str, list[SimplePredicate]] = {}
        if expr is not None:
            for predicate in iter_simple_predicates(expr):
                attr = self._resolve(predicate)
                per_attribute.setdefault(attr, []).append(predicate)
        segments = [
            self.attribute_segment(attr, per_attribute.get(attr, ()))
            for attr in self.attributes
        ]
        return np.concatenate(segments)

    def attribute_segment(self, attribute: str,
                          predicates) -> np.ndarray:
        """Featurize one attribute's conjunction into its vector segment.

        This is the per-attribute body of Algorithm 1, exposed separately
        because Limited Disjunction Encoding (Algorithm 2) calls it once
        per disjunction branch before merging.
        """
        predicates = list(predicates)
        n_attr = self._partition_counts[attribute]
        exact = self._exact[attribute]
        entries = np.ones(n_attr, dtype=np.float64)
        for predicate in predicates:
            self._apply(entries, attribute, predicate, exact)
        if not self._attr_selectivity:
            return entries
        stats = self.stats(attribute)
        if predicates:
            interval = fold_conjunction(predicates, stats)
            selectivity = uniform_selectivity(interval, stats)
        else:
            selectivity = 1.0
        return np.concatenate([entries, [selectivity]])

    def _partition_value(self, attribute: str, idx: int) -> float:
        """The single value an *exact* partition covers.

        Only called when :meth:`is_exact` holds; equal-width exact
        partitions map index ``i`` to the integer ``min(A) + i``.
        Subclasses with other geometries (equi-depth) override this.
        """
        return self.stats(attribute).min_value + idx

    def _apply(self, entries: np.ndarray, attribute: str,
               predicate: SimplePredicate, exact: bool) -> None:
        """Lower entries according to one predicate (Algorithm 1, lines 5-16).

        For exact partitions the single covered value is known, so the
        boundary partition resolves to 0 or 1 instead of ½ (the
        refinement at the end of Section 3.2).
        """
        n_attr = entries.size
        idx = self.partition_index(attribute, predicate.value)
        in_domain = 0 <= idx < n_attr
        value = float(predicate.value)
        op = predicate.op
        # The single value of the boundary partition, if known exactly.
        u = (self._partition_value(attribute, idx)
             if exact and in_domain else None)

        if op is Op.EQ:
            # Entries may only decrease (Algorithm 1, line 5): a previous
            # predicate that zeroed the matching partition must win, so a
            # contradiction like A = 0 AND A = 1 stays all-zero.
            current = entries[idx] if in_domain else 0.0
            entries[:] = 0.0
            if in_domain:
                if u is None:
                    entries[idx] = min(current, _HALF)
                elif u == value:
                    entries[idx] = current
                # else: the partition's value differs -> stays 0.
            return
        if op is Op.NE:
            if in_domain:
                if u is None:
                    entries[idx] = min(entries[idx], _HALF)
                elif u == value:
                    entries[idx] = 0.0
            return
        if op in (Op.GT, Op.GE):
            if idx >= n_attr:
                entries[:] = 0.0
                return
            if idx < 0:
                return
            entries[:idx] = 0.0
            if u is None:
                entries[idx] = min(entries[idx], _HALF)
            elif (u < value) or (op is Op.GT and u == value):
                entries[idx] = 0.0
            return
        if op in (Op.LT, Op.LE):
            if idx < 0:
                entries[:] = 0.0
                return
            if idx >= n_attr:
                return
            entries[idx + 1:] = 0.0
            if u is None:
                entries[idx] = min(entries[idx], _HALF)
            elif (u > value) or (op is Op.LT and u == value):
                entries[idx] = 0.0
            return
        raise ValueError(f"unhandled operator {op}")  # pragma: no cover
