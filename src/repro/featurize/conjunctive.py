"""Universal Conjunction Encoding (paper label: ``conjunctive``; Section 3.2).

The data-driven QFT of Algorithm 1: the domain of each attribute ``A`` is
discretised into ``n_A = min(n, max(A) - min(A) + 1)`` partitions and each
partition owns one feature-vector entry whose categorical value states
whether the partition satisfies the query's predicates on ``A``:

* ``1``  — every value in the partition qualifies,
* ``1/2`` — some values qualify (a predicate boundary falls inside),
* ``0``  — no value qualifies.

Attributes without predicates stay all-one.  This supports *arbitrarily
many* AND-connected simple predicates per attribute, because each
predicate can only lower entries (conjunctions only grow more selective).
By Lemma 3.2 the encoding converges to a lossless featurization as ``n``
grows; once every partition covers a single integer value the encoding is
exact and entries take only values ``{0, 1}`` (the refinement mentioned at
the end of Section 3.2).

Optionally (Algorithm 1's gray lines, ablated in the paper's Table 3) a
*per-attribute selectivity estimate* under the uniformity assumption is
appended to each attribute's segment.
"""

from __future__ import annotations

import math

import numpy as np

from repro import config
from repro.data.table import Table
from repro.featurize.base import Featurizer, LosslessnessError
from repro.featurize.batch import (
    OP_EQ,
    OP_GE,
    OP_GT,
    OP_LE,
    OP_LT,
    OP_NE,
    PredicateBatch,
)
from repro.featurize.selectivity import fold_conjunction, uniform_selectivity
from repro.sql.ast import (
    BoolExpr,
    Op,
    SimplePredicate,
    is_conjunctive,
    iter_simple_predicates,
)

__all__ = ["ConjunctiveEncoding"]

_HALF = 0.5


class ConjunctiveEncoding(Featurizer):
    """Universal Conjunction Encoding (Algorithm 1).

    Parameters
    ----------
    table:
        Table whose attribute statistics define the feature space.
    attributes:
        Optional subset/ordering of attributes (defaults to all columns).
    max_partitions:
        Maximum per-attribute entries ``n`` (paper default 64; the sweep in
        Table 5 varies this).
    attr_selectivity:
        Whether to append the per-attribute uniformity selectivity
        estimate (the gray lines of Algorithm 1; ablated in Table 3).
    """

    name = "conjunctive"
    #: The vectorized encode (shared with :class:`DisjunctionEncoding`)
    #: consumes only the columnar batch arrays.
    encode_uses_exprs = False

    def __init__(self, table: Table, attributes=None,
                 max_partitions: int = config.DEFAULT_PARTITIONS,
                 attr_selectivity: bool = True) -> None:
        super().__init__(table, attributes)
        if max_partitions < 1:
            raise ValueError(f"max_partitions must be >= 1, got {max_partitions}")
        self._max_partitions = max_partitions
        self._attr_selectivity = attr_selectivity
        self._partition_counts: dict[str, int] = {}
        self._exact: dict[str, bool] = {}
        for attr in self.attributes:
            stats = self.stats(attr)
            if stats.is_integral:
                n_attr = min(max_partitions, int(stats.domain_size))
            else:
                n_attr = max_partitions
            n_attr = max(n_attr, 1)
            self._partition_counts[attr] = n_attr
            # One partition per integer value -> the encoding is exact and
            # entries never need the "some values qualify" 1/2 state.
            self._exact[attr] = stats.is_integral and n_attr >= stats.domain_size
        self._refresh_partition_arrays()

    def _refresh_partition_arrays(self) -> None:
        """Rebuild the columnar partition-geometry arrays.

        Called whenever ``_partition_counts`` / ``_exact`` change (the
        equi-depth subclass recomputes them after fitting boundaries).
        The batch encode kernel indexes these by attribute id.
        """
        self._counts = np.array(
            [self._partition_counts[a] for a in self.attributes],
            dtype=np.int64)
        self._exact_flags = np.array(
            [self._exact[a] for a in self.attributes], dtype=bool)
        widths = self._counts + self._segment_extra
        self._seg_offsets = np.concatenate(
            ([0], np.cumsum(widths)[:-1]))

    def get_config(self) -> dict:
        return {"max_partitions": self._max_partitions,
                "attr_selectivity": self._attr_selectivity}

    @property
    def max_partitions(self) -> int:
        """The configured maximum per-attribute partition count ``n``."""
        return self._max_partitions

    @property
    def attr_selectivity(self) -> bool:
        """Whether per-attribute selectivity estimates are appended."""
        return self._attr_selectivity

    def partitions(self, attribute: str) -> int:
        """Number of partitions ``n_A`` used for ``attribute``."""
        return self._partition_counts[attribute]

    def is_exact(self, attribute: str) -> bool:
        """True iff every partition of ``attribute`` covers one value."""
        return self._exact[attribute]

    @property
    def _segment_extra(self) -> int:
        return 1 if self._attr_selectivity else 0

    @property
    def feature_length(self) -> int:
        """Dimension of the produced feature vectors."""
        return sum(self._partition_counts[a] + self._segment_extra
                   for a in self.attributes)

    def attribute_slices(self) -> dict[str, slice]:
        """Map each attribute to its segment of the feature vector."""
        slices: dict[str, slice] = {}
        offset = 0
        for attr in self.attributes:
            width = self._partition_counts[attr] + self._segment_extra
            slices[attr] = slice(offset, offset + width)
            offset += width
        return slices

    def partition_index(self, attribute: str, value: float) -> int:
        """Zero-based partition index of ``value`` (Algorithm 1, line 4).

        Values outside the observed domain map to the *virtual* indices
        ``-1`` (below the minimum) and ``n_A`` (above the maximum), which
        the per-operator logic interprets as "no partition affected" /
        "all partitions affected" respectively.
        """
        stats = self.stats(attribute)
        if value < stats.min_value:
            return -1
        if value > stats.max_value:
            return self._partition_counts[attribute]
        n_attr = self._partition_counts[attribute]
        idx = math.floor(
            (value - stats.min_value) / stats.domain_size * n_attr
        )
        return min(max(idx, 0), n_attr - 1)

    def _partition_indices(self, attr_ids: np.ndarray,
                           values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`partition_index` over predicate rows."""
        counts = self._counts[attr_ids]
        mins = self._min_values[attr_ids]
        scaled = (values - mins) / self._domain_sizes[attr_ids] * counts
        idx = np.floor(scaled).astype(np.int64)
        np.minimum(np.maximum(idx, 0, out=idx), counts - 1, out=idx)
        idx[values < mins] = -1
        above = values > self._max_values[attr_ids]
        idx[above] = counts[above]
        return idx

    def _partition_values(self, attr_ids: np.ndarray,
                          indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_partition_value` (exact partitions only)."""
        return self._min_values[attr_ids] + indices

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------

    def _disjunction_error(self, expr: BoolExpr) -> LosslessnessError:
        return LosslessnessError(
            "Universal Conjunction Encoding handles conjunctions only; "
            f"got: {expr.to_sql()} — use Limited Disjunction Encoding "
            "for mixed queries"
        )

    def _featurize_expr(self, expr: BoolExpr | None) -> np.ndarray:
        if expr is not None and not is_conjunctive(expr):
            raise self._disjunction_error(expr)
        per_attribute: dict[str, list[SimplePredicate]] = {}
        if expr is not None:
            for predicate in iter_simple_predicates(expr):
                attr = self._resolve(predicate)
                per_attribute.setdefault(attr, []).append(predicate)
        segments = [
            self.attribute_segment(attr, per_attribute.get(attr, ()))
            for attr in self.attributes
        ]
        return np.concatenate(segments)

    def attribute_segment(self, attribute: str,
                          predicates) -> np.ndarray:
        """Featurize one attribute's conjunction into its vector segment.

        This is the per-attribute body of Algorithm 1, exposed separately
        because Limited Disjunction Encoding (Algorithm 2) calls it once
        per disjunction branch before merging.
        """
        predicates = list(predicates)
        n_attr = self._partition_counts[attribute]
        exact = self._exact[attribute]
        entries = np.ones(n_attr, dtype=np.float64)
        for predicate in predicates:
            self._apply(entries, attribute, predicate, exact)
        if not self._attr_selectivity:
            return entries
        stats = self.stats(attribute)
        if predicates:
            interval = fold_conjunction(predicates, stats)
            selectivity = uniform_selectivity(interval, stats)
        else:
            selectivity = 1.0
        return np.concatenate([entries, [selectivity]])

    def _partition_value(self, attribute: str, idx: int) -> float:
        """The single value an *exact* partition covers.

        Only called when :meth:`is_exact` holds; equal-width exact
        partitions map index ``i`` to the integer ``min(A) + i``.
        Subclasses with other geometries (equi-depth) override this.
        """
        return self.stats(attribute).min_value + idx

    def _apply(self, entries: np.ndarray, attribute: str,
               predicate: SimplePredicate, exact: bool) -> None:
        """Lower entries according to one predicate (Algorithm 1, lines 5-16).

        For exact partitions the single covered value is known, so the
        boundary partition resolves to 0 or 1 instead of ½ (the
        refinement at the end of Section 3.2).
        """
        n_attr = entries.size
        idx = self.partition_index(attribute, predicate.value)
        in_domain = 0 <= idx < n_attr
        value = float(predicate.value)
        op = predicate.op
        # The single value of the boundary partition, if known exactly.
        u = (self._partition_value(attribute, idx)
             if exact and in_domain else None)

        if op is Op.EQ:
            # Entries may only decrease (Algorithm 1, line 5): a previous
            # predicate that zeroed the matching partition must win, so a
            # contradiction like A = 0 AND A = 1 stays all-zero.
            current = entries[idx] if in_domain else 0.0
            entries[:] = 0.0
            if in_domain:
                if u is None:
                    entries[idx] = min(current, _HALF)
                elif u == value:
                    entries[idx] = current
                # else: the partition's value differs -> stays 0.
            return
        if op is Op.NE:
            if in_domain:
                if u is None:
                    entries[idx] = min(entries[idx], _HALF)
                elif u == value:
                    entries[idx] = 0.0
            return
        if op in (Op.GT, Op.GE):
            if idx >= n_attr:
                entries[:] = 0.0
                return
            if idx < 0:
                return
            entries[:idx] = 0.0
            if u is None:
                entries[idx] = min(entries[idx], _HALF)
            elif (u < value) or (op is Op.GT and u == value):
                entries[idx] = 0.0
            return
        if op in (Op.LT, Op.LE):
            if idx < 0:
                entries[:] = 0.0
                return
            if idx >= n_attr:
                return
            entries[idx + 1:] = 0.0
            if u is None:
                entries[idx] = min(entries[idx], _HALF)
            elif (u > value) or (op is Op.LT and u == value):
                entries[idx] = 0.0
            return
        raise ValueError(f"unhandled operator {op}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Vectorized encode stage
    # ------------------------------------------------------------------

    def _featurize_compiled(self, batch: PredicateBatch) -> np.ndarray:
        # Attributes without predicates keep all-one entries and (when
        # enabled) selectivity 1.0, so all-ones is the matrix default.
        matrix = np.ones((batch.n_queries, self.feature_length),
                         dtype=np.float64)
        if batch.n_predicates == 0:
            return matrix
        segments, group_queries, group_attrs, _ = (
            self._compiled_attribute_segments(batch))
        counts = self._counts[group_attrs]
        offsets = self._seg_offsets[group_attrs]
        max_n = segments.shape[1] - self._segment_extra
        cols = np.arange(max_n)
        # Scatter each group's first n_A columns into its segment; the
        # trailing columns of wider-than-n_A rows are padding.
        dest = offsets[:, None] + cols[None, :]
        valid = cols[None, :] < counts[:, None]
        rows2d = np.broadcast_to(group_queries[:, None], dest.shape)
        matrix[rows2d[valid], dest[valid]] = segments[:, :max_n][valid]
        if self._segment_extra:
            matrix[group_queries, offsets + counts] = segments[:, -1]
        return matrix

    def _compiled_attribute_segments(
            self, batch: PredicateBatch
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Encode one merged segment row per predicated (query, attribute).

        Returns ``(segments, group_queries, group_attrs, group_positions)``
        where ``segments`` has ``max(n_A)`` partition columns (padded)
        plus, when enabled, the selectivity appendix as last column, and
        ``group_positions`` holds each group's first compile-order
        position (set consumers like the MSCN input builder use it to
        reproduce per-query row order).

        Equivalence with the sequential Algorithm 1: each predicate's
        ``_apply`` lowers entries by an elementwise *minimum* with a
        per-predicate mask — ones on a keep-window ``[wlo, whi]``, zero
        outside, with an optional ``{0, 1/2}`` point update at the
        boundary partition.  Minimum is exactly commutative, so a group's
        entries equal the intersection of its windows with all point
        updates min-applied, which grouped reductions compute directly.
        """
        order = np.lexsort(
            (batch.branch_index, batch.attr_index, batch.query_index))
        q = batch.query_index[order]
        a = batch.attr_index[order]
        b = batch.branch_index[order]
        op = batch.op_code[order]
        values = batch.value[order]
        positions = batch.position[order]

        counts = self._counts[a]
        idx = self._partition_indices(a, values)
        in_dom = (idx >= 0) & (idx < counts)
        exact = self._exact_flags[a] & in_dom
        u = np.zeros(values.size, dtype=np.float64)
        if np.any(exact):
            u[exact] = self._partition_values(a[exact], idx[exact])

        is_eq = op == OP_EQ
        is_ne = op == OP_NE
        is_gt = op == OP_GT
        is_ge = op == OP_GE
        is_lt = op == OP_LT
        is_le = op == OP_LE
        lower = is_gt | is_ge
        upper = is_lt | is_le

        # Keep-windows (defaults: the full partition range).
        wlo = np.zeros(values.size, dtype=np.int64)
        whi = counts - 1
        eq_dom = is_eq & in_dom
        wlo[eq_dom] = idx[eq_dom]
        whi[eq_dom] = idx[eq_dom]
        low_dom = lower & in_dom
        wlo[low_dom] = idx[low_dom]
        up_dom = upper & in_dom
        whi[up_dom] = idx[up_dom]
        empty_win = ((is_eq & ~in_dom) | (lower & (idx >= counts))
                     | (upper & (idx < 0)))
        wlo[empty_win] = counts[empty_win]
        whi[empty_win] = -1

        # Boundary-partition point updates: 1/2 when the partition's
        # content is unknown, 0 when the exact value fails the predicate.
        half_point = in_dom & ~exact
        zero_point = exact & (
            (is_eq & (u != values))
            | (is_ne & (u == values))
            | (is_gt & (u <= values))
            | (is_ge & (u < values))
            | (is_lt & (u >= values))
            | (is_le & (u > values))
        )

        # Group rows by (query, attribute, branch).
        key_change = np.empty(values.size, dtype=bool)
        key_change[0] = True
        key_change[1:] = ((q[1:] != q[:-1]) | (a[1:] != a[:-1])
                          | (b[1:] != b[:-1]))
        starts = np.flatnonzero(key_change)
        gid = np.cumsum(key_change) - 1
        group_queries = q[starts]
        group_attrs = a[starts]
        # The stable lexsort keeps compile order within a group, so the
        # start row holds the group's first-seen position.
        group_positions = positions[starts]

        cols = np.arange(int(self._counts.max()))
        g_wlo = np.maximum.reduceat(wlo, starts)
        g_whi = np.minimum.reduceat(whi, starts)
        segments = ((cols[None, :] >= g_wlo[:, None])
                    & (cols[None, :] <= g_whi[:, None])).astype(np.float64)
        point = half_point | zero_point
        if np.any(point):
            np.minimum.at(
                segments,
                (gid[point], idx[point]),
                np.where(zero_point[point], 0.0, _HALF),
            )

        if self._segment_extra:
            selectivity = self._group_selectivities(
                op, values, self._steps[a], starts, gid, group_attrs)
            segments = np.concatenate(
                [segments, selectivity[:, None]], axis=1)

        # Merge disjunction branches within each (query, attribute).
        merge_key = np.empty(starts.size, dtype=bool)
        merge_key[0] = True
        merge_key[1:] = ((group_queries[1:] != group_queries[:-1])
                         | (group_attrs[1:] != group_attrs[:-1]))
        if not merge_key.all():
            attr_starts = np.flatnonzero(merge_key)
            segments = self._merge_branch_rows(segments, attr_starts)
            group_queries = group_queries[attr_starts]
            group_attrs = group_attrs[attr_starts]
            group_positions = group_positions[attr_starts]
        return segments, group_queries, group_attrs, group_positions

    def _merge_branch_rows(self, rows: np.ndarray,
                           starts: np.ndarray) -> np.ndarray:
        """Merge consecutive disjunction-branch rows into attribute rows.

        The conjunctive compile emits a single branch per group, so this
        only runs for the disjunction subclass; max is Algorithm 2's
        entry-wise merge, and the "sum" ablation overrides it.
        """
        return np.maximum.reduceat(rows, starts, axis=0)

    def _group_selectivities(self, op: np.ndarray, values: np.ndarray,
                             steps: np.ndarray, starts: np.ndarray,
                             gid: np.ndarray,
                             group_attrs: np.ndarray) -> np.ndarray:
        """Vectorized fold + uniformity selectivity per predicate group.

        Mirrors :func:`~repro.featurize.selectivity.fold_conjunction`
        followed by :func:`uniform_selectivity`: max/min folds are
        exactly commutative, and exclusions are counted distinct, so the
        results match the scalar appendix bitwise.
        """
        lo_cand = np.full(values.size, -np.inf)
        hi_cand = np.full(values.size, np.inf)
        m = op == OP_EQ
        lo_cand[m] = values[m]
        hi_cand[m] = values[m]
        m = op == OP_GE
        lo_cand[m] = values[m]
        m = op == OP_GT
        lo_cand[m] = values[m] + steps[m]
        m = op == OP_LE
        hi_cand[m] = values[m]
        m = op == OP_LT
        hi_cand[m] = values[m] - steps[m]

        lo = np.maximum(np.maximum.reduceat(lo_cand, starts),
                        self._min_values[group_attrs])
        hi = np.minimum(np.minimum.reduceat(hi_cand, starts),
                        self._max_values[group_attrs])

        # Integral domains: qualifying integer count minus the distinct
        # integer-valued <> exclusions inside the folded interval.
        ilo = np.ceil(lo)
        ihi = np.floor(hi)
        excluded = np.zeros(starts.size, dtype=np.float64)
        ne = op == OP_NE
        if np.any(ne):
            pairs = np.unique(
                np.column_stack([gid[ne].astype(np.float64), values[ne]]),
                axis=0)
            pair_gid = pairs[:, 0].astype(np.int64)
            pair_value = pairs[:, 1]
            inside = ((pair_value >= ilo[pair_gid])
                      & (pair_value <= ihi[pair_gid])
                      & (pair_value == np.floor(pair_value)))
            np.add.at(excluded, pair_gid[inside], 1.0)
        qualifying = np.maximum((ihi - ilo + 1.0) - excluded, 0.0)
        integral_sel = qualifying / self._domain_sizes[group_attrs]

        # Continuous domains: interval length over the span; an equality
        # collapse is credited one distinct value.
        width = hi - lo
        span = self._spans[group_attrs]
        safe_span = np.where(span > 0.0, span, 1.0)
        continuous_sel = np.minimum(width / safe_span, 1.0)
        collapse = 1.0 / np.maximum(self._distinct_counts[group_attrs], 1.0)
        continuous_sel = np.where(width <= 0.0, collapse, continuous_sel)
        continuous_sel = np.where(span <= 0.0, 1.0, continuous_sel)

        selectivity = np.where(self._integral[group_attrs],
                               integral_sel, continuous_sel)
        return np.where(lo > hi, 0.0, selectivity)
