"""String-predicate featurization (Section 6 extension).

The paper observes that dictionary encoding (the prior state of the art)
only supports equality predicates on strings, while Universal Conjunction
Encoding "naturally supports" prefix predicates: give each per-attribute
entry a range of most-significant letters, e.g. with 26 entries words
starting with ``d`` map to the fourth entry.

:class:`StringPrefixEncoding` implements that idea for one string column:

* the column's values are dictionary-encoded (sorted order), so equality
  and range predicates reduce to the numeric machinery;
* ``LIKE 'abc%'`` prefix predicates are featurized directly: every bucket
  whose letter range is fully covered by the prefix gets ``1``, boundary
  buckets get ``1/2``, the rest ``0`` — the same ``{0, 1/2, 1}`` alphabet
  as Algorithm 1;
* a dictionary-based selectivity estimate is appended, mirroring the
  per-attribute selectivity appendix.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Sequence

import numpy as np

__all__ = ["StringPrefixEncoding"]


class StringPrefixEncoding:
    """Bucketed featurization of prefix predicates over one string column."""

    def __init__(self, values: Sequence[str], buckets: int = 26,
                 attr_selectivity: bool = True) -> None:
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        cleaned = [v for v in values if v]
        if not cleaned:
            raise ValueError("string column must contain non-empty values")
        self._dictionary = sorted(set(cleaned))
        self._buckets = buckets
        self._attr_selectivity = attr_selectivity
        # Bucket boundary = index range in the sorted dictionary.  Using the
        # dictionary (not raw letters) makes buckets equi-depth over the
        # observed values, like the paper's "for enhanced accuracy, more
        # entries can be used".
        size = len(self._dictionary)
        bounds = np.linspace(0, size, buckets + 1).astype(int)
        self._bounds = bounds

    @property
    def dictionary(self) -> list[str]:
        """The sorted distinct values (dictionary encoding)."""
        return list(self._dictionary)

    @property
    def feature_length(self) -> int:
        """Dimension of the produced vectors (buckets + selectivity)."""
        return self._buckets + (1 if self._attr_selectivity else 0)

    def encode_value(self, value: str) -> int:
        """Dictionary code of ``value`` (``KeyError`` if absent)."""
        idx = bisect_left(self._dictionary, value)
        if idx >= len(self._dictionary) or self._dictionary[idx] != value:
            raise KeyError(f"value {value!r} not in dictionary")
        return idx

    def _range_vector(self, lo_idx: int, hi_idx: int) -> np.ndarray:
        """Featurize the dictionary index range ``[lo_idx, hi_idx)``."""
        entries = np.zeros(self._buckets, dtype=np.float64)
        for bucket in range(self._buckets):
            b_lo, b_hi = self._bounds[bucket], self._bounds[bucket + 1]
            if b_lo >= b_hi:
                continue
            overlap_lo = max(b_lo, lo_idx)
            overlap_hi = min(b_hi, hi_idx)
            if overlap_hi <= overlap_lo:
                continue
            if overlap_lo == b_lo and overlap_hi == b_hi:
                entries[bucket] = 1.0
            else:
                entries[bucket] = 0.5
        if not self._attr_selectivity:
            return entries
        selectivity = (hi_idx - lo_idx) / len(self._dictionary)
        return np.concatenate([entries, [max(selectivity, 0.0)]])

    def featurize_prefix(self, prefix: str) -> np.ndarray:
        """Featurize ``column LIKE 'prefix%'``."""
        if not prefix:
            raise ValueError("prefix must be non-empty; use no predicate instead")
        lo = bisect_left(self._dictionary, prefix)
        # The smallest string greater than every prefixed value.
        upper = prefix[:-1] + chr(ord(prefix[-1]) + 1)
        hi = bisect_left(self._dictionary, upper)
        return self._range_vector(lo, hi)

    def featurize_equals(self, value: str) -> np.ndarray:
        """Featurize ``column = 'value'``."""
        lo = bisect_left(self._dictionary, value)
        hi = bisect_right(self._dictionary, value)
        return self._range_vector(lo, hi)

    def featurize_no_predicate(self) -> np.ndarray:
        """Featurize the absence of a predicate (full domain)."""
        return self._range_vector(0, len(self._dictionary))

    def prefix_selectivity(self, prefix: str) -> float:
        """Dictionary fraction matching the prefix (uniformity estimate)."""
        vector = self.featurize_prefix(prefix)
        if self._attr_selectivity:
            return float(vector[-1])
        lo = bisect_left(self._dictionary, prefix)
        upper = prefix[:-1] + chr(ord(prefix[-1]) + 1)
        hi = bisect_left(self._dictionary, upper)
        return (hi - lo) / len(self._dictionary)
