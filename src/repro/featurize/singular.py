"""Singular Predicate Encoding (paper label: ``simple``).

The established baseline QFT from prior work (Section 2.1.1): for a table
with ``m`` attributes the feature vector has ``4 * m`` entries.  Each
attribute owns four entries — a 3-bit operator indicator over
``{=, >, <}`` and the min-max-normalised literal::

    A > 5  AND  B = 7   (m = 3)
    ->  [0,1,0, 0.27,   1,0,0, 0.15,   0,0,0, 0.0]
         ---A--------   ---B--------   -no pred.--

Non-strict and negated operators are expressed by setting two bits
(``>=`` sets ``=`` and ``>``; ``<>`` sets ``>`` and ``<``).

**Deliberate information loss** (this is what Section 3 analyses): only
one predicate per attribute fits.  When a query has ``k > 1`` predicates
on an attribute, the *first* one is kept and the other ``k - 1`` are
dropped — the feature vector can no longer distinguish a selective
many-predicate query from a permissive one-predicate query.
Disjunctions cannot be represented at all and raise
:class:`~repro.featurize.base.LosslessnessError`.
"""

from __future__ import annotations

import numpy as np

from repro.featurize.base import Featurizer, LosslessnessError
from repro.featurize.batch import OP_CODES, PredicateBatch
from repro.sql.ast import BoolExpr, Op, is_conjunctive, iter_simple_predicates

__all__ = ["SingularEncoding"]

#: Entries reserved per attribute: three operator bits plus the literal.
_ENTRIES_PER_ATTRIBUTE = 4

#: Operator -> (=, >, <) indicator bits.
_OP_BITS = {
    Op.EQ: (1.0, 0.0, 0.0),
    Op.GT: (0.0, 1.0, 0.0),
    Op.LT: (0.0, 0.0, 1.0),
    Op.GE: (1.0, 1.0, 0.0),
    Op.LE: (1.0, 0.0, 1.0),
    Op.NE: (0.0, 1.0, 1.0),
}

#: Op-code-indexed view of :data:`_OP_BITS` for the batch encode kernel.
_OP_BIT_TABLE = np.zeros((len(OP_CODES), 3), dtype=np.float64)
for _op, _code in OP_CODES.items():
    _OP_BIT_TABLE[_code] = _OP_BITS[_op]


class SingularEncoding(Featurizer):
    """Singular Predicate Encoding: 4 entries per attribute, 1 predicate each."""

    name = "simple"
    #: The vectorized encode consumes only the columnar batch arrays.
    encode_uses_exprs = False

    @property
    def feature_length(self) -> int:
        """Dimension of the produced feature vectors."""
        return _ENTRIES_PER_ATTRIBUTE * len(self.attributes)

    def _disjunction_error(self, expr: BoolExpr) -> LosslessnessError:
        return LosslessnessError(
            "Singular Predicate Encoding cannot represent disjunctions; "
            f"got: {expr.to_sql()}"
        )

    def _featurize_expr(self, expr: BoolExpr | None) -> np.ndarray:
        vector = np.zeros(self.feature_length, dtype=np.float64)
        if expr is None:
            return vector
        if not is_conjunctive(expr):
            raise self._disjunction_error(expr)
        offsets = {attr: i * _ENTRIES_PER_ATTRIBUTE
                   for i, attr in enumerate(self.attributes)}
        encoded: set[str] = set()
        for predicate in iter_simple_predicates(expr):
            attr = self._resolve(predicate)
            if attr in encoded:
                # Lossy by design: later predicates on the same attribute
                # are dropped (Section 3's motivating failure case).
                continue
            encoded.add(attr)
            base = offsets[attr]
            vector[base:base + 3] = _OP_BITS[predicate.op]
            vector[base + 3] = self.stats(attr).normalize(predicate.value)
        return vector

    def _featurize_compiled(self, batch: PredicateBatch) -> np.ndarray:
        matrix = np.zeros((batch.n_queries, self.feature_length),
                          dtype=np.float64)
        if batch.n_predicates == 0:
            return matrix
        # The first predicate per (query, attribute) wins — the same
        # drop rule as the scalar path.  Compile order is query-major
        # and preserves predicate order, so np.unique's first-occurrence
        # indices select exactly the scalar path's survivors.
        m = len(self.attributes)
        key = batch.query_index * m + batch.attr_index
        _, first = np.unique(key, return_index=True)
        queries = batch.query_index[first]
        attrs = batch.attr_index[first]
        base = attrs * _ENTRIES_PER_ATTRIBUTE
        bits = _OP_BIT_TABLE[batch.op_code[first]]
        for offset in range(3):
            matrix[queries, base + offset] = bits[:, offset]
        matrix[queries, base + 3] = self._normalize_values(
            attrs, batch.value[first])
        return matrix
