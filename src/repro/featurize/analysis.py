"""Featurization-quality analysis tools.

Definition 3.1 calls a featurization *lossless* when a query with the
same result can be reconstructed from the feature vector.  This module
makes that definition operational:

* :func:`decode` — the inverse function of Definition 3.1: given a
  feature vector produced by Universal Conjunction / Limited Disjunction
  Encoding at **exact resolution** (one partition per integer value), it
  reconstructs a conjunctive query with the same result set.
* :func:`is_lossless_for` — whether a fitted encoding is at exact
  resolution for every attribute (the regime of Lemma 3.2's limit).
* :func:`collision_report` — quantifies the information loss of *any*
  featurizer over a workload: queries mapping to the same vector with
  different cardinalities violate the determinism requirement of the
  paper's Equation 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.featurize.conjunctive import ConjunctiveEncoding
from repro.sql.ast import And, BoolExpr, Op, Query, SimplePredicate

__all__ = ["decode", "is_lossless_for", "collision_report", "CollisionReport"]


def is_lossless_for(featurizer: ConjunctiveEncoding) -> bool:
    """True iff every attribute is encoded at one partition per value."""
    return all(featurizer.is_exact(attr) for attr in featurizer.attributes)


def decode(featurizer: ConjunctiveEncoding, vector: np.ndarray) -> Query:
    """Reconstruct a query with the same result set from a feature vector.

    This is the function whose existence Definition 3.1 demands.  It
    requires exact resolution (:func:`is_lossless_for`); below that,
    partitions aggregate several values and no inverse can exist in
    general (that *is* the information loss).

    The reconstruction per attribute: the entries equal to 1 are the
    qualifying values; they are expressed as a closed range over the
    qualifying span plus ``<>`` predicates for interior gaps — always a
    plain conjunction, even if the vector came from Limited Disjunction
    Encoding (at exact resolution a union of per-attribute predicates is
    again expressible as range + exclusions).
    """
    if not is_lossless_for(featurizer):
        inexact = [a for a in featurizer.attributes
                   if not featurizer.is_exact(a)]
        raise ValueError(
            "decode requires exact resolution (one partition per value); "
            f"inexact attributes: {inexact} — increase max_partitions"
        )
    vector = np.asarray(vector, dtype=np.float64)
    if vector.shape != (featurizer.feature_length,):
        raise ValueError(
            f"vector has shape {vector.shape}, expected "
            f"({featurizer.feature_length},)"
        )
    predicates: list[SimplePredicate] = []
    slices = featurizer.attribute_slices()
    for attr in featurizer.attributes:
        segment = vector[slices[attr]]
        entries = segment[:featurizer.partitions(attr)]
        stats = featurizer.stats(attr)
        # Vectorized membership test on a constructed 0/1 indicator
        # array: the encoder wrote these entries as exact 0.0/1.0
        # constants (never computed), so `== 1.0` is representation-safe
        # here and np.isclose would only blur the contract.
        qualifying = np.nonzero(entries == 1.0)[0]  # repro: ignore[RPR102]
        if qualifying.size == entries.size:
            continue  # no predicate on this attribute
        if qualifying.size == 0:
            # Unsatisfiable: no value qualifies.
            predicates.append(SimplePredicate(attr, Op.LT, stats.min_value))
            continue
        # Partition index -> the single value it covers (the geometry
        # hook also used by Algorithm 1's exact refinement; correct for
        # both equal-width and equi-depth exact partitions).
        value_of = featurizer._partition_value
        lo = value_of(attr, int(qualifying.min()))
        hi = value_of(attr, int(qualifying.max()))
        predicates.append(SimplePredicate(attr, Op.GE, lo))
        predicates.append(SimplePredicate(attr, Op.LE, hi))
        inside = np.arange(qualifying.min(), qualifying.max() + 1)
        gaps = np.setdiff1d(inside, qualifying)
        predicates.extend(
            SimplePredicate(attr, Op.NE, value_of(attr, int(gap)))
            for gap in gaps
        )
    where: BoolExpr | None
    if not predicates:
        where = None
    elif len(predicates) == 1:
        where = predicates[0]
    else:
        where = And(predicates)
    return Query.single_table(featurizer.table_name, where)


@dataclass(frozen=True)
class CollisionReport:
    """Information-loss measurement of a featurizer over a workload."""

    #: Number of queries inspected.
    total_queries: int
    #: Distinct feature vectors observed.
    distinct_vectors: int
    #: Queries sharing a vector with a different-cardinality query.
    colliding_queries: int
    #: Largest cardinality spread within one vector (max/min ratio).
    worst_spread: float

    @property
    def collision_rate(self) -> float:
        """Fraction of queries involved in a determinism violation."""
        if self.total_queries == 0:
            return 0.0
        return self.colliding_queries / self.total_queries


def collision_report(featurizer, workload) -> CollisionReport:
    """Measure Equation-4 violations of ``featurizer`` on ``workload``.

    Works with any vector featurizer (the four QFTs alike); the paper's
    argument is that lossy QFTs necessarily produce collisions on query
    classes they cannot represent, which caps achievable accuracy.
    """
    buckets: dict[bytes, list[int]] = {}
    for item in workload:
        key = featurizer.featurize(item.query).tobytes()
        buckets.setdefault(key, []).append(item.cardinality)
    colliding = 0
    worst = 1.0
    for cards in buckets.values():
        if len(set(cards)) > 1:
            colliding += len(cards)
            worst = max(worst, max(cards) / max(min(cards), 1))
    return CollisionReport(
        total_queries=len(workload),
        distinct_vectors=len(buckets),
        colliding_queries=colliding,
        worst_spread=worst,
    )
