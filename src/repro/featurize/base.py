"""Featurizer interface shared by every QFT.

A featurizer is *fitted* to a table: it captures the attribute list and
per-attribute statistics (min/max/domain size), which define the geometry
of the feature space.  Featurization itself is then a pure function
``query -> numpy vector`` of fixed length — exactly the two-step mapping
of the paper's Equation 2.

All featurizers accept either a single-table :class:`~repro.sql.ast.Query`
or a bare boolean expression (a WHERE clause).  Attribute names may be
qualified (``forest.A7``); the table prefix is stripped during resolution.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence, Union

import numpy as np

from repro.data.stats import ColumnStats, TableStats
from repro.data.table import Table
from repro.sql.ast import BoolExpr, Query, SimplePredicate

__all__ = ["Featurizer", "LosslessnessError"]


class LosslessnessError(ValueError):
    """Raised when a QFT is asked to encode a query it cannot represent.

    The lossy encodings (Singular, Range) by design *silently* drop
    information for query classes the paper studies — that is the point of
    the comparison — but raise for queries entirely outside their contract
    (e.g. disjunctions), where a silent wrong answer would not be a
    featurization at all.
    """


class Featurizer(abc.ABC):
    """Base class of all query featurization techniques."""

    #: Paper label for plots ("simple", "range", "conjunctive", "complex").
    name: str = "abstract"

    def __init__(self, table: Union[Table, TableStats],
                 attributes: Sequence[str] | None = None) -> None:
        # A featurizer consumes only statistics, so a TableStats snapshot
        # works in place of the table itself (this is how persisted
        # estimators are reconstructed without the original data).
        snapshot = (table if isinstance(table, TableStats)
                    else TableStats.from_table(table))
        self._table_name = snapshot.name
        names = (list(attributes) if attributes is not None
                 else snapshot.column_names)
        if not names:
            raise ValueError("featurizer needs at least one attribute")
        missing = [n for n in names if n not in snapshot]
        if missing:
            raise KeyError(f"attributes {missing} not in table "
                           f"{snapshot.name!r}")
        self._attributes: tuple[str, ...] = tuple(names)
        self._stats: dict[str, ColumnStats] = {
            name: snapshot.column_stats(name) for name in names
        }

    @property
    def table_name(self) -> str:
        """Name of the table this featurizer was fitted to."""
        return self._table_name

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attributes covered by the feature space, in vector order."""
        return self._attributes

    def stats(self, attribute: str) -> ColumnStats:
        """Statistics of ``attribute`` (``KeyError`` if uncovered)."""
        try:
            return self._stats[attribute]
        except KeyError:
            raise KeyError(
                f"attribute {attribute!r} is not covered by this featurizer "
                f"(table {self._table_name!r}, attributes {self._attributes})"
            ) from None

    def snapshot(self) -> TableStats:
        """The statistics snapshot this featurizer was fitted to."""
        return TableStats(name=self._table_name, columns=dict(self._stats))

    def get_config(self) -> dict:
        """Constructor parameters beyond the snapshot (for persistence).

        Subclasses with extra knobs (partition counts, selectivity
        appendix, merge operator) override this.
        """
        return {}

    @property
    @abc.abstractmethod
    def feature_length(self) -> int:
        """Dimension of the produced feature vectors."""

    @abc.abstractmethod
    def _featurize_expr(self, expr: BoolExpr | None) -> np.ndarray:
        """Encode a WHERE expression (``None`` = no predicates)."""

    def featurize(self, query: Query | BoolExpr | None) -> np.ndarray:
        """Encode a query (or bare WHERE expression) into a feature vector."""
        expr = self._extract_expr(query)
        vector = self._featurize_expr(expr)
        if vector.shape != (self.feature_length,):
            raise AssertionError(
                f"{type(self).__name__} produced shape {vector.shape}, "
                f"expected ({self.feature_length},)"
            )
        return vector

    def featurize_batch(self, queries: Iterable[Query | BoolExpr | None]) -> np.ndarray:
        """Encode many queries into a ``(n, feature_length)`` matrix."""
        rows = [self.featurize(q) for q in queries]
        if not rows:
            return np.empty((0, self.feature_length), dtype=np.float64)
        return np.stack(rows)

    def _extract_expr(self, query: Query | BoolExpr | None) -> BoolExpr | None:
        if query is None:
            return None
        if isinstance(query, Query):
            if len(query.tables) != 1:
                raise ValueError(
                    f"{type(self).__name__} featurizes single-table queries; "
                    f"got tables {query.tables} — wrap join queries in "
                    "JoinQueryFeaturizer"
                )
            if query.tables[0] != self._table_name:
                raise ValueError(
                    f"query targets table {query.tables[0]!r} but this "
                    f"featurizer was fitted to {self._table_name!r}"
                )
            return query.where
        return query

    def _resolve(self, predicate: SimplePredicate) -> str:
        """Return the unqualified attribute name of ``predicate``."""
        attr = predicate.attribute
        prefix, dot, rest = attr.partition(".")
        if dot and prefix == self._table_name:
            attr = rest
        if attr not in self._stats:
            raise KeyError(
                f"predicate on unknown attribute {predicate.attribute!r} "
                f"(table {self._table_name!r})"
            )
        return attr

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(table={self._table_name!r}, "
                f"d={self.feature_length})")
