"""Featurizer interface shared by every QFT.

A featurizer is *fitted* to a table: it captures the attribute list and
per-attribute statistics (min/max/domain size), which define the geometry
of the feature space.  Featurization itself is then a pure function
``query -> numpy vector`` of fixed length — exactly the two-step mapping
of the paper's Equation 2.

All featurizers accept either a single-table :class:`~repro.sql.ast.Query`
or a bare boolean expression (a WHERE clause).  Attribute names may be
qualified (``forest.A7``); the table prefix is stripped during resolution.

Batch featurization is a two-stage **compile → encode** pipeline:
:meth:`Featurizer.compile_batch` normalizes a query sequence into the
columnar :class:`~repro.featurize.batch.PredicateBatch` IR, and
``_featurize_compiled`` encodes the whole batch into an
``(n, feature_length)`` matrix.  The built-in QFTs override
``_featurize_compiled`` with vectorized numpy kernels; third-party
subclasses inherit a fallback that encodes one compiled expression at a
time through ``_featurize_expr``, so implementing the scalar surface
alone keeps the batch API working.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence, Union

import numpy as np

from repro import obs
from repro.data.stats import ColumnStats, TableStats
from repro.data.table import Table
from repro.featurize.batch import (
    OP_CODES,
    CompiledPlan,
    PredicateBatch,
    index_values,
    stitch_plans,
)
from repro.featurize.selectivity import strict_step
from repro.sql.ast import (
    BoolExpr,
    Query,
    SimplePredicate,
    is_conjunctive,
    iter_simple_predicates,
)

__all__ = ["Featurizer", "LosslessnessError"]


class LosslessnessError(ValueError):
    """Raised when a QFT is asked to encode a query it cannot represent.

    The lossy encodings (Singular, Range) by design *silently* drop
    information for query classes the paper studies — that is the point of
    the comparison — but raise for queries entirely outside their contract
    (e.g. disjunctions), where a silent wrong answer would not be a
    featurization at all.
    """


class Featurizer(abc.ABC):
    """Base class of all query featurization techniques."""

    #: Paper label for plots ("simple", "range", "conjunctive", "complex").
    name: str = "abstract"

    #: Whether this featurizer's encode stage reads ``batch.exprs``.
    #: The base ``_featurize_compiled`` fallback does (it loops scalar
    #: ``_featurize_expr`` calls over them); vectorized overrides that
    #: consume only the columnar arrays declare ``False``, which lets
    #: the serving layer encode instances of planned statements without
    #: materializing bound ASTs at all (see :mod:`repro.serve.fused`).
    encode_uses_exprs: bool = True

    def __init__(self, table: Union[Table, TableStats],
                 attributes: Sequence[str] | None = None) -> None:
        # A featurizer consumes only statistics, so a TableStats snapshot
        # works in place of the table itself (this is how persisted
        # estimators are reconstructed without the original data).
        snapshot = (table if isinstance(table, TableStats)
                    else TableStats.from_table(table))
        self._table_name = snapshot.name
        names = (list(attributes) if attributes is not None
                 else snapshot.column_names)
        if not names:
            raise ValueError("featurizer needs at least one attribute")
        missing = [n for n in names if n not in snapshot]
        if missing:
            raise KeyError(f"attributes {missing} not in table "
                           f"{snapshot.name!r}")
        self._attributes: tuple[str, ...] = tuple(names)
        self._stats: dict[str, ColumnStats] = {
            name: snapshot.column_stats(name) for name in names
        }
        # Columnar statistics, aligned with the attribute order: the
        # vectorized encode kernels index these by attribute id instead
        # of doing per-predicate ColumnStats lookups.
        stats_list = [self._stats[name] for name in self._attributes]
        self._min_values = np.array([s.min_value for s in stats_list])
        self._max_values = np.array([s.max_value for s in stats_list])
        self._spans = self._max_values - self._min_values
        self._domain_sizes = np.array([s.domain_size for s in stats_list])
        self._integral = np.array([s.is_integral for s in stats_list],
                                  dtype=bool)
        self._distinct_counts = np.array(
            [s.distinct_count for s in stats_list], dtype=np.float64)
        self._steps = np.array([strict_step(s) for s in stats_list])

    @property
    def table_name(self) -> str:
        """Name of the table this featurizer was fitted to."""
        return self._table_name

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attributes covered by the feature space, in vector order."""
        return self._attributes

    def stats(self, attribute: str) -> ColumnStats:
        """Statistics of ``attribute`` (``KeyError`` if uncovered)."""
        try:
            return self._stats[attribute]
        except KeyError:
            raise KeyError(
                f"attribute {attribute!r} is not covered by this featurizer "
                f"(table {self._table_name!r}, attributes {self._attributes})"
            ) from None

    def snapshot(self) -> TableStats:
        """The statistics snapshot this featurizer was fitted to."""
        return TableStats(name=self._table_name, columns=dict(self._stats))

    def get_config(self) -> dict:
        """Constructor parameters beyond the snapshot (for persistence).

        Subclasses with extra knobs (partition counts, selectivity
        appendix, merge operator) override this.
        """
        return {}

    @property
    @abc.abstractmethod
    def feature_length(self) -> int:
        """Dimension of the produced feature vectors."""

    @abc.abstractmethod
    def _featurize_expr(self, expr: BoolExpr | None) -> np.ndarray:
        """Encode a WHERE expression (``None`` = no predicates)."""

    def featurize(self, query: Query | BoolExpr | None) -> np.ndarray:
        """Encode a query (or bare WHERE expression) into a feature vector.

        The scalar surface is counted (``featurize.queries_total``) but
        deliberately *not* wrapped in a per-query span: span bookkeeping
        would rival the ~tens-of-µs encode itself.  The traced surface
        is :meth:`featurize_batch`; scalar callers show up in the batch
        spans of whatever pipeline invokes them.
        """
        expr = self._extract_expr(query)
        vector = self._featurize_expr(expr)
        if vector.shape != (self.feature_length,):
            raise AssertionError(
                f"{type(self).__name__} produced shape {vector.shape}, "
                f"expected ({self.feature_length},)"
            )
        obs.get_registry().counter("featurize.queries_total").inc()
        return vector

    def featurize_batch(self, queries: Iterable[Query | BoolExpr | None]) -> np.ndarray:
        """Encode many queries into a ``(n, feature_length)`` matrix.

        This is the compile → encode pipeline: the queries are first
        normalized into the columnar :class:`PredicateBatch` IR (one
        pass over the ASTs, with all validation), then encoded in one
        vectorized step.  Scalar :meth:`featurize` remains the ``n = 1``
        special case with identical results and error contracts.

        When tracing is enabled the two stages emit ``featurize.compile``
        and ``featurize.encode`` child spans under ``featurize.batch``.
        """
        with obs.span("featurize.batch",
                      featurizer=type(self).__name__) as root:
            with obs.span("featurize.compile",
                          featurizer=type(self).__name__):
                batch = self.compile_batch(queries)
            if root is not None:
                root.set_attribute("n_queries", batch.n_queries)
            with obs.span("featurize.encode",
                          featurizer=type(self).__name__,
                          n_queries=batch.n_queries):
                matrix = self._featurize_compiled(batch)
            if matrix.shape != (batch.n_queries, self.feature_length) \
                    or matrix.dtype != np.float64:
                raise AssertionError(
                    f"{type(self).__name__} produced {matrix.dtype} matrix "
                    f"of shape {matrix.shape}, expected float64 "
                    f"({batch.n_queries}, {self.feature_length})"
                )
        registry = obs.get_registry()
        registry.counter("featurize.queries_total").inc(batch.n_queries)
        registry.histogram("featurize.batch_size").record(batch.n_queries)
        return matrix

    # ------------------------------------------------------------------
    # Compile stage
    # ------------------------------------------------------------------

    def extract_expr(self, query: Query | BoolExpr | None) -> BoolExpr | None:
        """Validate a query against this featurizer and return its WHERE.

        Public surface of the extraction step :meth:`featurize` and
        :meth:`compile_batch` perform per query (single-table check,
        table-name check); shape-plan callers use it to obtain the bare
        expression before keying the plan cache.
        """
        return self._extract_expr(query)

    def compile_plan(self, query: Query | BoolExpr | None) -> CompiledPlan:
        """Compile the *shape* of one query into a reusable plan.

        Runs this QFT's ordinary compile stage over a sentinel copy of
        the expression whose literals are replaced by their walk-order
        indices (:func:`~repro.featurize.batch.index_values`), so the
        compiled ``value`` column *is* the walk-order → compile-slot
        permutation.  All compile-time validation (query class,
        attribute resolution) runs here and raises exactly the errors
        ``compile_batch`` would raise for the same query; the returned
        plan can then :meth:`~repro.featurize.batch.CompiledPlan.bind`
        any same-shaped query without re-walking its AST.
        """
        expr = self._extract_expr(query)
        sentinel = index_values(expr)
        n_literals = 0 if expr is None else sum(
            1 for _ in iter_simple_predicates(expr))
        batch = self._compile_exprs([sentinel])
        return CompiledPlan(
            attributes=batch.attributes,
            attr_index=batch.attr_index,
            branch_index=batch.branch_index,
            op_code=batch.op_code,
            perm=batch.value.astype(np.int64),
            n_literals=n_literals,
        )

    def encode_with_plan(self, plan: CompiledPlan, literals: np.ndarray,
                         exprs: Sequence[BoolExpr | None]) -> np.ndarray:
        """Encode same-shaped queries through a pre-compiled plan.

        ``literals`` is the ``(k, plan.n_literals)`` walk-order literal
        matrix and ``exprs`` the matching expressions.  Produces the
        same matrix ``featurize_batch`` would for those queries, minus
        the per-query compile pass.
        """
        if plan.attributes != self._attributes:
            raise ValueError(
                "plan was compiled against a different feature space "
                f"({plan.attributes} != {self._attributes})"
            )
        matrix = self._featurize_compiled(plan.bind(literals, exprs))
        if matrix.shape != (len(exprs), self.feature_length) \
                or matrix.dtype != np.float64:
            raise AssertionError(
                f"{type(self).__name__} produced {matrix.dtype} matrix "
                f"of shape {matrix.shape}, expected float64 "
                f"({len(exprs)}, {self.feature_length})"
            )
        return matrix

    def encode_with_plans(self, plans: Sequence[CompiledPlan],
                          literal_rows: Sequence[np.ndarray],
                          exprs: Sequence[BoolExpr | None]) -> np.ndarray:
        """Encode a *mixed-shape* batch through pre-compiled plans.

        ``plans[i]`` is query ``i``'s plan and ``literal_rows[i]`` its
        walk-order literal vector; the plans may all differ.  The batch
        is stamped out in one stitching pass
        (:func:`~repro.featurize.batch.stitch_plans`) and encoded in
        one vectorized call, so the cost does not grow with the number
        of distinct shapes — the property the serving hot path relies
        on.  Produces the same matrix ``featurize_batch`` would for the
        original queries, minus every per-query compile pass.
        """
        for plan in plans:
            if plan.attributes != self._attributes:
                raise ValueError(
                    "plan was compiled against a different feature space "
                    f"({plan.attributes} != {self._attributes})"
                )
        matrix = self._featurize_compiled(
            stitch_plans(plans, literal_rows, exprs))
        if matrix.shape != (len(exprs), self.feature_length) \
                or matrix.dtype != np.float64:
            raise AssertionError(
                f"{type(self).__name__} produced {matrix.dtype} matrix "
                f"of shape {matrix.shape}, expected float64 "
                f"({len(exprs)}, {self.feature_length})"
            )
        return matrix

    def compile_batch(self, queries: Iterable[Query | BoolExpr | None]
                      ) -> PredicateBatch:
        """Normalize queries into the columnar :class:`PredicateBatch` IR.

        Performs the same per-query validation as :meth:`featurize`
        (table checks, attribute resolution, this QFT's query-class
        contract) and raises the same exception types, so batch callers
        observe errors at the same offending query.
        """
        exprs = [self._extract_expr(q) for q in queries]
        return self._compile_exprs(exprs)

    def _compile_exprs(self, exprs: Sequence[BoolExpr | None]
                       ) -> PredicateBatch:
        """Flatten conjunctive WHERE expressions into predicate columns.

        The default compile accepts the conjunctive query class shared
        by Singular, Range, and Universal Conjunction Encoding; QFTs
        with a wider class (Limited Disjunction Encoding) override this
        to emit disjunction-branch ids.
        """
        attr_ids = {name: i for i, name in enumerate(self._attributes)}
        query_index: list[int] = []
        attr_index: list[int] = []
        op_code: list[int] = []
        value: list[float] = []
        for qi, expr in enumerate(exprs):
            if expr is None:
                continue
            if not is_conjunctive(expr):
                raise self._disjunction_error(expr)
            for predicate in iter_simple_predicates(expr):
                attr_index.append(attr_ids[self._resolve(predicate)])
                query_index.append(qi)
                op_code.append(OP_CODES[predicate.op])
                value.append(float(predicate.value))
        return PredicateBatch.from_lists(
            n_queries=len(exprs), attributes=self._attributes,
            query_index=query_index, attr_index=attr_index,
            branch_index=[0] * len(query_index), op_code=op_code,
            value=value, exprs=exprs,
        )

    def _disjunction_error(self, expr: BoolExpr) -> "LosslessnessError":
        """The error this QFT raises for disjunctive queries.

        Scalar and compile paths share this hook so both raise
        identical messages.
        """
        return LosslessnessError(
            f"{type(self).__name__} cannot represent disjunctions; "
            f"got: {expr.to_sql()}"
        )

    # ------------------------------------------------------------------
    # Encode stage
    # ------------------------------------------------------------------

    def _featurize_compiled(self, batch: PredicateBatch) -> np.ndarray:
        """Encode a compiled batch into an ``(n, feature_length)`` matrix.

        Fallback for featurizers without a vectorized encode stage: one
        ``_featurize_expr`` call per compiled expression.  The built-in
        QFTs override this with columnar numpy kernels.
        """
        if batch.n_queries == 0:
            return np.empty((0, self.feature_length), dtype=np.float64)
        return np.stack([self._featurize_expr(expr) for expr in batch.exprs])

    def _normalize_values(self, attr_ids: np.ndarray,
                          values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`~repro.data.stats.ColumnStats.normalize`.

        Bitwise-identical to the scalar method: ``(v - min) / span``
        clamped to ``[0, 1]``, and ``0.0`` on degenerate domains.
        """
        spans = self._spans[attr_ids]
        safe = np.where(spans > 0.0, spans, 1.0)
        scaled = (values - self._min_values[attr_ids]) / safe
        clamped = np.minimum(np.maximum(scaled, 0.0), 1.0)
        return np.where(spans > 0.0, clamped, 0.0)

    def _extract_expr(self, query: Query | BoolExpr | None) -> BoolExpr | None:
        if query is None:
            return None
        if isinstance(query, Query):
            if len(query.tables) != 1:
                raise ValueError(
                    f"{type(self).__name__} featurizes single-table queries; "
                    f"got tables {query.tables} — wrap join queries in "
                    "JoinQueryFeaturizer"
                )
            if query.tables[0] != self._table_name:
                raise ValueError(
                    f"query targets table {query.tables[0]!r} but this "
                    f"featurizer was fitted to {self._table_name!r}"
                )
            return query.where
        return query

    def _resolve(self, predicate: SimplePredicate) -> str:
        """Return the unqualified attribute name of ``predicate``."""
        attr = predicate.attribute
        prefix, dot, rest = attr.partition(".")
        if dot and prefix == self._table_name:
            attr = rest
        if attr not in self._stats:
            raise KeyError(
                f"predicate on unknown attribute {predicate.attribute!r} "
                f"(table {self._table_name!r})"
            )
        return attr

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(table={self._table_name!r}, "
                f"d={self.feature_length})")
