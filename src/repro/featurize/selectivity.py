"""Closed-interval arithmetic for conjunctions of simple predicates.

All point and range predicates over one attribute can be folded into a
closed interval ``[lo, hi]`` plus a set of excluded values (Section 3.1):
``A = 5`` becomes ``[5, 5]``, ``A <= 5`` becomes ``[min(A), 5]``, and for
integer attributes ``A < 5`` becomes ``[min(A), 4]`` (a small step is used
for continuous attributes).  ``A <> 5`` records 5 as excluded.

This module provides that folding, plus the *uniformity-assumption
selectivity* of the folded interval — the gray "per-attribute selectivity
estimate" appended to the feature vectors of Universal Conjunction
Encoding (Algorithm 1, lines 17–20).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.data.stats import ColumnStats
from repro.sql.ast import Op, SimplePredicate

__all__ = ["Interval", "fold_conjunction", "strict_step",
           "uniform_selectivity"]

#: Relative step used to close strict bounds on continuous domains.
_CONTINUOUS_STEP = 1e-9


def strict_step(stats: ColumnStats) -> float:
    """Step by which a strict bound tightens when folded closed.

    Integer domains step by one value; continuous domains by a span-
    relative epsilon.  Shared by the scalar fold below and the
    vectorized batch-encode kernels, so both paths tighten identically.
    """
    if stats.is_integral:
        return 1.0
    return max(abs(stats.max_value - stats.min_value), 1.0) * _CONTINUOUS_STEP


@dataclass
class Interval:
    """A closed interval with excluded points, over one attribute's domain."""

    lo: float
    hi: float
    excluded: set[float] = field(default_factory=set)

    @property
    def is_empty(self) -> bool:
        """True iff no value can satisfy the folded conjunction."""
        return self.lo > self.hi

    def __contains__(self, value: float) -> bool:
        return (self.lo <= value <= self.hi) and value not in self.excluded


def fold_conjunction(predicates: Iterable[SimplePredicate],
                     stats: ColumnStats) -> Interval:
    """Fold a conjunction of same-attribute predicates into an interval.

    The caller guarantees all predicates reference the same attribute,
    whose statistics are ``stats``.
    """
    step = strict_step(stats)
    interval = Interval(lo=stats.min_value, hi=stats.max_value)
    for predicate in predicates:
        value = float(predicate.value)
        op = predicate.op
        if op is Op.EQ:
            interval.lo = max(interval.lo, value)
            interval.hi = min(interval.hi, value)
        elif op is Op.GE:
            interval.lo = max(interval.lo, value)
        elif op is Op.GT:
            interval.lo = max(interval.lo, value + step)
        elif op is Op.LE:
            interval.hi = min(interval.hi, value)
        elif op is Op.LT:
            interval.hi = min(interval.hi, value - step)
        elif op is Op.NE:
            interval.excluded.add(value)
        else:  # pragma: no cover - Op is a closed enum
            raise ValueError(f"unhandled operator {op}")
    return interval


def uniform_selectivity(interval: Interval, stats: ColumnStats) -> float:
    """Fraction of the attribute's domain qualifying under uniformity.

    This mirrors the paper's Algorithm 1 gray lines: the qualifying domain
    size divided by the total domain size ``max(A) - min(A) + 1`` — a
    Selinger-style estimate, *not* a data-driven one.

    * Integral domains count qualifying integers (excluding ``<>`` values
      inside the interval).
    * Continuous domains use interval length; exclusions have measure
      zero, and an equality collapse is credited ``1 / distinct_count``.
    """
    if interval.is_empty:
        return 0.0
    if stats.is_integral:
        lo = math.ceil(interval.lo)
        hi = math.floor(interval.hi)
        if lo > hi:
            return 0.0
        excluded_inside = sum(
            1 for v in interval.excluded
            if lo <= v <= hi and float(v).is_integer()
        )
        qualifying = (hi - lo + 1) - excluded_inside
        return max(qualifying, 0) / stats.domain_size
    span = stats.max_value - stats.min_value
    if span <= 0:
        return 1.0
    width = interval.hi - interval.lo
    if width <= 0:
        # Equality on a continuous domain: one point qualifies.
        return 1.0 / max(stats.distinct_count, 1)
    return min(width / span, 1.0)
