"""Columnar predicate-batch IR — the *compile* stage of featurization.

Every QFT's batch path is an explicit two-stage pipeline:

1. **compile** — normalize a sequence of queries into a
   :class:`PredicateBatch`: flat, parallel numpy arrays holding one row
   per simple predicate (owning query, attribute id, disjunction-branch
   id, operator code, literal).  Compilation walks the
   :mod:`repro.sql.ast` trees exactly once and performs all per-query
   validation (conjunctive-only contracts, attribute resolution), so the
   encode stage never touches python objects.
2. **encode** — a per-QFT ``_featurize_compiled(batch)`` that turns the
   columnar arrays into the full ``(n, feature_length)`` matrix with
   vectorized numpy kernels (grouped reductions over the predicate rows
   instead of per-query scalar math).

The IR is deliberately tiny: it is the *common denominator* of the four
paper QFTs.  Singular/Range ignore ``branch_index`` (their compile stage
rejects disjunctions first), Universal Conjunction Encoding groups rows
by ``(query_index, attr_index)``, and Limited Disjunction Encoding
additionally splits groups by ``branch_index`` before max/sum-merging
branch segments (Algorithm 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sql.ast import BoolExpr, Op

__all__ = [
    "PredicateBatch",
    "OP_CODES",
    "OP_EQ",
    "OP_NE",
    "OP_LT",
    "OP_LE",
    "OP_GT",
    "OP_GE",
]

#: Stable integer codes for the six simple-predicate operators.
OP_EQ, OP_NE, OP_LT, OP_LE, OP_GT, OP_GE = range(6)

#: :class:`~repro.sql.ast.Op` -> integer op code.
OP_CODES = {
    Op.EQ: OP_EQ,
    Op.NE: OP_NE,
    Op.LT: OP_LT,
    Op.LE: OP_LE,
    Op.GT: OP_GT,
    Op.GE: OP_GE,
}


@dataclass(frozen=True)
class PredicateBatch:
    """Columnar normal form of a batch of queries' WHERE clauses.

    All predicate arrays are parallel (one entry per simple predicate,
    in compile order, i.e. query-major).  ``exprs`` retains the original
    per-query expressions for featurizers without a vectorized encode
    stage (the base-class fallback) and for error reporting.
    """

    #: Number of compiled queries (rows of the encoded matrix).
    n_queries: int
    #: Attribute order of the owning featurizer's feature space.
    attributes: tuple[str, ...]
    #: Owning query of each predicate, in ``range(n_queries)``.
    query_index: np.ndarray
    #: Attribute id of each predicate (position in :attr:`attributes`).
    attr_index: np.ndarray
    #: Disjunction-branch id within ``(query, attribute)``; all zero for
    #: conjunctive compiles.
    branch_index: np.ndarray
    #: Operator code of each predicate (see :data:`OP_CODES`).
    op_code: np.ndarray
    #: Comparison literal of each predicate.
    value: np.ndarray
    #: Global compile-order position of each predicate.  Set-based
    #: consumers (the MSCN input builder) use it to reproduce the
    #: scalar path's per-query row order after grouped encoding.
    position: np.ndarray
    #: The per-query WHERE expressions the batch was compiled from.
    exprs: tuple[BoolExpr | None, ...]

    @classmethod
    def from_lists(cls, n_queries: int, attributes: Sequence[str],
                   query_index: Sequence[int], attr_index: Sequence[int],
                   branch_index: Sequence[int], op_code: Sequence[int],
                   value: Sequence[float],
                   exprs: Sequence[BoolExpr | None]) -> "PredicateBatch":
        """Build a batch from the parallel python lists a compile loop fills."""
        return cls(
            n_queries=n_queries,
            attributes=tuple(attributes),
            query_index=np.asarray(query_index, dtype=np.int64),
            attr_index=np.asarray(attr_index, dtype=np.int64),
            branch_index=np.asarray(branch_index, dtype=np.int64),
            op_code=np.asarray(op_code, dtype=np.int64),
            value=np.asarray(value, dtype=np.float64),
            position=np.arange(len(query_index), dtype=np.int64),
            exprs=tuple(exprs),
        )

    @property
    def n_predicates(self) -> int:
        """Total number of compiled simple predicates."""
        return int(self.query_index.size)

    def __post_init__(self) -> None:
        sizes = {self.query_index.size, self.attr_index.size,
                 self.branch_index.size, self.op_code.size,
                 self.value.size, self.position.size}
        if len(sizes) != 1:
            raise ValueError(
                f"predicate arrays must be parallel; got sizes {sorted(sizes)}"
            )
        if len(self.exprs) != self.n_queries:
            raise ValueError(
                f"exprs holds {len(self.exprs)} entries for "
                f"{self.n_queries} queries"
            )
