"""Columnar predicate-batch IR — the *compile* stage of featurization.

Every QFT's batch path is an explicit two-stage pipeline:

1. **compile** — normalize a sequence of queries into a
   :class:`PredicateBatch`: flat, parallel numpy arrays holding one row
   per simple predicate (owning query, attribute id, disjunction-branch
   id, operator code, literal).  Compilation walks the
   :mod:`repro.sql.ast` trees exactly once and performs all per-query
   validation (conjunctive-only contracts, attribute resolution), so the
   encode stage never touches python objects.
2. **encode** — a per-QFT ``_featurize_compiled(batch)`` that turns the
   columnar arrays into the full ``(n, feature_length)`` matrix with
   vectorized numpy kernels (grouped reductions over the predicate rows
   instead of per-query scalar math).

The IR is deliberately tiny: it is the *common denominator* of the four
paper QFTs.  Singular/Range ignore ``branch_index`` (their compile stage
rejects disjunctions first), Universal Conjunction Encoding groups rows
by ``(query_index, attr_index)``, and Limited Disjunction Encoding
additionally splits groups by ``branch_index`` before max/sum-merging
branch segments (Algorithm 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sql.ast import (
    And,
    BoolExpr,
    LikePredicate,
    Op,
    Or,
    SimplePredicate,
    StringPredicate,
)

__all__ = [
    "PredicateBatch",
    "CompiledPlan",
    "stitch_plans",
    "query_shape",
    "index_values",
    "OP_CODES",
    "OP_EQ",
    "OP_NE",
    "OP_LT",
    "OP_LE",
    "OP_GT",
    "OP_GE",
]

#: Stable integer codes for the six simple-predicate operators.
OP_EQ, OP_NE, OP_LT, OP_LE, OP_GT, OP_GE = range(6)

#: :class:`~repro.sql.ast.Op` -> integer op code.
OP_CODES = {
    Op.EQ: OP_EQ,
    Op.NE: OP_NE,
    Op.LT: OP_LT,
    Op.LE: OP_LE,
    Op.GT: OP_GT,
    Op.GE: OP_GE,
}


@dataclass(frozen=True)
class PredicateBatch:
    """Columnar normal form of a batch of queries' WHERE clauses.

    All predicate arrays are parallel (one entry per simple predicate,
    in compile order, i.e. query-major).  ``exprs`` retains the original
    per-query expressions for featurizers without a vectorized encode
    stage (the base-class fallback) and for error reporting.
    """

    #: Number of compiled queries (rows of the encoded matrix).
    n_queries: int
    #: Attribute order of the owning featurizer's feature space.
    attributes: tuple[str, ...]
    #: Owning query of each predicate, in ``range(n_queries)``.
    query_index: np.ndarray
    #: Attribute id of each predicate (position in :attr:`attributes`).
    attr_index: np.ndarray
    #: Disjunction-branch id within ``(query, attribute)``; all zero for
    #: conjunctive compiles.
    branch_index: np.ndarray
    #: Operator code of each predicate (see :data:`OP_CODES`).
    op_code: np.ndarray
    #: Comparison literal of each predicate.
    value: np.ndarray
    #: Global compile-order position of each predicate.  Set-based
    #: consumers (the MSCN input builder) use it to reproduce the
    #: scalar path's per-query row order after grouped encoding.
    position: np.ndarray
    #: The per-query WHERE expressions the batch was compiled from.
    exprs: tuple[BoolExpr | None, ...]

    @classmethod
    def from_lists(cls, n_queries: int, attributes: Sequence[str],
                   query_index: Sequence[int], attr_index: Sequence[int],
                   branch_index: Sequence[int], op_code: Sequence[int],
                   value: Sequence[float],
                   exprs: Sequence[BoolExpr | None]) -> "PredicateBatch":
        """Build a batch from the parallel python lists a compile loop fills."""
        return cls(
            n_queries=n_queries,
            attributes=tuple(attributes),
            query_index=np.asarray(query_index, dtype=np.int64),
            attr_index=np.asarray(attr_index, dtype=np.int64),
            branch_index=np.asarray(branch_index, dtype=np.int64),
            op_code=np.asarray(op_code, dtype=np.int64),
            value=np.asarray(value, dtype=np.float64),
            position=np.arange(len(query_index), dtype=np.int64),
            exprs=tuple(exprs),
        )

    @property
    def n_predicates(self) -> int:
        """Total number of compiled simple predicates."""
        return int(self.query_index.size)

    def __post_init__(self) -> None:
        sizes = {self.query_index.size, self.attr_index.size,
                 self.branch_index.size, self.op_code.size,
                 self.value.size, self.position.size}
        if len(sizes) != 1:
            raise ValueError(
                f"predicate arrays must be parallel; got sizes {sorted(sizes)}"
            )
        if len(self.exprs) != self.n_queries:
            raise ValueError(
                f"exprs holds {len(self.exprs)} entries for "
                f"{self.n_queries} queries"
            )


# ----------------------------------------------------------------------
# Shape plans — compile once, re-bind literals many times
# ----------------------------------------------------------------------

def query_shape(expr: BoolExpr | None) -> tuple[tuple, np.ndarray]:
    """Return ``(shape_key, literals)`` of a WHERE expression.

    The *shape* of a query is its boolean structure with every numeric
    literal masked out: attribute names, operators, and the AND/OR tree
    stay; comparison values do not.  Two queries with equal shape keys
    compile to byte-identical :class:`PredicateBatch` structure and can
    therefore share one :class:`CompiledPlan`, re-binding only their
    literal vectors.

    ``literals`` holds the masked values in AST walk order (depth-first,
    left-to-right — the order :func:`~repro.sql.ast.iter_simple_predicates`
    yields).  String and LIKE literals are *not* masked: they alter
    dictionary-code resolution, so they stay part of the key (such
    queries must be desugared before compiling anyway).

    The key is a nested tuple of primitives — hashable and cheap to
    build, suitable as a cache key.
    """
    literals: list[float] = []

    def walk(node: BoolExpr) -> tuple:
        if isinstance(node, SimplePredicate):
            literals.append(float(node.value))
            return ("p", node.attribute, node.op.value)
        if isinstance(node, StringPredicate):
            return ("s", node.attribute, node.op.value, node.value)
        if isinstance(node, LikePredicate):
            return ("like", node.attribute, node.prefix)
        if isinstance(node, And):
            return ("and",) + tuple(walk(c) for c in node.children)
        if isinstance(node, Or):
            return ("or",) + tuple(walk(c) for c in node.children)
        raise TypeError(f"not a boolean expression: {type(node).__name__}")

    if expr is None:
        return ("none",), np.empty(0, dtype=np.float64)
    key = walk(expr)
    return key, np.asarray(literals, dtype=np.float64)


def index_values(expr: BoolExpr | None) -> BoolExpr | None:
    """Rebuild ``expr`` with each simple predicate's value replaced by its
    walk-order index (0, 1, 2, …).

    This is the *sentinel* expression plan compilation runs through a
    QFT's ordinary compile stage: wherever the compiled batch places a
    predicate, its ``value`` slot then holds the walk-order index of the
    literal it came from — i.e. the compile stage itself reveals its
    walk-order → compile-slot permutation, including any reordering or
    duplication (DNF cross products) a QFT performs.  Works unchanged
    for any ``_compile_exprs`` override because compile stages copy
    literal values verbatim.
    """
    counter = [0]

    def rebuild(node: BoolExpr) -> BoolExpr:
        if isinstance(node, SimplePredicate):
            index = counter[0]
            counter[0] += 1
            return SimplePredicate(node.attribute, node.op, float(index))
        if isinstance(node, (StringPredicate, LikePredicate)):
            return node
        if isinstance(node, And):
            return And([rebuild(c) for c in node.children])
        if isinstance(node, Or):
            return Or([rebuild(c) for c in node.children])
        raise TypeError(f"not a boolean expression: {type(node).__name__}")

    return None if expr is None else rebuild(expr)


@dataclass(frozen=True)
class CompiledPlan:
    """The query-invariant part of a compiled batch for one query shape.

    A plan is the single-query :class:`PredicateBatch` structure of a
    shape — attribute ids, branch ids, op codes — plus the permutation
    from walk-order literal slots to compile-order predicate rows.
    :meth:`bind` stamps the structure out for ``k`` same-shaped queries
    and gathers their literal matrix into place: the encode stage then
    runs without re-walking a single AST.

    Built by :meth:`repro.featurize.base.Featurizer.compile_plan`;
    cached per shape key by the serving layer's plan cache.
    """

    #: Feature-space attribute order the plan was compiled against.
    attributes: tuple[str, ...]
    #: Per-predicate attribute ids, compile order (one query's worth).
    attr_index: np.ndarray
    #: Per-predicate disjunction-branch ids, compile order.
    branch_index: np.ndarray
    #: Per-predicate operator codes, compile order.
    op_code: np.ndarray
    #: Gather permutation: compile slot -> walk-order literal index.
    perm: np.ndarray
    #: Number of walk-order literals per query (:func:`query_shape`).
    n_literals: int

    @property
    def n_predicates(self) -> int:
        """Compiled predicate rows per query (≥ ``n_literals`` under DNF
        duplication, or fewer if a QFT drops rows)."""
        return int(self.attr_index.size)

    def bind(self, literals: np.ndarray,
             exprs: Sequence[BoolExpr | None]) -> PredicateBatch:
        """Stamp the plan out for ``k`` queries with the given literals.

        ``literals`` is the ``(k, n_literals)`` walk-order literal
        matrix (row ``i`` from ``query_shape(exprs[i])``); ``exprs`` are
        the original expressions, retained for fallback encoders and
        error reporting.  Returns a batch equal to what
        ``compile_batch`` would have produced for the same queries.
        """
        values = np.asarray(literals, dtype=np.float64)
        if values.ndim != 2 or values.shape[1] != self.n_literals:
            raise ValueError(
                f"literal matrix must be (k, {self.n_literals}), "
                f"got {values.shape}"
            )
        k = values.shape[0]
        if len(exprs) != k:
            raise ValueError(
                f"exprs holds {len(exprs)} entries for {k} literal rows"
            )
        p = self.n_predicates
        return PredicateBatch(
            n_queries=k,
            attributes=self.attributes,
            query_index=np.repeat(np.arange(k, dtype=np.int64), p),
            attr_index=np.tile(self.attr_index, k),
            branch_index=np.tile(self.branch_index, k),
            op_code=np.tile(self.op_code, k),
            value=values[:, self.perm].ravel(),
            position=np.arange(k * p, dtype=np.int64),
            exprs=tuple(exprs),
        )


def stitch_plans(plans: Sequence[CompiledPlan],
                 literal_rows: Sequence[np.ndarray],
                 exprs: Sequence[BoolExpr | None]) -> PredicateBatch:
    """Stamp a *mixed-shape* batch out of per-query plans.

    ``plans[i]`` is query ``i``'s shape plan and ``literal_rows[i]`` its
    walk-order literal vector (from :func:`query_shape`); the plans may
    all differ.  The result equals what ``compile_batch`` would produce
    for the same queries — predicate rows are query-major, each query's
    rows in its plan's compile order — but is assembled purely from
    array concatenation: no AST is walked, and unlike one
    :meth:`CompiledPlan.bind` call per shape group, the whole batch pays
    a single stitching pass regardless of how many distinct shapes it
    mixes.  This is what lets a plan cache win on shape-diverse traffic
    (every micro-batch a mix of many parameterized statements), where
    per-group encodes would cost more than they save.

    All plans must target the same feature space (equal ``attributes``).
    """
    k = len(plans)
    if not (k == len(literal_rows) == len(exprs)):
        raise ValueError(
            f"plans/literal_rows/exprs must be parallel, got "
            f"{k}/{len(literal_rows)}/{len(exprs)}")
    if k == 0:
        raise ValueError("cannot stitch an empty batch")
    attributes = plans[0].attributes
    for plan in plans:
        if plan.attributes != attributes:
            raise ValueError(
                "plans target different feature spaces "
                f"({plan.attributes} != {attributes})")
    values: list[np.ndarray] = []
    for plan, row in zip(plans, literal_rows):
        row = np.asarray(row, dtype=np.float64)
        if row.shape != (plan.n_literals,):
            raise ValueError(
                f"literal row of shape {row.shape} for a plan with "
                f"{plan.n_literals} literals")
        values.append(row[plan.perm])
    counts = np.fromiter((plan.n_predicates for plan in plans),
                         dtype=np.int64, count=k)
    total = int(counts.sum())
    if total:
        attr_index = np.concatenate([plan.attr_index for plan in plans])
        branch_index = np.concatenate([plan.branch_index for plan in plans])
        op_code = np.concatenate([plan.op_code for plan in plans])
        value = np.concatenate(values)
    else:
        attr_index = np.empty(0, dtype=np.int64)
        branch_index = np.empty(0, dtype=np.int64)
        op_code = np.empty(0, dtype=np.int64)
        value = np.empty(0, dtype=np.float64)
    return PredicateBatch(
        n_queries=k,
        attributes=attributes,
        query_index=np.repeat(np.arange(k, dtype=np.int64), counts),
        attr_index=attr_index,
        branch_index=branch_index,
        op_code=op_code,
        value=value,
        position=np.arange(total, dtype=np.int64),
        exprs=tuple(exprs),
    )
