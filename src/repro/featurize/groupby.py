"""GROUP BY featurization (Section 6 extension).

"Suppose a binary vector with as many entries as attributes in the table
under consideration […] this vector exactly describes the GROUP BY clause
by setting the entry of each of the grouping attributes to 1.  For
instance, with 5 attributes A1 to A5, ``01010`` corresponds to
``GROUP BY A2, A4``."

:class:`GroupByVector` produces exactly that vector; it composes with any
QFT by concatenation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.table import Table
from repro.sql.ast import Query

__all__ = ["GroupByVector"]


class GroupByVector:
    """Binary grouping-attribute indicator for one table's attribute list."""

    def __init__(self, table: Table, attributes: Sequence[str] | None = None) -> None:
        names = list(attributes) if attributes is not None else table.column_names
        missing = [n for n in names if n not in table]
        if missing:
            raise KeyError(f"attributes {missing} not in table {table.name!r}")
        self._table_name = table.name
        self._attributes = tuple(names)

    @property
    def feature_length(self) -> int:
        """Dimension of the produced vectors (one entry per attribute)."""
        return len(self._attributes)

    def featurize(self, query_or_columns: Query | Sequence[str]) -> np.ndarray:
        """Encode a GROUP BY clause (a query's, or a raw column list)."""
        if isinstance(query_or_columns, Query):
            columns = query_or_columns.group_by
        else:
            columns = tuple(query_or_columns)
        vector = np.zeros(len(self._attributes), dtype=np.float64)
        for column in columns:
            name = column
            prefix, dot, rest = column.partition(".")
            if dot and prefix == self._table_name:
                name = rest
            try:
                vector[self._attributes.index(name)] = 1.0
            except ValueError:
                raise KeyError(
                    f"grouping attribute {column!r} not among {self._attributes}"
                ) from None
        return vector
