"""Shared threaded JSON-over-HTTP plumbing for serving front ends.

:class:`~repro.serve.server.EstimationServer` and the fleet router
(:class:`~repro.fleet.router.RouterServer`) expose the same kind of
surface — a small JSON API on a ``ThreadingHTTPServer`` with
keep-alive connections and a graceful drain — so the transport
machinery lives here once:

* :class:`JsonRequestHandler` — HTTP/1.1 keep-alive handler base with
  JSON body parsing/encoding, connection registration (so ``stop()``
  can sweep idle keep-alive sockets), and the drain-aware request
  loop.  Subclasses implement ``do_GET``/``do_POST`` routing only.
* :class:`ThreadedJsonServer` — owns the ``ThreadingHTTPServer``, the
  serving thread, and the graceful-stop sequence: flip the draining
  flag, half-close every registered connection's read side (blocked
  keep-alive readers see EOF immediately, in-flight responses still go
  out), join the listener, then run the subclass's ``_on_stop`` hook.

Nothing here knows about estimators, services, or workers — it is the
transport layer both servers stand on.
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["JsonRequestHandler", "ThreadedJsonServer"]


class JsonRequestHandler(BaseHTTPRequestHandler):
    """Keep-alive JSON handler base; subclasses add the routing.

    Server classes bind their state onto a per-server subclass (class
    attributes) — instances are created by ``ThreadingHTTPServer`` per
    connection and never constructed directly.
    """

    protocol_version = "HTTP/1.1"
    # Cull keep-alive connections whose peer silently vanished; a live
    # client just reconnects transparently on its next call.
    timeout = 300.0
    # Headers and body go out as separate writes; on a kept-alive
    # socket Nagle would hold the second until the peer's delayed ACK
    # (~40ms per response without this).
    disable_nagle_algorithm = True

    def setup(self) -> None:
        """Register the connection so ``stop()`` can sweep idle sockets."""
        super().setup()
        registry = getattr(self.server, "_repro_handlers", None)
        if registry is not None:
            with self.server._repro_handlers_lock:
                registry.add(self)

    def finish(self) -> None:
        """Unregister the connection once its handler loop ends."""
        try:
            super().finish()
        finally:
            registry = getattr(self.server, "_repro_handlers", None)
            if registry is not None:
                with self.server._repro_handlers_lock:
                    registry.discard(self)

    def handle_one_request(self) -> None:
        """Keep-alive loop step; bows out once the server is draining.

        The check sits *between* requests, so a request already being
        processed when drain starts still gets its response; only the
        connection's next request is refused (by EOF — ``stop()`` has
        half-closed the read side).
        """
        if getattr(self.server, "_repro_draining", False):
            self.close_connection = True
            return
        super().handle_one_request()

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") \
                from exc
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _send_json(self, status: int, payload: dict,
                   extra_headers: dict | None = None) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._send_bytes(status, body, content_type="application/json",
                         extra_headers=extra_headers)

    def _send_bytes(self, status: int, body: bytes, content_type: str,
                    extra_headers: dict | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence the default stderr access log (obs metrics cover it)."""


class ThreadedJsonServer:
    """A threaded HTTP server with keep-alive-aware graceful drain.

    ``port=0`` binds an ephemeral port (read it back from ``port``
    after construction) — the form every test and the in-process
    benchmark use.  ``start()`` serves in a background thread;
    ``stop()`` performs the graceful-drain sequence described in the
    module docs, then calls the subclass's ``_on_stop(drain)`` hook
    (where e.g. the estimation service closes its batcher).
    """

    def __init__(self, handler_cls: type[JsonRequestHandler],
                 host: str = "127.0.0.1", port: int = 0,
                 thread_name: str = "repro-http",
                 **bound_attrs) -> None:
        handler = type("Bound" + handler_cls.__name__, (handler_cls,),
                       {**bound_attrs, "__doc__": handler_cls.__doc__})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        # Graceful drain: handler threads must be joinable (non-daemon)
        # and server_close() must wait for them.
        self._httpd.daemon_threads = False
        self._httpd.block_on_close = True
        # Keep-alive bookkeeping swept by stop(); see the module docs.
        self._httpd._repro_handlers = set()
        self._httpd._repro_handlers_lock = threading.Lock()
        self._httpd._repro_draining = False
        self._thread: threading.Thread | None = None
        self._thread_name = thread_name

    @property
    def host(self) -> str:
        """Bound host address."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (useful after binding port 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ThreadedJsonServer":
        """Begin serving in a background thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name=self._thread_name,
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop accepting, join in-flight handlers, run ``_on_stop``.

        Every request accepted before ``stop`` completes normally; only
        then does the subclass hook run.  Keep-alive connections are
        half-closed (read side only), so idle handler threads unblock
        immediately while in-flight responses still reach their
        clients.  Idempotent.
        """
        self._httpd._repro_draining = True
        with self._httpd._repro_handlers_lock:
            handlers = list(self._httpd._repro_handlers)
        for handler in handlers:
            try:
                handler.connection.shutdown(socket.SHUT_RD)
            except OSError:
                pass  # already closing; the join below still converges
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._on_stop(drain)

    def _on_stop(self, drain: bool) -> None:
        """Subclass hook run after the listener has fully stopped."""

    def __enter__(self) -> "ThreadedJsonServer":
        """Start on context entry."""
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Graceful stop on context exit."""
        self.stop(drain=True)
        return False
