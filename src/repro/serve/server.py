"""HTTP serving front-end: estimate requests in, JSON estimates out.

Two layers, separable for testing:

* :class:`EstimationService` — the transport-free core.  It owns the
  :class:`~repro.serve.batcher.MicroBatcher`, the
  :class:`~repro.serve.cache.EstimateCache`, the shape-keyed
  :class:`~repro.serve.cache.PlanCache` feeding the fused
  compile→encode→predict path (:mod:`repro.serve.fused`, used by both
  the micro-batcher and the client-batch endpoint when the estimator is
  eligible), and the admission-control counter, and exposes
  ``estimate`` / ``estimate_many`` / ``close``.
* :class:`EstimationServer` — a ``ThreadingHTTPServer`` wrapping one
  service in a small JSON API:

  ==========================  ==================================================
  ``GET  /healthz``           liveness probe, ``{"status": "ok"}``
  ``GET  /metrics``           the byte-stable runtime-metrics snapshot (JSON)
  ``GET  /metrics.prom``      Prometheus text exposition (also
                              ``/metrics?format=prometheus``): counters,
                              histograms, windowed summaries, SLO burn rates
  ``POST /v1/estimate``       ``{"sql": "..."}`` → ``{"estimate": c, "cached": b}``
  ``POST /v1/estimate_batch`` ``{"sql": [...]}`` → ``{"estimates": [...]}``
  ``POST /v1/feedback``       ``{"sql": "...", "true_cardinality": t}`` →
                              ``{"qerror": q, "estimate": c}``
  ==========================  ==================================================

Accuracy-aware telemetry (``repro.obs`` v2): every ``/v1/estimate*``
request emits one wide event into the process event log (fingerprint,
trace id, batch id, model version, cache outcome, latency, estimate),
request latency feeds the windowed ``serve.request.seconds.window``
monitor and the ``serve.latency.slo`` tracker, and ``/v1/feedback``
closes the accuracy loop: the observed true cardinality becomes a
q-error observation in the per-model/table/QFT
``serve.qerror.window``, the ``serve.qerror.slo`` burn rate, the
service's :class:`~repro.feedback.QueryFeedbackMonitor`, and the
worst-q-error exemplar reservoir (which keeps the offending SQL).
Requests carrying an ``X-Repro-Trace`` header adopt the client's trace
id — every span the request opens is stamped with it, so client and
server span logs stitch into one Chrome trace.

Connections are **keep-alive** (HTTP/1.1 + ``Content-Length``): a
client that reuses its socket pays one round-trip per request instead
of a TCP handshake plus a handler-thread spawn.  Each live connection
registers itself with the server so shutdown stays graceful without an
idle-timeout wait: ``stop()`` flips a draining flag (handler loops bow
out between requests) and half-closes every connection's *read* side —
blocked keep-alive readers see EOF immediately while in-flight
responses still go out on the untouched write side.

Backpressure: when more than ``max_inflight`` requests are already in
flight the service refuses new work and the server answers ``503`` with
a ``Retry-After`` header — bounded queues instead of unbounded latency.
Shutdown is graceful: the listener stops accepting, in-flight handler
threads are joined, and the batcher drains everything it already
accepted before the process lets go (no accepted request is dropped).
"""

from __future__ import annotations

import threading
import urllib.parse

import numpy as np

from repro import obs
from repro.estimators.base import CardinalityEstimator
from repro.featurize.base import Featurizer, LosslessnessError
from repro.feedback import QueryFeedbackMonitor
from repro.metrics import qerror
from repro.obs.prometheus import CONTENT_TYPE, render_prometheus
from repro.serve.batcher import BatcherClosedError, MicroBatcher
from repro.serve.cache import (
    EstimateCache,
    ParseCache,
    PlanCache,
    query_cache_key,
)
from repro.serve.fused import FusedEstimatePath, PlannedStatement
from repro.serve.http import JsonRequestHandler, ThreadedJsonServer
from repro.sql.ast import Query, UnsupportedQueryError
from repro.sql.parser import (
    SqlSyntaxError,
    bind_template,
    fingerprint_sql,
    make_template,
    parse_query,
)

__all__ = ["EstimationService", "EstimationServer",
           "ServiceUnavailableError"]

#: Seconds a rejected client should wait before retrying (503 header).
_RETRY_AFTER_SECONDS = 1


class ServiceUnavailableError(RuntimeError):
    """The service is saturated (or closed) and refused the request."""

    def __init__(self, message: str,
                 retry_after: int = _RETRY_AFTER_SECONDS) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class _RequestTelemetry:
    """Collects one request's wide-event fields and emits on exit.

    Opened around the whole request (admission included, so rejections
    are captured too); the body fills in ``cache`` / ``batch_id`` /
    ``estimate`` as they become known.  On exit — normal or exceptional
    — the latency stopwatch stops and the service records the event,
    the windowed latency observation, the latency SLO sample, and the
    logical-tick bump.
    """

    __slots__ = ("_service", "sql", "trace_id", "cache", "batch_id",
                 "estimate", "watch")

    def __init__(self, service: "EstimationService", sql: str | None,
                 trace_id: int | None) -> None:
        self._service = service
        self.sql = sql
        self.trace_id = trace_id
        self.cache: str | None = None
        self.batch_id: int | None = None
        self.estimate: float | None = None
        self.watch = obs.get_event_log().stopwatch()

    def __enter__(self) -> "_RequestTelemetry":
        self.watch.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.watch.__exit__(exc_type, exc, tb)
        error = exc_type.__name__ if exc_type is not None else None
        self._service._record_request(self, error)
        return False


class _Statement:
    """A cached prepared statement.

    Holds the re-bindable AST template plus, when the fused path could
    shape-compile it, its :class:`~repro.serve.fused.PlannedStatement`
    for the SQL-direct batch leg.  These are the values the
    fingerprint-keyed :class:`~repro.serve.cache.ParseCache` stores.
    """

    __slots__ = ("template", "planned")

    def __init__(self, template: Query,
                 planned: PlannedStatement | None) -> None:
        self.template = template
        self.planned = planned


class EstimationService:
    """Cache → micro-batcher → estimator pipeline with admission control.

    Parameters
    ----------
    estimator:
        A fitted estimator (``estimate_batch`` must be usable from the
        batcher's worker thread).
    max_batch_size / max_wait_ms:
        Micro-batching knobs, see :class:`~repro.serve.batcher.MicroBatcher`.
    cache_size:
        LRU estimate-cache capacity; ``0`` disables caching.
    max_inflight:
        Admission bound: requests beyond this many concurrently in
        flight are rejected with :class:`ServiceUnavailableError`.
    plan_cache_size:
        Shape-keyed plan-cache capacity for the fused estimate path
        (see :mod:`repro.serve.fused`); ``0`` disables plan caching.
        Ignored when the estimator is ineligible for the fused path
        (joins, global model, MSCN) — those keep their legacy
        ``estimate_batch``.
    parse_cache_size:
        Fingerprint-keyed parsed-template cache capacity (prepared-
        statement style: instances of a seen statement template skip
        the parser and re-bind the cached AST); ``0`` disables it and
        every request parses from scratch.
    model_version:
        Label value for per-model telemetry dimensions; defaults to the
        estimator's ``name`` (or its class name).
    tick_every:
        Auto-advance the global windowed monitors one logical tick
        every this many requests (estimates *and* feedback); ``0``
        (the default) leaves ticking to the operator / tests.
    latency_slo / qerror_slo:
        Targets for the ``serve.latency.slo`` (seconds) and
        ``serve.qerror.slo`` (ratio) trackers.
    slo_objective:
        Fraction of observations that must meet each SLO target.
    """

    def __init__(self, estimator: CardinalityEstimator,
                 max_batch_size: int = 64, max_wait_ms: float = 2.0,
                 cache_size: int = 1024, max_inflight: int = 256,
                 plan_cache_size: int = 256,
                 parse_cache_size: int = 512,
                 model_version: str | None = None, tick_every: int = 0,
                 latency_slo: float = 0.5, qerror_slo: float = 10.0,
                 slo_objective: float = 0.99) -> None:
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}")
        if tick_every < 0:
            raise ValueError(f"tick_every must be >= 0, got {tick_every}")
        self._estimator = estimator
        self._plan_cache = PlanCache(max_size=plan_cache_size)
        self._parse_cache = ParseCache(max_size=parse_cache_size)
        self._fused = FusedEstimatePath.try_build(estimator,
                                                  self._plan_cache)
        estimate_batch = (self._fused.estimate_batch
                          if self._fused is not None
                          else estimator.estimate_batch)
        self._estimate_batch = estimate_batch
        self._batcher = MicroBatcher(estimate_batch,
                                     max_batch_size=max_batch_size,
                                     max_wait_ms=max_wait_ms)
        self._cache = EstimateCache(max_size=cache_size)
        self._max_inflight = max_inflight
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._closed = False
        # --- accuracy-aware telemetry (repro.obs v2) ------------------
        self._model_version = (model_version
                               or getattr(estimator, "name", None)
                               or type(estimator).__name__)
        featurizer = getattr(estimator, "featurizer", None)
        if isinstance(featurizer, Featurizer):
            self._table_label = featurizer.table_name
            self._qft_label = type(featurizer).__name__
        else:
            self._table_label = "-"
            self._qft_label = type(estimator).__name__
        self._tick_every = tick_every
        self._request_seq = 0
        self._monitor = QueryFeedbackMonitor()
        windows = obs.get_windows()
        self._latency_window = windows.histogram(
            "serve.request.seconds.window", label_names=("model", "cache"))
        self._qerror_window = windows.histogram(
            "serve.qerror.window", label_names=("model", "table", "qft"))
        self._latency_slo = windows.slo("serve.latency.slo",
                                        target=latency_slo,
                                        objective=slo_objective)
        self._qerror_slo = windows.slo("serve.qerror.slo",
                                       target=qerror_slo,
                                       objective=slo_objective)

    @property
    def estimator(self) -> CardinalityEstimator:
        """The estimator answering this service's requests."""
        return self._estimator

    @property
    def cache(self) -> EstimateCache:
        """The service's estimate cache (for stats and tests)."""
        return self._cache

    @property
    def batcher(self) -> MicroBatcher:
        """The service's micro-batcher (for stats and tests)."""
        return self._batcher

    @property
    def plan_cache(self) -> PlanCache:
        """The shape-keyed plan cache (for stats and tests)."""
        return self._plan_cache

    @property
    def parse_cache(self) -> ParseCache:
        """The fingerprint-keyed parse-template cache (for stats/tests)."""
        return self._parse_cache

    @property
    def fused(self) -> FusedEstimatePath | None:
        """The fused estimate path, or ``None`` when bypassed."""
        return self._fused

    @property
    def model_version(self) -> str:
        """The model-version label on this service's telemetry."""
        return self._model_version

    @property
    def feedback_monitor(self) -> QueryFeedbackMonitor:
        """The drift monitor fed by :meth:`feedback` (for stats/tests)."""
        return self._monitor

    def parse(self, sql: str) -> Query:
        """Parse request SQL into a query AST (``ValueError`` family on
        malformed input, so callers can map it to a 400).

        Parameterized statements hit the fingerprint-keyed
        :class:`~repro.serve.cache.ParseCache`: an instance of a seen
        template re-binds the cached AST with its own literals instead
        of re-running the parser; only templates whose round-trip
        self-check passed are ever cached, so results are identical
        either way.
        """
        if not self._parse_cache.enabled:
            return parse_query(sql)
        fingerprint, literals = fingerprint_sql(sql)
        statement = self._parse_cache.lookup(fingerprint)
        if statement is not None:
            # Statements sharing a fingerprint differ only in literal
            # text, so the literal count always matches the template's.
            return bind_template(statement.template, literals)
        query = parse_query(sql)
        self._remember_statement(fingerprint, query, literals)
        return query

    def _remember_statement(self, fingerprint: str, query: Query,
                            literals: tuple[float, ...]) -> None:
        """Template-ize a first-seen statement into the parse cache.

        Stores the re-bindable template together with its planned form
        (when the fused path can shape-compile it); statements whose
        round-trip self-check fails stay uncached and every instance
        parses from scratch.
        """
        template = make_template(query, literals)
        if template is None:
            return
        planned = (self._fused.plan_statement(template)
                   if self._fused is not None else None)
        self._parse_cache.store(fingerprint, _Statement(template, planned))

    def estimate(self, query: Query, sql: str | None = None,
                 trace_id: int | None = None) -> tuple[float, bool]:
        """Estimate one query; returns ``(estimate, was_cached)``.

        Cache hit short-circuits; a miss rides the micro-batcher and the
        result is cached on the way out.  Saturation raises
        :class:`ServiceUnavailableError` *before* any work is queued.
        ``sql``/``trace_id`` enrich the request's wide event and join
        its spans to the caller's trace; both are optional.
        """
        with _RequestTelemetry(self, sql, trace_id) as telemetry, \
                obs.use_trace_context(trace_id or obs.current_trace_id()), \
                self._admit(1), \
                obs.span("serve.request", metric="serve.request.seconds"):
            registry = obs.get_registry()
            registry.counter("serve.requests_total").inc()
            registry.counter("serve.queries_total").inc()
            # Serializing the cache key costs more than a dict probe;
            # skip it entirely when the cache cannot hit anyway.
            if self._cache.enabled:
                key = query_cache_key(query)
                cached = self._cache.lookup(key)
                if cached is not None:
                    telemetry.cache = "hit"
                    telemetry.estimate = cached
                    return cached, True
            try:
                request = self._batcher.submit_request(
                    query, trace_id=trace_id)
            except BatcherClosedError as exc:
                raise ServiceUnavailableError(str(exc)) from exc
            estimate = request.future.result()
            telemetry.cache = "miss"
            telemetry.batch_id = request.batch_id
            telemetry.estimate = estimate
            if self._cache.enabled:
                self._cache.store(key, estimate)
            return estimate, False

    def estimate_many(self, queries: list[Query],
                      trace_id: int | None = None) -> list[float]:
        """Estimate a client-supplied batch in one estimator call.

        The batch is already amortised, so misses bypass the collection
        window and go straight through ``estimate_batch``; individual
        cache hits are still honoured and misses are cached.
        """
        with _RequestTelemetry(self, None, trace_id) as telemetry, \
                obs.use_trace_context(trace_id or obs.current_trace_id()), \
                self._admit(1), \
                obs.span("serve.request", metric="serve.request.seconds",
                         n_queries=len(queries)):
            telemetry.cache = "batch"
            registry = obs.get_registry()
            registry.counter("serve.requests_total").inc()
            registry.counter("serve.queries_total").inc(len(queries))
            if self._closed:
                raise ServiceUnavailableError("service is shut down")
            results: list[float | None] = [None] * len(queries)
            misses: list[tuple[int, Query, str | None]] = []
            if self._cache.enabled:
                for position, query in enumerate(queries):
                    key = query_cache_key(query)
                    value = self._cache.lookup(key)
                    if value is None:
                        misses.append((position, query, key))
                    else:
                        results[position] = value
            else:
                # Key serialization is pure waste against a disabled
                # cache; every query is a miss by construction.
                misses = [(position, query, None)
                          for position, query in enumerate(queries)]
            if misses:
                registry.counter("serve.batches_total").inc()
                registry.histogram("serve.batch.size").record(len(misses))
                with obs.span("serve.batch.execute", n_queries=len(misses),
                              metric="serve.batch.execute.seconds"):
                    estimates = self._estimate_batch(
                        [query for _, query, _ in misses])
                for (position, _, key), estimate in zip(misses, estimates):
                    value = float(estimate)
                    if key is not None:
                        self._cache.store(key, value)
                    results[position] = value
            return [float(value) for value in results]

    def estimate_many_sql(self, sqls: list[str],
                          trace_id: int | None = None) -> list[float]:
        """Estimate a batch straight from SQL text (the batch endpoint).

        This is the serving hot path's top: when the fused path can
        shape-plan statements, the parse cache is on, and the
        exact-match estimate cache is off (its keys need bound
        queries), instances of already-seen statements skip AST
        construction entirely — fingerprint → planned statement →
        literals gathered into the stitched encode.  First-seen
        statements, uncacheable templates, and statements outside the
        planned class ride the bound-AST path within the same request;
        in every configuration the results are bitwise-identical to
        ``estimate_many([parse(sql) for sql in sqls])``, which is also
        the literal fallback whenever the planned leg is unavailable.
        """
        fused = self._fused
        if (fused is None or not fused.supports_planned_statements
                or self._cache.enabled or not self._parse_cache.enabled):
            return self.estimate_many([self.parse(sql) for sql in sqls],
                                      trace_id=trace_id)
        with _RequestTelemetry(self, None, trace_id) as telemetry, \
                obs.use_trace_context(trace_id or obs.current_trace_id()), \
                self._admit(1), \
                obs.span("serve.request", metric="serve.request.seconds",
                         n_queries=len(sqls)):
            telemetry.cache = "batch"
            registry = obs.get_registry()
            registry.counter("serve.requests_total").inc()
            registry.counter("serve.queries_total").inc(len(sqls))
            if self._closed:
                raise ServiceUnavailableError("service is shut down")
            n = len(sqls)
            results: list[float] = [0.0] * n
            planned_pos: list[int] = []
            planned_stmts: list[PlannedStatement] = []
            planned_rows: list[np.ndarray] = []
            query_pos: list[int] = []
            query_objs: list[Query] = []
            for position, sql in enumerate(sqls):
                fingerprint, literals = fingerprint_sql(sql)
                statement = self._parse_cache.lookup(fingerprint)
                if statement is None:
                    query = parse_query(sql)
                    self._remember_statement(fingerprint, query, literals)
                    query_pos.append(position)
                    query_objs.append(query)
                elif statement.planned is not None:
                    planned = statement.planned
                    planned_pos.append(position)
                    planned_stmts.append(planned)
                    planned_rows.append(np.asarray(
                        literals, dtype=np.float64)[planned.perm])
                else:
                    query_pos.append(position)
                    query_objs.append(
                        bind_template(statement.template, literals))
            if n:
                registry.counter("serve.batches_total").inc()
                registry.histogram("serve.batch.size").record(n)
            with obs.span("serve.batch.execute", n_queries=n,
                          metric="serve.batch.execute.seconds"):
                if planned_stmts:
                    estimates = fused.estimate_planned(
                        planned_stmts, planned_rows).tolist()
                    for position, estimate in zip(planned_pos, estimates):
                        results[position] = estimate
                if query_objs:
                    estimates = fused.estimate_batch(query_objs).tolist()
                    for position, estimate in zip(query_pos, estimates):
                        results[position] = estimate
            return results

    def feedback(self, sql: str, true_cardinality: float,
                 estimate: float | None = None,
                 trace_id: int | None = None) -> tuple[float, float]:
        """Report an executed query's true cardinality; returns
        ``(qerror, estimate)``.

        This closes the accuracy loop: the observed q-error (floored at
        cardinality 1, the paper's convention) feeds the per-model
        ``serve.qerror.window`` monitor, the ``serve.qerror.slo`` burn
        rate, the drift :class:`~repro.feedback.QueryFeedbackMonitor`,
        and the worst-q-error exemplar reservoir (which keeps ``sql``
        itself).  ``estimate`` is the estimate the caller was served;
        when omitted the service re-estimates the query directly
        (bypassing caches and admission — feedback must not compete
        with live traffic for in-flight slots).
        """
        with obs.use_trace_context(trace_id or obs.current_trace_id()), \
                obs.span("serve.feedback"):
            query = self.parse(sql)
            if estimate is None:
                estimate = float(self._estimate_batch([query])[0])
            true_floored = max(float(true_cardinality), 1.0)
            estimate_floored = max(float(estimate), 1.0)
            observed = float(qerror(true_floored, estimate_floored))
            self._monitor.record(true_cardinality, estimate)
            self._qerror_window.observe(observed, model=self._model_version,
                                        table=self._table_label,
                                        qft=self._qft_label)
            self._qerror_slo.observe(observed)
            registry = obs.get_registry()
            registry.counter("serve.feedback_total").inc()
            registry.histogram("serve.feedback.qerror").record(observed)
            try:
                fingerprint, _ = fingerprint_sql(sql)
            except (ValueError, SqlSyntaxError):
                fingerprint = None
            if fingerprint is not None:
                obs.get_event_log().attach_qerror(fingerprint, observed,
                                                  sql=sql)
            self._bump_tick()
            return observed, float(estimate)

    def _record_request(self, telemetry: "_RequestTelemetry",
                        error: str | None) -> None:
        """Emit one finished request's telemetry (event + windows)."""
        fingerprint = None
        if telemetry.sql is not None:
            try:
                fingerprint, _ = fingerprint_sql(telemetry.sql)
            except (ValueError, SqlSyntaxError):
                fingerprint = None
        obs.get_event_log().record(
            trace_id=telemetry.trace_id,
            fingerprint=fingerprint,
            sql=telemetry.sql,
            batch_id=telemetry.batch_id,
            model_version=self._model_version,
            cache=telemetry.cache,
            latency_seconds=telemetry.watch.seconds,
            estimate=telemetry.estimate,
            error=error,
        )
        cache_label = telemetry.cache or ("error" if error else "none")
        self._latency_window.observe(telemetry.watch.seconds,
                                     model=self._model_version,
                                     cache=cache_label)
        self._latency_slo.observe(telemetry.watch.seconds)
        self._bump_tick()

    def _bump_tick(self) -> None:
        """Advance the global windows every ``tick_every`` requests."""
        if not self._tick_every:
            return
        with self._inflight_lock:
            self._request_seq += 1
            advance = self._request_seq % self._tick_every == 0
        if advance:
            obs.get_windows().advance_all()

    def close(self, drain: bool = True) -> None:
        """Refuse new requests and drain (or cancel) queued ones."""
        with self._inflight_lock:
            self._closed = True
        self._batcher.close(drain=drain)

    def _admit(self, weight: int) -> "_Admission":
        registry = obs.get_registry()
        with self._inflight_lock:
            if self._closed:
                registry.counter("serve.rejected_total").inc()
                raise ServiceUnavailableError("service is shut down")
            if self._inflight + weight > self._max_inflight:
                registry.counter("serve.rejected_total").inc()
                raise ServiceUnavailableError(
                    f"service saturated ({self._inflight} requests in "
                    f"flight, limit {self._max_inflight})")
            self._inflight += weight
        return _Admission(self, weight)


class _Admission:
    """Context manager releasing an admitted request's in-flight slot."""

    __slots__ = ("_service", "_weight")

    def __init__(self, service: EstimationService, weight: int) -> None:
        self._service = service
        self._weight = weight

    def __enter__(self) -> "_Admission":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        with self._service._inflight_lock:
            self._service._inflight -= self._weight
        return False


class _RequestHandler(JsonRequestHandler):
    """Routes the JSON API onto an :class:`EstimationService`.

    Subclassed per server with the ``service`` class attribute bound;
    never instantiated directly.  Transport plumbing (keep-alive,
    drain, JSON encode/decode) comes from
    :class:`~repro.serve.http.JsonRequestHandler`.
    """

    service: EstimationService

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        """Serve ``/healthz`` and the two ``/metrics`` renderings.

        ``/metrics`` keeps its byte-stable JSON snapshot; the
        Prometheus text exposition answers on ``/metrics.prom`` and
        ``/metrics?format=prometheus`` (both render counters, gauges,
        cumulative histograms, windowed summaries, and SLO burn rates
        with labels).
        """
        parsed = urllib.parse.urlsplit(self.path)
        query = urllib.parse.parse_qs(parsed.query)
        if parsed.path == "/healthz":
            self._send_json(200, {"status": "ok"})
        elif (parsed.path == "/metrics.prom"
              or (parsed.path == "/metrics"
                  and query.get("format") == ["prometheus"])):
            body = render_prometheus()
            self._send_bytes(200, body.encode("utf-8"),
                             content_type=CONTENT_TYPE)
        elif parsed.path == "/metrics":
            body = obs.get_registry().to_json() + "\n"
            self._send_bytes(200, body.encode("utf-8"),
                             content_type="application/json")
        else:
            self._send_json(404, {"error": f"no such endpoint {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        """Serve ``/v1/estimate``, ``/v1/estimate_batch``, ``/v1/feedback``.

        A request carrying an ``X-Repro-Trace`` header adopts the
        client's trace id for the duration of handling: every span the
        service opens is stamped with it, which is what lets the
        exporter stitch client and server span logs into one trace.
        """
        trace_id = obs.parse_trace_header(
            self.headers.get(obs.TRACE_HEADER))
        with obs.use_trace_context(trace_id):
            if self.path == "/v1/estimate":
                self._handle(lambda payload: self._estimate(payload,
                                                            trace_id))
            elif self.path == "/v1/estimate_batch":
                self._handle(lambda payload: self._estimate_batch(payload,
                                                                  trace_id))
            elif self.path == "/v1/feedback":
                self._handle(lambda payload: self._feedback(payload,
                                                            trace_id))
            else:
                self._send_json(404,
                                {"error": f"no such endpoint {self.path}"})

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def _estimate(self, payload: dict, trace_id: int | None = None) -> dict:
        sql = payload.get("sql")
        if not isinstance(sql, str):
            raise ValueError('request body must carry {"sql": "<query>"}')
        estimate, cached = self.service.estimate(self.service.parse(sql),
                                                 sql=sql, trace_id=trace_id)
        return {"estimate": estimate, "cached": cached}

    def _estimate_batch(self, payload: dict,
                        trace_id: int | None = None) -> dict:
        sqls = payload.get("sql")
        if (not isinstance(sqls, list)
                or not all(isinstance(s, str) for s in sqls)):
            raise ValueError(
                'request body must carry {"sql": ["<query>", ...]}')
        return {"estimates": self.service.estimate_many_sql(
            sqls, trace_id=trace_id)}

    def _feedback(self, payload: dict, trace_id: int | None = None) -> dict:
        sql = payload.get("sql")
        true_cardinality = payload.get("true_cardinality")
        if not isinstance(sql, str) \
                or not isinstance(true_cardinality, (int, float)):
            raise ValueError(
                'request body must carry {"sql": "<query>", '
                '"true_cardinality": <number>}')
        estimate = payload.get("estimate")
        if estimate is not None and not isinstance(estimate, (int, float)):
            raise ValueError('"estimate" must be a number when present')
        observed, served = self.service.feedback(
            sql, float(true_cardinality),
            estimate=None if estimate is None else float(estimate),
            trace_id=trace_id)
        return {"qerror": observed, "estimate": served}

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _handle(self, endpoint) -> None:
        try:
            payload = self._read_json()
            response = endpoint(payload)
        except ServiceUnavailableError as exc:
            obs.get_registry().counter("serve.errors_total").inc()
            self._send_json(503, {"error": str(exc)},
                            extra_headers={
                                "Retry-After": str(exc.retry_after)})
        except (ValueError, KeyError, SqlSyntaxError, UnsupportedQueryError,
                LosslessnessError) as exc:
            # KeyError is the featurizer's unknown-attribute complaint —
            # a client mistake, not a server fault.
            obs.get_registry().counter("serve.errors_total").inc()
            message = exc.args[0] if exc.args else str(exc)
            self._send_json(400, {"error": str(message)})
        except Exception as exc:  # repro: ignore[RPR103] — mapped to a 500 response
            obs.get_registry().counter("serve.errors_total").inc()
            self._send_json(500, {"error": f"internal error: {exc}"})
        else:
            self._send_json(200, response)


class EstimationServer(ThreadedJsonServer):
    """A threaded HTTP server around one :class:`EstimationService`.

    ``port=0`` binds an ephemeral port (read it back from ``port`` after
    construction) — the form every test and the in-process benchmark
    use.  ``start()`` serves in a background thread; ``stop()`` performs
    the graceful-drain sequence described in the module docs, then
    closes the service (draining the micro-batcher).
    """

    def __init__(self, service: EstimationService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        super().__init__(_RequestHandler, host=host, port=port,
                         thread_name="repro-serve-http", service=service)
        self._service = service

    @property
    def service(self) -> EstimationService:
        """The wrapped service."""
        return self._service

    def _on_stop(self, drain: bool) -> None:
        """Close the service once the listener has fully stopped."""
        self._service.close(drain=drain)
