"""HTTP serving front-end: estimate requests in, JSON estimates out.

Two layers, separable for testing:

* :class:`EstimationService` — the transport-free core.  It owns the
  :class:`~repro.serve.batcher.MicroBatcher`, the
  :class:`~repro.serve.cache.EstimateCache`, and the admission-control
  counter, and exposes ``estimate`` / ``estimate_many`` / ``close``.
* :class:`EstimationServer` — a ``ThreadingHTTPServer`` wrapping one
  service in a small JSON API:

  ==========================  ==================================================
  ``GET  /healthz``           liveness probe, ``{"status": "ok"}``
  ``GET  /metrics``           the byte-stable runtime-metrics snapshot (JSON)
  ``POST /v1/estimate``       ``{"sql": "..."}`` → ``{"estimate": c, "cached": b}``
  ``POST /v1/estimate_batch`` ``{"sql": [...]}`` → ``{"estimates": [...]}``
  ==========================  ==================================================

Backpressure: when more than ``max_inflight`` requests are already in
flight the service refuses new work and the server answers ``503`` with
a ``Retry-After`` header — bounded queues instead of unbounded latency.
Shutdown is graceful: the listener stops accepting, in-flight handler
threads are joined, and the batcher drains everything it already
accepted before the process lets go (no accepted request is dropped).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import obs
from repro.estimators.base import CardinalityEstimator
from repro.featurize.base import LosslessnessError
from repro.serve.batcher import BatcherClosedError, MicroBatcher
from repro.serve.cache import EstimateCache, query_cache_key
from repro.sql.ast import Query, UnsupportedQueryError
from repro.sql.parser import SqlSyntaxError, parse_query

__all__ = ["EstimationService", "EstimationServer",
           "ServiceUnavailableError"]

#: Seconds a rejected client should wait before retrying (503 header).
_RETRY_AFTER_SECONDS = 1


class ServiceUnavailableError(RuntimeError):
    """The service is saturated (or closed) and refused the request."""

    def __init__(self, message: str,
                 retry_after: int = _RETRY_AFTER_SECONDS) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class EstimationService:
    """Cache → micro-batcher → estimator pipeline with admission control.

    Parameters
    ----------
    estimator:
        A fitted estimator (``estimate_batch`` must be usable from the
        batcher's worker thread).
    max_batch_size / max_wait_ms:
        Micro-batching knobs, see :class:`~repro.serve.batcher.MicroBatcher`.
    cache_size:
        LRU estimate-cache capacity; ``0`` disables caching.
    max_inflight:
        Admission bound: requests beyond this many concurrently in
        flight are rejected with :class:`ServiceUnavailableError`.
    """

    def __init__(self, estimator: CardinalityEstimator,
                 max_batch_size: int = 64, max_wait_ms: float = 2.0,
                 cache_size: int = 1024, max_inflight: int = 256) -> None:
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}")
        self._estimator = estimator
        self._batcher = MicroBatcher(estimator.estimate_batch,
                                     max_batch_size=max_batch_size,
                                     max_wait_ms=max_wait_ms)
        self._cache = EstimateCache(max_size=cache_size)
        self._max_inflight = max_inflight
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._closed = False

    @property
    def estimator(self) -> CardinalityEstimator:
        """The estimator answering this service's requests."""
        return self._estimator

    @property
    def cache(self) -> EstimateCache:
        """The service's estimate cache (for stats and tests)."""
        return self._cache

    @property
    def batcher(self) -> MicroBatcher:
        """The service's micro-batcher (for stats and tests)."""
        return self._batcher

    def parse(self, sql: str) -> Query:
        """Parse request SQL into a query AST (``ValueError`` family on
        malformed input, so callers can map it to a 400)."""
        return parse_query(sql)

    def estimate(self, query: Query) -> tuple[float, bool]:
        """Estimate one query; returns ``(estimate, was_cached)``.

        Cache hit short-circuits; a miss rides the micro-batcher and the
        result is cached on the way out.  Saturation raises
        :class:`ServiceUnavailableError` *before* any work is queued.
        """
        with self._admit(1), obs.span("serve.request",
                                      metric="serve.request.seconds"):
            registry = obs.get_registry()
            registry.counter("serve.requests_total").inc()
            registry.counter("serve.queries_total").inc()
            key = query_cache_key(query)
            cached = self._cache.lookup(key)
            if cached is not None:
                return cached, True
            try:
                future = self._batcher.submit(query)
            except BatcherClosedError as exc:
                raise ServiceUnavailableError(str(exc)) from exc
            estimate = future.result()
            self._cache.store(key, estimate)
            return estimate, False

    def estimate_many(self, queries: list[Query]) -> list[float]:
        """Estimate a client-supplied batch in one estimator call.

        The batch is already amortised, so misses bypass the collection
        window and go straight through ``estimate_batch``; individual
        cache hits are still honoured and misses are cached.
        """
        with self._admit(1), obs.span("serve.request",
                                      metric="serve.request.seconds",
                                      n_queries=len(queries)):
            registry = obs.get_registry()
            registry.counter("serve.requests_total").inc()
            registry.counter("serve.queries_total").inc(len(queries))
            if self._closed:
                raise ServiceUnavailableError("service is shut down")
            results: list[float | None] = [None] * len(queries)
            misses: list[tuple[int, Query, str]] = []
            for position, query in enumerate(queries):
                key = query_cache_key(query)
                value = self._cache.lookup(key)
                if value is None:
                    misses.append((position, query, key))
                else:
                    results[position] = value
            if misses:
                registry.counter("serve.batches_total").inc()
                registry.histogram("serve.batch.size").record(len(misses))
                with obs.span("serve.batch.execute", n_queries=len(misses),
                              metric="serve.batch.execute.seconds"):
                    estimates = self._estimator.estimate_batch(
                        [query for _, query, _ in misses])
                for (position, _, key), estimate in zip(misses, estimates):
                    value = float(estimate)
                    self._cache.store(key, value)
                    results[position] = value
            return [float(value) for value in results]

    def close(self, drain: bool = True) -> None:
        """Refuse new requests and drain (or cancel) queued ones."""
        with self._inflight_lock:
            self._closed = True
        self._batcher.close(drain=drain)

    def _admit(self, weight: int) -> "_Admission":
        registry = obs.get_registry()
        with self._inflight_lock:
            if self._closed:
                registry.counter("serve.rejected_total").inc()
                raise ServiceUnavailableError("service is shut down")
            if self._inflight + weight > self._max_inflight:
                registry.counter("serve.rejected_total").inc()
                raise ServiceUnavailableError(
                    f"service saturated ({self._inflight} requests in "
                    f"flight, limit {self._max_inflight})")
            self._inflight += weight
        return _Admission(self, weight)


class _Admission:
    """Context manager releasing an admitted request's in-flight slot."""

    __slots__ = ("_service", "_weight")

    def __init__(self, service: EstimationService, weight: int) -> None:
        self._service = service
        self._weight = weight

    def __enter__(self) -> "_Admission":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        with self._service._inflight_lock:
            self._service._inflight -= self._weight
        return False


class _RequestHandler(BaseHTTPRequestHandler):
    """Routes the JSON API onto an :class:`EstimationService`.

    Subclassed per server with the ``service`` class attribute bound;
    never instantiated directly.
    """

    service: EstimationService
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        """Serve ``/healthz`` and ``/metrics``."""
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok"})
        elif self.path == "/metrics":
            body = obs.get_registry().to_json() + "\n"
            self._send_bytes(200, body.encode("utf-8"),
                             content_type="application/json")
        else:
            self._send_json(404, {"error": f"no such endpoint {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        """Serve ``/v1/estimate`` and ``/v1/estimate_batch``."""
        if self.path == "/v1/estimate":
            self._handle(self._estimate)
        elif self.path == "/v1/estimate_batch":
            self._handle(self._estimate_batch)
        else:
            self._send_json(404, {"error": f"no such endpoint {self.path}"})

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def _estimate(self, payload: dict) -> dict:
        sql = payload.get("sql")
        if not isinstance(sql, str):
            raise ValueError('request body must carry {"sql": "<query>"}')
        estimate, cached = self.service.estimate(self.service.parse(sql))
        return {"estimate": estimate, "cached": cached}

    def _estimate_batch(self, payload: dict) -> dict:
        sqls = payload.get("sql")
        if (not isinstance(sqls, list)
                or not all(isinstance(s, str) for s in sqls)):
            raise ValueError(
                'request body must carry {"sql": ["<query>", ...]}')
        queries = [self.service.parse(sql) for sql in sqls]
        return {"estimates": self.service.estimate_many(queries)}

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _handle(self, endpoint) -> None:
        try:
            payload = self._read_json()
            response = endpoint(payload)
        except ServiceUnavailableError as exc:
            obs.get_registry().counter("serve.errors_total").inc()
            self._send_json(503, {"error": str(exc)},
                            extra_headers={
                                "Retry-After": str(exc.retry_after)})
        except (ValueError, KeyError, SqlSyntaxError, UnsupportedQueryError,
                LosslessnessError) as exc:
            # KeyError is the featurizer's unknown-attribute complaint —
            # a client mistake, not a server fault.
            obs.get_registry().counter("serve.errors_total").inc()
            message = exc.args[0] if exc.args else str(exc)
            self._send_json(400, {"error": str(message)})
        except Exception as exc:  # repro: ignore[RPR103] — mapped to a 500 response
            obs.get_registry().counter("serve.errors_total").inc()
            self._send_json(500, {"error": f"internal error: {exc}"})
        else:
            self._send_json(200, response)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") \
                from exc
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _send_json(self, status: int, payload: dict,
                   extra_headers: dict | None = None) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._send_bytes(status, body, content_type="application/json",
                         extra_headers=extra_headers)

    def _send_bytes(self, status: int, body: bytes, content_type: str,
                    extra_headers: dict | None = None) -> None:
        # One request per connection: an idle keep-alive socket would
        # otherwise pin its handler thread and stall the drain join.
        self.close_connection = True
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Connection", "close")
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence the default stderr access log (obs metrics cover it)."""


class EstimationServer:
    """A threaded HTTP server around one :class:`EstimationService`.

    ``port=0`` binds an ephemeral port (read it back from ``port`` after
    construction) — the form every test and the in-process benchmark
    use.  ``start()`` serves in a background thread; ``stop()`` performs
    the graceful-drain sequence described in the module docs.
    """

    def __init__(self, service: EstimationService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._service = service
        handler = type("BoundRequestHandler", (_RequestHandler,),
                       {"service": service,
                        "__doc__": _RequestHandler.__doc__})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        # Graceful drain: handler threads must be joinable (non-daemon)
        # and server_close() must wait for them.
        self._httpd.daemon_threads = False
        self._httpd.block_on_close = True
        self._thread: threading.Thread | None = None

    @property
    def service(self) -> EstimationService:
        """The wrapped service."""
        return self._service

    @property
    def host(self) -> str:
        """Bound host address."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (useful after binding port 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "EstimationServer":
        """Begin serving in a background thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-serve-http",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop accepting, join in-flight handlers, drain the batcher.

        Every request accepted before ``stop`` completes normally; only
        then does the service close.  Idempotent.
        """
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._service.close(drain=drain)

    def __enter__(self) -> "EstimationServer":
        """Start on context entry."""
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Graceful stop on context exit."""
        self.stop(drain=True)
        return False
