"""``repro.serve`` — a production-style cardinality-estimation service.

The paper's pitch for learned estimators is operational: cheap, fast
estimates inside a running system.  This package closes that loop by
putting a fitted estimator behind a service boundary:

* :mod:`repro.serve.registry` — versioned on-disk model registry with
  manifests, checksums, and ``latest`` resolution.
* :mod:`repro.serve.batcher` — micro-batching executor that amortises
  the columnar featurize → predict path across concurrent requests.
* :mod:`repro.serve.cache` — thread-safe LRU caches: exact-match
  estimates keyed on the canonical serialized query form, parsed
  statement templates keyed on the literal-masked SQL fingerprint, and
  compiled shape plans keyed on the literal-masked query structure.
* :mod:`repro.serve.fused` — the fused compile→encode→predict hot path
  (shape-plan reuse + compiled-forest inference) micro-batches ride
  when the estimator supports it.
* :mod:`repro.serve.server` — threaded HTTP JSON API with admission
  control, ``/metrics`` export, and graceful drain.
* :mod:`repro.serve.client` — minimal stdlib client with bounded
  ``Retry-After`` retries on saturation.

Everything is stdlib + numpy; ``repro serve`` on the CLI boots a server
and ``repro bench serve`` measures its latency/throughput envelope.
"""

from repro.serve.batcher import BatcherClosedError, MicroBatcher
from repro.serve.cache import (
    EstimateCache,
    ParseCache,
    PlanCache,
    query_cache_key,
)
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.fused import FusedEstimatePath
from repro.serve.registry import ModelRegistry, ModelVersion, RegistryError
from repro.serve.server import (
    EstimationServer,
    EstimationService,
    ServiceUnavailableError,
)

__all__ = [
    "MicroBatcher", "BatcherClosedError",
    "EstimateCache", "ParseCache", "PlanCache", "query_cache_key",
    "FusedEstimatePath",
    "ServeClient", "ServeClientError",
    "ModelRegistry", "ModelVersion", "RegistryError",
    "EstimationService", "EstimationServer", "ServiceUnavailableError",
]
