"""Thread-safe LRU caches for the serving layer.

Three caches with different keys and granularities, all bounded LRU
maps built on one locked core (:class:`_LruCache`):

* :class:`EstimateCache` — exact-match results.  Production query
  streams are heavily repetitive — the same dashboard, ORM, or prepared
  statement issues the same shapes over and over — and a cardinality
  estimate is a pure function of the query (Equation 4), so caching is
  always sound.  The cache keys on the **canonical serialized query
  form** (:func:`repro.workloads.serialization.canonical_query_text`),
  which means a query hits the cache no matter which surface it arrived
  through: an HTTP body, a workload file, or a generator.
* :class:`ParseCache` — parsed statement templates.  Keys are SQL
  *fingerprints* (:func:`repro.sql.parser.fingerprint_sql` — the
  statement text with numeric literals masked), so a parameterized
  statement's thousandth instance re-binds the cached AST instead of
  re-running the tokenizer and recursive descent.
* :class:`PlanCache` — compiled shape plans for the fused estimate
  path.  Keys are query *shapes* (:func:`repro.featurize.batch.query_shape`
  — boolean structure with numeric literals masked), so a prepared
  statement's thousandth parameterisation reuses the plan its first
  compile produced even though every literal differs and the exact-match
  cache misses.

The three form the serving pipeline's cache ladder: fingerprint → AST
(parse), shape → plan (compile), exact query → estimate (everything).

Hit/miss/eviction counts are mirrored into the process-global
:mod:`repro.obs.metrics_runtime` registry (``serve.cache.*`` /
``serve.parse_cache.*`` / ``serve.plan_cache.*``), so the ``/metrics``
endpoint exports them alongside the rest of the serving metrics.
"""

from __future__ import annotations

from collections import OrderedDict
from threading import Lock

from repro import obs
from repro.featurize.batch import CompiledPlan
from repro.sql.ast import Query
from repro.workloads.serialization import canonical_query_text

__all__ = ["EstimateCache", "ParseCache", "PlanCache", "query_cache_key"]


def query_cache_key(query: Query) -> str:
    """Canonical cache key of a query (its serialized single-line SQL)."""
    return canonical_query_text(query)


class _LruCache:
    """A bounded, thread-safe LRU map with mirrored hit/miss counters.

    ``max_size=0`` disables caching entirely: every lookup misses, no
    entry is stored, and no counters move — the configuration the
    serving benchmark uses to measure uncached paths honestly.
    Subclasses set ``_metric_prefix`` to the global-registry counter
    namespace (``<prefix>.hits`` / ``.misses`` / ``.evictions``).
    """

    _metric_prefix = "serve.cache"

    def __init__(self, max_size: int) -> None:
        if max_size < 0:
            raise ValueError(f"max_size must be >= 0, got {max_size}")
        self._max_size = max_size
        self._entries: OrderedDict = OrderedDict()
        self._lock = Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        # Metric names resolve once here from the subclass's literal
        # prefix; call sites must pass pre-resolved names (RPR110 keeps
        # dynamically built strings out of metric lookups).
        self._hits_metric = self._metric_prefix + ".hits"
        self._misses_metric = self._metric_prefix + ".misses"
        self._evictions_metric = self._metric_prefix + ".evictions"

    @property
    def max_size(self) -> int:
        """Configured capacity (0 = caching disabled)."""
        return self._max_size

    @property
    def enabled(self) -> bool:
        """Whether the cache stores anything at all."""
        return self._max_size > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, key):
        """The cached value for ``key``, or ``None`` on a miss.

        A hit refreshes the entry's recency.  Both outcomes are counted
        (locally and in the global metrics registry); a disabled cache
        counts nothing.
        """
        if not self._max_size:
            return None
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
            else:
                self._entries.move_to_end(key)
                self._hits += 1
        registry = obs.get_registry()
        if value is None:
            registry.counter(self._misses_metric).inc()
        else:
            registry.counter(self._hits_metric).inc()
        return value

    def store(self, key, value) -> None:
        """Insert (or refresh) a value, evicting the LRU entry if full."""
        if not self._max_size:
            return
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_size:
                self._entries.popitem(last=False)
                evicted += 1
            self._evictions += evicted
        if evicted:
            obs.get_registry().counter(self._evictions_metric).inc(evicted)

    def stats(self) -> dict:
        """Local hit/miss/eviction/size counters (JSON-serialisable)."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "size": len(self._entries),
                "max_size": self._max_size,
            }

    def clear(self) -> None:
        """Drop every entry (counters keep their values)."""
        with self._lock:
            self._entries.clear()


class EstimateCache(_LruCache):
    """Exact-match query key -> estimate (``serve.cache.*`` counters).

    Values are stored as ``float``; see the module docstring for why
    exact-match caching of estimates is always sound.
    """

    _metric_prefix = "serve.cache"

    def __init__(self, max_size: int = 1024) -> None:
        super().__init__(max_size)

    def store(self, key: str, estimate: float) -> None:
        """Insert (or refresh) an estimate, evicting the LRU if full."""
        super().store(key, float(estimate))


class ParseCache(_LruCache):
    """SQL fingerprint -> parsed statement template
    (``serve.parse_cache.*`` counters).

    Sits in front of the parser on the request path: an instance of a
    previously seen statement template skips tokenization and recursive
    descent entirely and re-binds the cached AST with its own literals
    (:func:`repro.sql.parser.bind_template`).  Only templates that
    passed :func:`repro.sql.parser.make_template`'s round-trip
    self-check are ever stored, so a hit is always equivalent to a
    fresh parse.
    """

    _metric_prefix = "serve.parse_cache"

    def __init__(self, max_size: int = 512) -> None:
        super().__init__(max_size)


class PlanCache(_LruCache):
    """Query shape key -> compiled plan (``serve.plan_cache.*`` counters).

    Sits beside the exact-match :class:`EstimateCache` in the fused
    serving path: a query whose literals differ from anything seen
    before still reuses the :class:`~repro.featurize.batch.CompiledPlan`
    of its shape, skipping the AST re-compile entirely.  ``max_size=0``
    disables the cache (every lookup misses, nothing is stored) — the
    fused path then compiles per shape per batch.
    """

    _metric_prefix = "serve.plan_cache"

    def __init__(self, max_size: int = 256) -> None:
        super().__init__(max_size)

    def store(self, key: tuple, plan: CompiledPlan) -> None:
        """Insert (or refresh) a plan, evicting the LRU entry if full."""
        super().store(key, plan)
