"""Thread-safe LRU cache of cardinality estimates.

Production query streams are heavily repetitive — the same dashboard,
ORM, or prepared statement issues the same shapes over and over — and a
cardinality estimate is a pure function of the query (Equation 4), so
caching is always sound.  The cache keys on the **canonical serialized
query form** (:func:`repro.workloads.serialization.canonical_query_text`),
which means a query hits the cache no matter which surface it arrived
through: an HTTP body, a workload file, or a generator.

Hit/miss/eviction counts are mirrored into the process-global
:mod:`repro.obs.metrics_runtime` registry (``serve.cache.hits`` /
``serve.cache.misses`` / ``serve.cache.evictions``), so the ``/metrics``
endpoint exports them alongside the rest of the serving metrics.
"""

from __future__ import annotations

from collections import OrderedDict
from threading import Lock

from repro import obs
from repro.sql.ast import Query
from repro.workloads.serialization import canonical_query_text

__all__ = ["EstimateCache", "query_cache_key"]


def query_cache_key(query: Query) -> str:
    """Canonical cache key of a query (its serialized single-line SQL)."""
    return canonical_query_text(query)


class EstimateCache:
    """A bounded, thread-safe LRU map of query key -> estimate.

    ``max_size=0`` disables caching entirely: every lookup misses, no
    entry is stored, and no counters move — the configuration the
    serving benchmark uses to measure the uncached path honestly.
    """

    def __init__(self, max_size: int = 1024) -> None:
        if max_size < 0:
            raise ValueError(f"max_size must be >= 0, got {max_size}")
        self._max_size = max_size
        self._entries: OrderedDict[str, float] = OrderedDict()
        self._lock = Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def max_size(self) -> int:
        """Configured capacity (0 = caching disabled)."""
        return self._max_size

    @property
    def enabled(self) -> bool:
        """Whether the cache stores anything at all."""
        return self._max_size > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, key: str) -> float | None:
        """The cached estimate for ``key``, or ``None`` on a miss.

        A hit refreshes the entry's recency.  Both outcomes are counted
        (locally and in the global metrics registry); a disabled cache
        counts nothing.
        """
        if not self._max_size:
            return None
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
            else:
                self._entries.move_to_end(key)
                self._hits += 1
        registry = obs.get_registry()
        if value is None:
            registry.counter("serve.cache.misses").inc()
        else:
            registry.counter("serve.cache.hits").inc()
        return value

    def store(self, key: str, estimate: float) -> None:
        """Insert (or refresh) an estimate, evicting the LRU entry if full."""
        if not self._max_size:
            return
        evicted = 0
        with self._lock:
            self._entries[key] = float(estimate)
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_size:
                self._entries.popitem(last=False)
                evicted += 1
            self._evictions += evicted
        if evicted:
            obs.get_registry().counter("serve.cache.evictions").inc(evicted)

    def stats(self) -> dict:
        """Local hit/miss/eviction/size counters (JSON-serialisable)."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "size": len(self._entries),
                "max_size": self._max_size,
            }

    def clear(self) -> None:
        """Drop every entry (counters keep their values)."""
        with self._lock:
            self._entries.clear()
