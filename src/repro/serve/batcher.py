"""Micro-batching executor for concurrent estimate requests.

Learned estimators answer a batch of ``n`` queries far cheaper than
``n`` single queries: the columnar compile → encode featurization and
the model's matrix forward pass amortise per-call dispatch (this repo's
``BENCH_featurize.json`` measures the gap at ~an order of magnitude).
A serving process therefore wants *micro-batching*: concurrent requests
are collected for at most ``max_wait_ms`` (or until ``max_batch_size``
are waiting) and dispatched through ``estimate_batch`` as one batch,
with each caller receiving its own future.

Correctness contract: batch featurization is bitwise-identical to the
scalar path (PR 2's equivalence gate) and the models predict row-wise,
so a request's result does not depend on which batch it happened to
ride in — ``tests/serve/test_batcher.py`` stress-asserts this.

The worker thread emits ``serve.batch.collect`` / ``serve.batch.execute``
spans and records every dispatched batch size into the
``serve.batch.size`` histogram.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, Sequence

import numpy as np

from repro import obs
from repro.sql.ast import Query

__all__ = ["MicroBatcher", "BatcherClosedError"]


class BatcherClosedError(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` after the batcher closed."""


class _Request:
    """One submitted query and the future its caller is waiting on.

    ``trace_id`` carries the submitting request's trace context across
    the thread hop into the worker (the batch-execute span links every
    trace it serves); ``batch_id`` is stamped by the worker when the
    request's batch dispatches, so the caller can attribute its request
    event to the batch that answered it.
    """

    __slots__ = ("query", "future", "trace_id", "batch_id")

    def __init__(self, query: Query, trace_id: int | None = None) -> None:
        self.query = query
        self.future: Future = Future()
        self.trace_id = trace_id
        self.batch_id: int | None = None


#: Queue sentinel that tells the worker to drain and exit.
_SHUTDOWN = object()


class MicroBatcher:
    """Collects concurrent requests into batches for ``estimate_batch``.

    Parameters
    ----------
    estimate_batch:
        The vectorized estimate function mapping a query sequence to a
        numpy vector of estimates.  :class:`~repro.serve.server.EstimationService`
        passes the fused hot path's ``estimate_batch``
        (:class:`~repro.serve.fused.FusedEstimatePath`) when the
        estimator supports it, or the estimator's own ``estimate_batch``
        bound method otherwise — both are bitwise-equivalent, so the
        batcher needs no knowledge of which one it drives.
    max_batch_size:
        Dispatch as soon as this many requests are waiting.
    max_wait_ms:
        Dispatch at most this long after the first request of a batch
        arrived, even if the batch is not full.  ``0`` dispatches
        whatever is immediately available (no artificial latency).
    """

    def __init__(self, estimate_batch: Callable[[Sequence[Query]], np.ndarray],
                 max_batch_size: int = 64, max_wait_ms: float = 2.0) -> None:
        if max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self._estimate_batch = estimate_batch
        self._max_batch_size = max_batch_size
        self._max_wait_seconds = max_wait_ms / 1000.0
        self._queue: queue.Queue = queue.Queue()
        self._batch_seq = 0
        self._closed = False
        self._drain_on_close = True
        self._close_lock = threading.Lock()
        self._worker = threading.Thread(target=self._run,
                                        name="repro-serve-batcher",
                                        daemon=True)
        self._worker.start()

    @property
    def max_batch_size(self) -> int:
        """Configured dispatch threshold."""
        return self._max_batch_size

    @property
    def max_wait_ms(self) -> float:
        """Configured collection window in milliseconds."""
        return self._max_wait_seconds * 1000.0

    def submit(self, query: Query) -> Future:
        """Enqueue one query; returns the future carrying its estimate.

        The future resolves to a ``float`` once the batch containing the
        query executes, or raises whatever ``estimate_batch`` raised for
        that batch.  Raises :class:`BatcherClosedError` once the batcher
        has been closed — requests accepted *before* close are always
        drained, never dropped.
        """
        return self.submit_request(query).future

    def submit_request(self, query: Query,
                       trace_id: int | None = None) -> _Request:
        """Enqueue one query; returns the full request handle.

        Like :meth:`submit` but exposes the :class:`_Request` itself:
        ``request.future`` carries the estimate and, once resolved,
        ``request.batch_id`` identifies the dispatched batch the query
        rode in.  ``trace_id`` joins the request's trace to that batch's
        execute span (a ``links`` span attribute).
        """
        with self._close_lock:
            if self._closed:
                raise BatcherClosedError(
                    "batcher is closed; no new requests accepted")
            request = _Request(query, trace_id=trace_id)
            self._queue.put(request)
        return request

    def close(self, drain: bool = True) -> None:
        """Stop the worker; idempotent.

        With ``drain=True`` (the default, and the graceful-shutdown
        path) every already-submitted request is executed before the
        worker exits.  With ``drain=False`` pending requests' futures
        are cancelled instead.
        """
        # The join happens outside the lock: holding _close_lock while
        # waiting for the worker would stall every submit() (and a
        # concurrent close()) for the full drain time.
        with self._close_lock:
            if not self._closed:
                self._closed = True
                self._drain_on_close = drain
                self._queue.put(_SHUTDOWN)
        self._worker.join()

    def __enter__(self) -> "MicroBatcher":
        """Context-manager support (closing with drain on exit)."""
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Close (draining) on context exit."""
        self.close(drain=True)
        return False

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            first = self._queue.get()
            if first is _SHUTDOWN:
                self._finish_shutdown()
                return
            if self._closed and not self._drain_on_close:
                # close(drain=False): cancel instead of executing the
                # requests still queued ahead of the sentinel.
                first.future.cancel()
                continue
            batch = [first]
            if self._collect(batch):
                self._execute(batch)
                self._finish_shutdown()
                return
            self._execute(batch)

    def _collect(self, batch: list) -> bool:
        """Fill ``batch`` until full, the window expires, or shutdown.

        Returns ``True`` when the shutdown sentinel was consumed while
        collecting (the caller executes the batch, then drains).
        """
        with obs.span("serve.batch.collect",
                      max_batch_size=self._max_batch_size) as sp:
            # Deadline arithmetic needs the raw monotonic clock: the
            # remaining-wait computation cannot ride an obs span.
            deadline = time.monotonic() + self._max_wait_seconds  # repro: ignore[RPR108]
            while len(batch) < self._max_batch_size:
                remaining = deadline - time.monotonic()  # repro: ignore[RPR108]
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is _SHUTDOWN:
                    return True
                batch.append(item)
            if sp is not None:
                sp.set_attribute("n_collected", len(batch))
        return False

    def _execute(self, batch: list) -> None:
        """Dispatch one collected batch and resolve its futures.

        Stamps every request with the dispatched batch's id and links
        the execute span to each request's trace (one batch serves many
        traces; the stitched Chrome export draws a flow arrow per link).
        """
        registry = obs.get_registry()
        registry.counter("serve.batches_total").inc()
        registry.histogram("serve.batch.size").record(len(batch))
        self._batch_seq += 1
        batch_id = self._batch_seq
        links = sorted({request.trace_id for request in batch
                        if request.trace_id is not None})
        for request in batch:
            request.batch_id = batch_id
        queries = [request.query for request in batch]
        try:
            with obs.span("serve.batch.execute", n_queries=len(batch),
                          metric="serve.batch.execute.seconds",
                          batch_id=batch_id, links=links):
                estimates = self._estimate_batch(queries)
        except Exception as exc:  # repro: ignore[RPR103] — forwarded to futures
            for request in batch:
                request.future.set_exception(exc)
            return
        for request, estimate in zip(batch, estimates):
            request.future.set_result(float(estimate))

    def _finish_shutdown(self) -> None:
        """Drain (or cancel) everything still queued after the sentinel."""
        pending: list[_Request] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                pending.append(item)
        if not self._drain_on_close:
            for request in pending:
                request.future.cancel()
            return
        for start in range(0, len(pending), self._max_batch_size):
            self._execute(pending[start:start + self._max_batch_size])
