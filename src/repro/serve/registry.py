"""Versioned on-disk model registry.

A serving deployment wants named, immutable, checksummed model artifacts
rather than loose ``.npz`` paths — publish once, roll forward by
version, resolve ``latest`` at startup, and detect a corrupt or
tampered artifact before it answers traffic.  The registry layers on
:mod:`repro.persistence` (artifacts *are* ``save_estimator`` files) and
keeps everything in plain files, so the layout is rsync-able and
diff-able::

    <root>/
      <model-name>/
        v0001/
          model.npz        # the persisted estimator
          manifest.json    # name, version, sha256, size, estimator name
        v0002/
          ...

``latest`` resolves to an explicit pointer file (``latest.json``,
written atomically by :meth:`ModelRegistry.set_latest`) when one
exists, and to the highest version number otherwise — so a rollout can
promote a candidate or *roll back* to an older version without
deleting the bad artifact.  Loads verify the manifest checksum, go
through :func:`repro.persistence.load_estimator`, and are memoised in
an in-process handle cache so concurrent servers and batchers share
one fitted estimator per (name, version).  Each cached handle is keyed
by the manifest checksum it was loaded under: republishing over the
same directory (or any manifest change) invalidates the memo instead
of serving the stale estimator.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from threading import Lock

from repro.estimators.learned import LearnedEstimator
from repro.persistence import (
    FORMAT_VERSION,
    PersistenceError,
    load_estimator,
    save_estimator,
)

__all__ = ["ModelRegistry", "ModelVersion", "RegistryError",
           "ARTIFACT_FILENAME", "MANIFEST_FILENAME", "LATEST_FILENAME",
           "LATEST"]

ARTIFACT_FILENAME = "model.npz"
MANIFEST_FILENAME = "manifest.json"
#: Per-model pointer file naming the version ``latest`` resolves to.
LATEST_FILENAME = "latest.json"

#: Version alias resolving to the highest published version.
LATEST = "latest"

_VERSION_PREFIX = "v"
_VERSION_DIGITS = 4


class RegistryError(RuntimeError):
    """A registry operation failed (unknown model, bad checksum, ...)."""


@dataclass(frozen=True)
class ModelVersion:
    """One immutable published artifact: a (name, version) pair on disk."""

    name: str
    version: int
    directory: Path

    @property
    def artifact_path(self) -> Path:
        """Path of the persisted-estimator ``.npz`` file."""
        return self.directory / ARTIFACT_FILENAME

    @property
    def manifest_path(self) -> Path:
        """Path of the manifest JSON file."""
        return self.directory / MANIFEST_FILENAME

    def manifest(self) -> dict:
        """The parsed manifest (raises :class:`RegistryError` if damaged)."""
        try:
            return json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryError(
                f"unreadable manifest {self.manifest_path}: {exc}") from exc

    def label(self) -> str:
        """Human-readable ``name@vNNNN`` identifier."""
        return f"{self.name}@{_format_version(self.version)}"


def _format_version(version: int) -> str:
    return f"{_VERSION_PREFIX}{version:0{_VERSION_DIGITS}d}"


def _parse_version_dir(directory: Path) -> int | None:
    name = directory.name
    if not (directory.is_dir() and name.startswith(_VERSION_PREFIX)):
        return None
    digits = name[len(_VERSION_PREFIX):]
    if not digits.isdigit():
        return None
    return int(digits)


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class ModelRegistry:
    """Publish, resolve, and load named versioned estimator artifacts."""

    def __init__(self, root: str | Path) -> None:
        self._root = Path(root)
        # (name, version) -> (manifest checksum, estimator).  The
        # checksum is the memo's validity token: a republish over the
        # same directory rewrites the manifest, so comparing checksums
        # on every load is what keeps hot-swapped handles fresh.
        self._handles: dict[tuple[str, int],
                            tuple[str, LearnedEstimator]] = {}
        self._lock = Lock()

    @property
    def root(self) -> Path:
        """The registry's root directory."""
        return self._root

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------

    def publish(self, source: LearnedEstimator | str | Path,
                name: str) -> ModelVersion:
        """Publish an estimator (or an existing artifact file) as the
        next version of ``name``; returns the new :class:`ModelVersion`.

        The artifact and manifest are written into a scratch directory
        first and moved into place with one rename, so a crashed publish
        never leaves a half-written version behind.
        """
        if not name or "/" in name or name.startswith("."):
            raise RegistryError(f"invalid model name {name!r}")
        model_dir = self._root / name
        model_dir.mkdir(parents=True, exist_ok=True)
        version = max(self._version_numbers(name), default=0) + 1
        staging = Path(tempfile.mkdtemp(prefix=".publish-", dir=model_dir))
        try:
            artifact = staging / ARTIFACT_FILENAME
            if isinstance(source, LearnedEstimator):
                save_estimator(source, artifact)
                estimator_name = source.name
            else:
                source = Path(source)
                # Validate before copying: a registry must never host an
                # artifact load_estimator cannot read back.
                estimator_name = load_estimator(source).name
                shutil.copyfile(source, artifact)
            manifest = {
                "name": name,
                "version": version,
                "estimator_name": estimator_name,
                "format_version": FORMAT_VERSION,
                "checksum_sha256": _sha256(artifact),
                "size_bytes": artifact.stat().st_size,
            }
            (staging / MANIFEST_FILENAME).write_text(
                json.dumps(manifest, indent=2, sort_keys=True) + "\n",
                encoding="utf-8")
            final = model_dir / _format_version(version)
            staging.rename(final)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return ModelVersion(name=name, version=version, directory=final)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def models(self) -> tuple[str, ...]:
        """Published model names, sorted."""
        if not self._root.is_dir():
            return ()
        return tuple(sorted(
            entry.name for entry in self._root.iterdir()
            if entry.is_dir() and not entry.name.startswith(".")
            and self._version_numbers(entry.name)))

    def versions(self, name: str) -> tuple[int, ...]:
        """Published version numbers of ``name``, ascending."""
        numbers = self._version_numbers(name)
        if not numbers:
            raise RegistryError(
                f"no model named {name!r} in registry {self._root}")
        return tuple(numbers)

    def resolve(self, name: str,
                version: int | str = LATEST) -> ModelVersion:
        """Resolve ``(name, version)`` to a concrete :class:`ModelVersion`.

        ``version`` may be an integer, a ``vNNNN`` string, or the alias
        ``"latest"``: the version the model's ``latest.json`` pointer
        names (see :meth:`set_latest`), or the highest published
        version when no pointer has ever been set.
        """
        numbers = self.versions(name)
        if version == LATEST:
            pinned = self._read_latest_pointer(name)
            if pinned is not None and pinned in numbers:
                number = pinned
            else:
                number = numbers[-1]
        else:
            if isinstance(version, str):
                stripped = version.lstrip(_VERSION_PREFIX)
                if not stripped.isdigit():
                    raise RegistryError(
                        f"invalid version {version!r} for model {name!r}")
                number = int(stripped)
            else:
                number = int(version)
            if number not in numbers:
                raise RegistryError(
                    f"model {name!r} has no version {number} "
                    f"(published: {list(numbers)})")
        return ModelVersion(
            name=name, version=number,
            directory=self._root / name / _format_version(number))

    def set_latest(self, name: str, version: int | str) -> ModelVersion:
        """Point ``latest`` at a specific published version of ``name``.

        This is the registry half of a rollout: *promote* points the
        alias at the freshly published candidate, *rollback* pins it
        back to the baseline so a published-but-bad higher version is
        never served again by ``resolve(name)``.  The pointer file is
        written next to the version directories with a tmp-file +
        ``os.replace`` so a concurrent reader sees the old pointer or
        the new one, never a torn write.
        """
        resolved = self.resolve(name, version)
        pointer = {"name": name, "version": resolved.version}
        target = self._root / name / LATEST_FILENAME
        scratch = target.with_suffix(".json.tmp")
        scratch.write_text(json.dumps(pointer, sort_keys=True) + "\n",
                           encoding="utf-8")
        scratch.replace(target)
        return resolved

    def _read_latest_pointer(self, name: str) -> int | None:
        """The pinned ``latest`` version, or ``None`` without a pointer.

        A damaged pointer file degrades to the highest-version default
        rather than taking the model offline.
        """
        pointer_path = self._root / name / LATEST_FILENAME
        try:
            payload = json.loads(pointer_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        version = payload.get("version") if isinstance(payload, dict) \
            else None
        return version if isinstance(version, int) else None

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load(self, name: str, version: int | str = LATEST,
             verify: bool = True) -> LearnedEstimator:
        """Load (and memoise) the estimator behind ``(name, version)``.

        The first load per (name, version) verifies the artifact's
        sha256 against the manifest (skippable with ``verify=False``)
        and goes through :func:`repro.persistence.load_estimator`; later
        loads return the cached in-process handle.  Every load re-reads
        the (small JSON) manifest and compares its checksum against the
        one the cached handle was loaded under — if the version was
        republished in place, the stale handle is dropped and the new
        artifact loaded, so long-lived servers hot-swap correctly.
        """
        resolved = self.resolve(name, version)
        key = (resolved.name, resolved.version)
        expected = resolved.manifest().get("checksum_sha256")
        with self._lock:
            cached = self._handles.get(key)
        # Deliberately non-atomic check-then-act: holding _lock across
        # the artifact load would serialize every first-time load behind
        # disk I/O (the exact stall RPR403 exists to catch).  The racy
        # window is benign — concurrent losers load a duplicate, then
        # the last store below wins and every later caller shares it.
        if cached is not None and cached[0] == expected:  # repro: ignore[RPR404]
            return cached[1]
        if verify:
            self.verify(resolved)
        try:
            estimator = load_estimator(resolved.artifact_path)
        except PersistenceError as exc:
            raise RegistryError(
                f"artifact {resolved.label()} failed to load: {exc}"
            ) from exc
        with self._lock:
            # Concurrent loaders of the same manifest loaded identical
            # artifacts, so whichever store wins is interchangeable;
            # a racing *republish* wins over both on its next load via
            # the checksum comparison above.
            current = self._handles.get(key)
            if current is not None and current[0] == expected:
                return current[1]
            self._handles[key] = (expected, estimator)
        return estimator

    def verify(self, resolved: ModelVersion) -> None:
        """Check the artifact's checksum against its manifest.

        Raises :class:`RegistryError` on a missing artifact or a digest
        mismatch (bit rot, tampering, a partial copy).
        """
        manifest = resolved.manifest()
        if not resolved.artifact_path.is_file():
            raise RegistryError(
                f"artifact file missing for {resolved.label()}: "
                f"{resolved.artifact_path}")
        actual = _sha256(resolved.artifact_path)
        expected = manifest.get("checksum_sha256")
        if actual != expected:
            raise RegistryError(
                f"checksum mismatch for {resolved.label()}: manifest says "
                f"{expected}, artifact hashes to {actual}")

    def evict(self, name: str | None = None) -> None:
        """Drop cached handles (all of them, or one model's versions)."""
        with self._lock:
            if name is None:
                self._handles.clear()
            else:
                for key in [k for k in self._handles if k[0] == name]:
                    del self._handles[key]

    # ------------------------------------------------------------------

    def _version_numbers(self, name: str) -> list[int]:
        model_dir = self._root / name
        if not model_dir.is_dir():
            return []
        numbers = []
        for entry in model_dir.iterdir():
            number = _parse_version_dir(entry)
            if number is not None:
                numbers.append(number)
        return sorted(numbers)
