"""The fused compile→encode→predict serving hot path.

The ordinary miss path re-does per-request work that is invariant
across most production traffic: every micro-batch walks each query's
AST (compile), encodes per query, and — for gradient boosting — loops
python-level over every tree (predict).  :class:`FusedEstimatePath`
removes all three taxes for estimators that support it:

1. **compile** — each query is keyed by its *shape*
   (:func:`repro.featurize.batch.query_shape`: boolean structure with
   numeric literals masked) and resolves a
   :class:`~repro.featurize.batch.CompiledPlan` from the shape-keyed
   :class:`~repro.serve.cache.PlanCache`; only a never-seen shape pays
   an AST compile.
2. **encode** — the whole batch, however many distinct shapes it
   mixes, is stamped out in one plan-stitching pass
   (:meth:`~repro.featurize.base.Featurizer.encode_with_plans`:
   concatenate the plans' predicate columns, gather the literal
   vectors into place) and encoded in a single vectorized call.  No
   per-shape encode, no per-query anything — stitching is what lets
   plan caching win on shape-diverse traffic, where one encode call
   per shape group would cost more than the compile pass it saves.
3. **predict** — the matrix goes through the estimator's
   ``estimate_features`` in a single call, which for gradient boosting
   runs the packed :class:`~repro.models.compiled_forest.CompiledForest`
   (level-synchronous traversal, no per-tree loop).

Every stage emits a span (``serve.fused.compile`` / ``.encode`` /
``.predict``), and the whole path is bitwise-identical to
``estimator.estimate_batch`` on the same queries — the equivalence
suite and ``repro bench serve`` both assert it.

On top of the query-level path sits the **SQL-direct planned leg**: a
statement template the parse cache has already seen can be
shape-compiled once into a :class:`PlannedStatement` (shape key +
walk-order literal permutation).  Instances of that statement then
never materialize a bound AST at all — the service hands the fused
path the statement plus each instance's fingerprint literals, and the
literals are gathered straight into the stitched encode.  The leg is
available only for featurizers whose encode stage ignores
``batch.exprs`` (:attr:`~repro.featurize.base.Featurizer.encode_uses_exprs`
is ``False``), because there are no per-query expressions to give it.

The path is *conditional*: :meth:`FusedEstimatePath.try_build` returns
``None`` (bypass, legacy path) for estimators whose featurizer is not a
single-table :class:`~repro.featurize.base.Featurizer` — join
compositions, the global model, and MSCN keep their existing
``estimate_batch``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.estimators.base import CardinalityEstimator
from repro.featurize.base import Featurizer
from repro.featurize.batch import query_shape
from repro.serve.cache import PlanCache
from repro.sql.ast import BoolExpr, Query

__all__ = ["FusedEstimatePath", "PlannedStatement"]


@dataclass(frozen=True)
class PlannedStatement:
    """Shape-compiled form of a cached statement template.

    Produced once per statement by
    :meth:`FusedEstimatePath.plan_statement` and held in the serve
    layer's parse cache next to the re-bindable AST template.  An
    instance of the statement then rides the SQL-direct leg: its
    fingerprint literals, gathered through :attr:`perm`, go straight
    into the stitched encode without a bound AST ever existing.
    """

    #: The statement's shape key — equal to every instance's key, since
    #: :func:`~repro.featurize.batch.query_shape` masks literal values.
    shape_key: tuple
    #: Gather permutation: walk-order literal slot -> fingerprint
    #: (textual) literal index of the statement.
    perm: np.ndarray
    #: The template's validated WHERE expression; recompiles the plan
    #: if the plan cache has meanwhile evicted the shape.
    expr: BoolExpr | None


class FusedEstimatePath:
    """Shape-plan-cached batch estimation for a compiled estimator.

    Build via :meth:`try_build`; call :meth:`estimate_batch` exactly
    where ``estimator.estimate_batch`` would be called (the micro-batch
    executor and the client-batch endpoint).  Thread safety matches the
    underlying pieces: the plan cache is locked, encode and predict are
    pure, so concurrent calls are safe.
    """

    def __init__(self, estimator: CardinalityEstimator,
                 featurizer: Featurizer, plan_cache: PlanCache) -> None:
        self._estimator = estimator
        self._featurizer = featurizer
        self._plan_cache = plan_cache

    @classmethod
    def try_build(cls, estimator: CardinalityEstimator,
                  plan_cache: PlanCache) -> "FusedEstimatePath | None":
        """Build the fused path for ``estimator``, or ``None`` to bypass.

        Requirements: the estimator exposes a single-table
        :class:`~repro.featurize.base.Featurizer` (shape plans are
        defined on its compile stage) plus the fused entry points
        ``estimate_features`` and ``compile``.  When eligible, the
        estimator's model is compiled eagerly here so the first request
        doesn't pay the packing cost.
        """
        featurizer = getattr(estimator, "featurizer", None)
        if not isinstance(featurizer, Featurizer):
            return None
        if not (hasattr(estimator, "estimate_features")
                and hasattr(estimator, "compile")):
            return None
        estimator.compile()
        return cls(estimator, featurizer, plan_cache)

    @property
    def plan_cache(self) -> PlanCache:
        """The shape-keyed plan cache this path consults."""
        return self._plan_cache

    @property
    def supports_planned_statements(self) -> bool:
        """Whether the SQL-direct leg can run at all.

        The planned leg has no bound ASTs to offer the encode stage,
        so it requires a featurizer whose encode never reads
        ``batch.exprs``.
        """
        return not self._featurizer.encode_uses_exprs

    def plan_statement(self, template: Query) -> PlannedStatement | None:
        """Shape-compile a parsed statement template, or ``None``.

        ``None`` marks the statement as outside the planned class: the
        featurizer rejects it (wrong table, unknown attribute, a query
        class the QFT cannot represent) or its encode stage needs the
        bound expressions.  Instances of such statements simply take
        the bound-AST path, where the same validation raises per
        request.  Eligible statements also warm the plan cache here, so
        their first instance already hits.
        """
        if not self.supports_planned_statements:
            return None
        try:
            expr = self._featurizer.extract_expr(template)
            # The template's literal slots hold their own textual
            # indices (make_template), so the masked key equals every
            # instance's key and the walk-order literal vector *is*
            # the walk -> fingerprint permutation.
            key, sentinel = query_shape(expr)
            plan = self._plan_cache.lookup(key)
            if plan is None:
                plan = self._featurizer.compile_plan(expr)
                self._plan_cache.store(key, plan)
        except (ValueError, TypeError, KeyError):
            return None
        return PlannedStatement(shape_key=key,
                                perm=sentinel.astype(np.int64), expr=expr)

    def estimate_batch(self, queries: Sequence[Query]) -> np.ndarray:
        """Estimate a batch through the fused pipeline.

        Raises the same per-query validation errors the legacy path
        raises (wrong table, unknown attribute, unsupported query
        class); results are bitwise-identical to
        ``estimator.estimate_batch(queries)``.
        """
        batch = list(queries)
        if not batch:
            return np.empty(0, dtype=np.float64)
        # Per-query validation + shape keying; errors surface at the
        # first offending query, like compile_batch's extraction pass.
        exprs = [self._featurizer.extract_expr(q) for q in batch]
        shaped = [query_shape(e) for e in exprs]
        return self._execute([key for key, _ in shaped],
                             [literals for _, literals in shaped],
                             exprs, exprs)

    def estimate_planned(self, statements: Sequence[PlannedStatement],
                         literal_rows: Sequence[np.ndarray]) -> np.ndarray:
        """Estimate instances of planned statements (the SQL-direct leg).

        ``literal_rows[i]`` is instance ``i``'s literal vector already
        gathered to walk order through ``statements[i].perm``.  Results
        are bitwise-identical to :meth:`estimate_batch` on the
        equivalent bound queries — same plans, same stitched encode,
        same predict — minus the ASTs.
        """
        k = len(statements)
        if k == 0:
            return np.empty(0, dtype=np.float64)
        return self._execute([s.shape_key for s in statements],
                             literal_rows, (None,) * k,
                             [s.expr for s in statements])

    def _execute(self, keys: Sequence[tuple],
                 literal_rows: Sequence[np.ndarray],
                 exprs: Sequence[BoolExpr | None],
                 compile_exprs: Sequence[BoolExpr | None]) -> np.ndarray:
        """Resolve plans, stitch-encode, predict — the shared pipeline.

        ``exprs`` rides into the :class:`PredicateBatch` (all ``None``
        on the planned leg — allowed because that leg requires an
        encode that ignores them); ``compile_exprs`` is what a plan is
        compiled from when its shape misses the cache.
        """
        with obs.span("serve.fused.compile", n_queries=len(keys)) as span:
            # Resolve each query's plan; a batch repeating one shape
            # consults the (locked) cache once for it.
            local: dict[tuple, object] = {}
            plans = []
            for key, expr in zip(keys, compile_exprs):
                plan = local.get(key)
                if plan is None:
                    plan = self._plan_cache.lookup(key)
                    if plan is None:
                        plan = self._featurizer.compile_plan(expr)
                        self._plan_cache.store(key, plan)
                    local[key] = plan
                plans.append(plan)
            if span is not None:
                span.set_attribute("n_shapes", len(local))
        with obs.span("serve.fused.encode", n_queries=len(keys)):
            matrix = self._featurizer.encode_with_plans(
                plans, literal_rows, exprs)
        with obs.span("serve.fused.predict", n_queries=len(keys),
                      metric="serve.fused.predict.seconds"):
            return self._estimator.estimate_features(matrix)
