"""Minimal stdlib client for the ``repro serve`` HTTP API.

A thin ``http.client`` wrapper so tests, the serving benchmark, and
scripts can talk to an :class:`~repro.serve.server.EstimationServer`
without pulling in an HTTP library.  Errors surface as
:class:`ServeClientError` carrying the HTTP status and, for ``503``
rejections, the server's ``Retry-After`` hint.

The client holds one **persistent keep-alive connection**: every call
reuses the socket of the previous one, so a request costs one
round-trip instead of a TCP handshake plus a server handler-thread
spawn.  A connection the server has meanwhile closed (idle timeout,
restart) announces itself as ``RemoteDisconnected`` *before any
response bytes*; exactly that case is transparently re-sent once on a
fresh connection — the request was never read, so the re-send cannot
double-execute it.  Connections are **thread-local**: a client shared
across threads gives each thread its own socket (HTTP/1.1 sockets
carry one request at a time), opened lazily on the thread's first
call.

The server sheds load by answering ``503`` + ``Retry-After`` when its
admission bound is hit; a client that immediately gives up turns
transient saturation into user-visible failures.  ``retries > 0``
makes the client honour the hint: it sleeps the advertised seconds and
re-sends, up to the configured attempt budget.  Only 503 responses that
carry ``Retry-After`` are retried — 4xx are the caller's mistake, 5xx
without a hint are genuine faults, and mid-response transport errors
may not be idempotent-safe; all of those still raise immediately.

**Trace propagation**: every request mints a deterministic trace id
(:func:`repro.obs.mint_trace_id`), sends it in the ``X-Repro-Trace``
header, and opens a client-side ``serve.client.request`` span stamped
with it.  The server adopts the id for its own spans, so the two
processes' span logs stitch into one Chrome trace
(:func:`repro.obs.export.stitch_chrome_trace`).  Retries of one logical
request reuse its trace id — the stitched view shows every attempt on
one flow.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
import urllib.parse

from repro import obs

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(RuntimeError):
    """An API call failed; carries ``status`` and optional ``retry_after``."""

    def __init__(self, message: str, status: int = 0,
                 retry_after: int | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class ServeClient:
    """Calls one serving endpoint's JSON API over a keep-alive connection.

    Parameters
    ----------
    base_url:
        Server base, e.g. ``http://127.0.0.1:8642`` (trailing slash ok).
    timeout:
        Per-request socket timeout in seconds.
    retries:
        How many times to re-send a request refused with ``503`` +
        ``Retry-After`` (sleeping the advertised seconds between
        attempts).  ``0`` (the default) fails fast.  No other error is
        ever retried (a stale keep-alive socket is replaced, not
        retried — see the module docs).
    """

    def __init__(self, base_url: str, timeout: float = 30.0,
                 retries: int = 0) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self._base_url = base_url.rstrip("/")
        parts = urllib.parse.urlsplit(self._base_url)
        if parts.scheme not in ("http", "https") or not parts.hostname:
            raise ValueError(f"base_url must be http(s)://host[:port], "
                             f"got {base_url!r}")
        self._scheme = parts.scheme
        self._host = parts.hostname
        self._port = parts.port
        self._timeout = timeout
        self._retries = retries
        # One persistent connection per calling thread: HTTP/1.1
        # sockets are stateful (one request in flight at a time), so a
        # client shared across threads must not share the socket.
        self._local = threading.local()

    @property
    def base_url(self) -> str:
        """The server base URL this client talks to."""
        return self._base_url

    def close(self) -> None:
        """Drop the calling thread's persistent connection.

        Reopened lazily on the next call; other threads' connections
        are untouched (each thread closes its own, or the sockets go
        with the process).
        """
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def __enter__(self) -> "ServeClient":
        """Context-manager entry; the socket still opens lazily."""
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Close the persistent connection on context exit."""
        self.close()
        return False

    def healthz(self) -> dict:
        """The liveness payload (``{"status": "ok"}`` when up)."""
        return json.loads(self._get("/healthz"))

    def get_json(self, path: str) -> dict:
        """GET an arbitrary endpoint and parse its JSON body.

        The escape hatch for server-specific endpoints the typed
        methods don't cover (e.g. the fleet router's ``/fleet/status``).
        """
        return json.loads(self._get(path))

    def post_json(self, path: str, payload: dict,
                  trace_id: int | None = None) -> dict:
        """POST ``payload`` to an arbitrary endpoint; returns the JSON
        response (fleet control endpoints, ad-hoc tooling)."""
        return self._post(path, payload, trace_id=trace_id)

    def metrics(self) -> str:
        """The raw ``/metrics`` body (byte-stable JSON text)."""
        return self._get("/metrics")

    def metrics_prometheus(self) -> str:
        """The Prometheus text exposition (``/metrics.prom``)."""
        return self._get("/metrics.prom")

    def estimate(self, sql: str, trace_id: int | None = None) -> dict:
        """Estimate one query; returns ``{"estimate": c, "cached": b}``.

        Talking to a fleet router, the response additionally carries
        the answering ``worker_id`` and its ``model_version`` — the
        dict is returned whole, so those ride along for free.
        """
        return self._post("/v1/estimate", {"sql": sql}, trace_id=trace_id)

    def estimate_batch(self, sqls: list[str],
                       trace_id: int | None = None) -> list[float]:
        """Estimate a batch of queries in one round trip."""
        return self.estimate_batch_detail(sqls, trace_id=trace_id)[
            "estimates"]

    def estimate_batch_detail(self, sqls: list[str],
                              trace_id: int | None = None) -> dict:
        """Estimate a batch and return the *full* response payload.

        ``estimate_batch`` keeps its historical ``list`` return; this
        variant exposes everything the server answered — against a
        fleet router that includes ``workers`` (the distinct worker ids
        that served the batch) and ``model_version``.
        """
        return self._post("/v1/estimate_batch", {"sql": list(sqls)},
                          trace_id=trace_id)

    def feedback(self, sql: str, true_cardinality: float,
                 estimate: float | None = None,
                 trace_id: int | None = None) -> dict:
        """Report an executed query's true cardinality.

        Returns ``{"qerror": q, "estimate": c}``.  Pass ``estimate`` if
        you still hold the value the server answered with; otherwise
        the server re-estimates the query to compute the q-error.
        """
        payload: dict = {"sql": sql,
                         "true_cardinality": float(true_cardinality)}
        if estimate is not None:
            payload["estimate"] = float(estimate)
        return self._post("/v1/feedback", payload, trace_id=trace_id)

    # ------------------------------------------------------------------

    def _get(self, path: str) -> str:
        return self._send("GET", path)

    def _post(self, path: str, payload: dict,
              trace_id: int | None = None) -> dict:
        body = json.dumps(payload).encode("utf-8")
        return json.loads(self._send("POST", path, body,
                                     trace_id=trace_id))

    def _send(self, method: str, path: str, body: bytes | None = None,
              trace_id: int | None = None) -> str:
        """Send with bounded 503 retries (see class docs).

        Attempt ``i`` of a retried request re-sends the identical
        method/path/body after sleeping the server's ``Retry-After``
        seconds; the last attempt's error propagates.  One trace id
        covers the whole logical request, so every attempt carries the
        same ``X-Repro-Trace`` value.  Callers that are themselves
        serving a traced request (the fleet router forwarding to a
        worker) pass their inbound ``trace_id`` so the onward hop joins
        the same trace instead of minting a fresh one.
        """
        if trace_id is None:
            trace_id = obs.mint_trace_id()
        for attempt in range(self._retries + 1):
            try:
                return self._send_once(method, path, body, trace_id)
            except ServeClientError as exc:
                retriable = (exc.status == 503
                             and exc.retry_after is not None
                             and attempt < self._retries)
                if not retriable:
                    raise
                time.sleep(exc.retry_after)
        raise AssertionError("unreachable: loop always returns or raises")

    def _send_once(self, method: str, path: str, body: bytes | None,
                   trace_id: int) -> str:
        attempts = 2 if getattr(self._local, "conn", None) is not None else 1
        for attempt in range(attempts):
            try:
                return self._exchange(method, path, body, trace_id)
            except http.client.RemoteDisconnected as exc:
                # The server closed the idle socket between calls; the
                # request was never read, so one fresh-connection
                # re-send is safe.  A fresh connection dying the same
                # way is a genuine fault.
                if attempt + 1 == attempts:
                    raise ServeClientError(
                        f"cannot reach {self._base_url}{path}: "
                        f"connection closed without response") from exc
        raise AssertionError("unreachable: loop always returns or raises")

    def _exchange(self, method: str, path: str, body: bytes | None,
                  trace_id: int) -> str:
        try:
            conn = self._connection()
        except OSError as exc:
            raise ServeClientError(
                f"cannot reach {self._base_url}{path}: {exc}") from exc
        try:
            headers = ({"Content-Type": "application/json"}
                       if body is not None else {})
            headers[obs.TRACE_HEADER] = obs.format_trace_header(trace_id)
            with obs.use_trace_context(trace_id), \
                    obs.span("serve.client.request", path=path,
                             metric="serve.client.request.seconds"):
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            will_close = response.will_close
        except http.client.RemoteDisconnected:
            self.close()
            raise
        except (OSError, http.client.HTTPException) as exc:
            self.close()
            raise ServeClientError(
                f"cannot reach {self._base_url}{path}: {exc}") from exc
        if will_close:
            self.close()
        if response.status != 200:
            text = raw.decode("utf-8", errors="replace")
            try:
                message = json.loads(text).get("error", text)
            except json.JSONDecodeError:
                message = text or response.reason
            retry_after = response.getheader("Retry-After")
            raise ServeClientError(
                f"HTTP {response.status}: {message}", status=response.status,
                retry_after=int(retry_after) if retry_after else None,
            )
        return raw.decode("utf-8")

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            factory = (http.client.HTTPSConnection
                       if self._scheme == "https"
                       else http.client.HTTPConnection)
            conn = factory(self._host, self._port, timeout=self._timeout)
            conn.connect()
            # Request line/headers and body are separate writes; Nagle
            # would stall the body behind the server's delayed ACK.
            conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._local.conn = conn
        return conn
