"""Minimal stdlib client for the ``repro serve`` HTTP API.

A thin ``urllib`` wrapper so tests, the serving benchmark, and scripts
can talk to an :class:`~repro.serve.server.EstimationServer` without
pulling in an HTTP library.  Errors surface as
:class:`ServeClientError` carrying the HTTP status and, for ``503``
rejections, the server's ``Retry-After`` hint.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(RuntimeError):
    """An API call failed; carries ``status`` and optional ``retry_after``."""

    def __init__(self, message: str, status: int = 0,
                 retry_after: int | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class ServeClient:
    """Calls one serving endpoint's JSON API.

    Parameters
    ----------
    base_url:
        Server base, e.g. ``http://127.0.0.1:8642`` (trailing slash ok).
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self._base_url = base_url.rstrip("/")
        self._timeout = timeout

    @property
    def base_url(self) -> str:
        """The server base URL this client talks to."""
        return self._base_url

    def healthz(self) -> dict:
        """The liveness payload (``{"status": "ok"}`` when up)."""
        return json.loads(self._get("/healthz"))

    def metrics(self) -> str:
        """The raw ``/metrics`` body (byte-stable JSON text)."""
        return self._get("/metrics")

    def estimate(self, sql: str) -> dict:
        """Estimate one query; returns ``{"estimate": c, "cached": b}``."""
        return self._post("/v1/estimate", {"sql": sql})

    def estimate_batch(self, sqls: list[str]) -> list[float]:
        """Estimate a batch of queries in one round trip."""
        return self._post("/v1/estimate_batch", {"sql": list(sqls)})[
            "estimates"]

    # ------------------------------------------------------------------

    def _get(self, path: str) -> str:
        request = urllib.request.Request(self._base_url + path)
        return self._send(request)

    def _post(self, path: str, payload: dict) -> dict:
        body = json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self._base_url + path, data=body,
            headers={"Content-Type": "application/json"}, method="POST")
        return json.loads(self._send(request))

    def _send(self, request: urllib.request.Request) -> str:
        try:
            with urllib.request.urlopen(request,
                                        timeout=self._timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(raw).get("error", raw)
            except json.JSONDecodeError:
                message = raw or exc.reason
            retry_after = exc.headers.get("Retry-After")
            raise ServeClientError(
                f"HTTP {exc.code}: {message}", status=exc.code,
                retry_after=int(retry_after) if retry_after else None,
            ) from exc
        except urllib.error.URLError as exc:
            raise ServeClientError(
                f"cannot reach {request.full_url}: {exc.reason}") from exc
